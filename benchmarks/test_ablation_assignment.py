"""Ablation — task-assignment policies during MSR recovery.

Beyond Fig. 11d's on/off comparison: LPT versus round-robin assignment
of partition bundles across skew levels, and the partition-granularity
knob (partitions per worker) that gives LPT room to balance.  Expected:
LPT's advantage grows with skew, and finer partitions help skewed
workloads.
"""

from __future__ import annotations

from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.harness.figures import DEFAULT_SCALE, _run, gs_factory
from repro.harness.report import format_seconds, print_figure, render_table

SKEWS = (0.0, 0.6, 0.95)


def _recovery_seconds(factory, options):
    outcome = _run(DEFAULT_SCALE, factory, MorphStreamR, options=options)
    return outcome.recovery.elapsed_seconds


def test_ablation_assignment_policy(run_once):
    def sweep():
        rows = {}
        for skew in SKEWS:
            factory = gs_factory(skew=skew, abort_ratio=0.0)
            rows[skew] = {
                "LPT": _recovery_seconds(factory, MSROptions()),
                "round-robin": _recovery_seconds(
                    factory, MSROptions(opt_task_assign=False)
                ),
            }
        return rows

    results = run_once(sweep)
    table = [
        [
            f"{skew:.2f}",
            format_seconds(row["LPT"]),
            format_seconds(row["round-robin"]),
            f"{row['round-robin'] / row['LPT']:.2f}x",
        ]
        for skew, row in results.items()
    ]
    print_figure(
        "Ablation — LPT vs round-robin bundle assignment (GS recovery)",
        render_table(["skew", "LPT", "round-robin", "LPT gain"], table),
    )

    # LPT never loses, and its advantage is largest at high skew.
    for row in results.values():
        assert row["LPT"] <= row["round-robin"] * 1.02
    gains = [row["round-robin"] / row["LPT"] for row in results.values()]
    assert gains[-1] >= gains[0]


def test_ablation_partition_granularity(run_once):
    def sweep():
        factory = gs_factory(skew=0.95, abort_ratio=0.0)
        return {
            ppw: _recovery_seconds(
                factory, MSROptions(partitions_per_worker=ppw)
            )
            for ppw in (1, 2, 4)
        }

    results = run_once(sweep)
    print_figure(
        "Ablation — partitions per worker (GS, skew 0.95)",
        render_table(
            ["partitions/worker", "recovery time"],
            [[str(k), format_seconds(v)] for k, v in results.items()],
        ),
    )
    # Finer partitions give LPT room: 2/worker must not be slower than
    # 1/worker by more than noise.
    assert results[2] <= results[1] * 1.05
