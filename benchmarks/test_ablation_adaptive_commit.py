"""Ablation — adaptive log commitment vs fixed epochs (§VI-B2).

Fig. 9 sweeps fixed commitment epochs; the paper's controller is
supposed to *pick* a good point per regime.  This ablation feeds the
same long stream to MorphStreamR three ways per contention regime —
pinned to the smallest epoch, pinned to the largest, and with the
adaptive controller attached (starting small) — and checks that the
controller converges near the better fixed choice.
"""

from __future__ import annotations

from repro.core.commitment import AdaptiveCommitController
from repro.core.morphstreamr import MorphStreamR
from repro.harness.figures import FIG9_REGIMES, gs_factory
from repro.harness.report import format_throughput, print_figure, render_table
from repro.harness.runner import ground_truth

SMALL, LARGE = 64, 1024
NUM_EVENTS = LARGE * 9
WORKERS = 8
SNAPSHOT_INTERVAL = 5


def _cycle(factory, epoch_len, controller=None):
    """One verified runtime→crash→recovery cycle; returns throughputs."""
    workload = factory()
    kwargs = {"controller": controller} if controller is not None else {}
    scheme = MorphStreamR(
        workload,
        num_workers=WORKERS,
        epoch_len=epoch_len,
        snapshot_interval=SNAPSHOT_INTERVAL,
        **kwargs,
    )
    events = workload.generate(NUM_EVENTS, seed=7)
    runtime = scheme.process_stream(events)
    scheme.crash()
    recovery = scheme.recover()
    expected, _outputs = ground_truth(
        workload, events[: runtime.events_processed]
    )
    assert scheme.store.equals(expected)
    return runtime.throughput_eps, recovery.throughput_eps


def test_ablation_adaptive_commitment(run_once):
    def sweep():
        results = {}
        for regime, params in FIG9_REGIMES.items():
            factory = gs_factory(**params)
            results[regime] = {
                "fixed-small": _cycle(factory, SMALL),
                "fixed-large": _cycle(factory, LARGE),
                "adaptive": _cycle(
                    factory,
                    SMALL,  # starts small; the controller resizes
                    controller=AdaptiveCommitController(
                        SMALL, LARGE, recovery_weight=0.5
                    ),
                ),
            }
        # The objective knob: a runtime-first controller on the
        # high-contention regime must track the small-epoch runtime.
        results["HSMD"]["adaptive-runtime-first"] = _cycle(
            gs_factory(**FIG9_REGIMES["HSMD"]),
            SMALL,
            controller=AdaptiveCommitController(
                SMALL, LARGE, recovery_weight=0.0
            ),
        )
        return results

    results = run_once(sweep)
    rows = []
    for regime, modes in results.items():
        for mode, (runtime_eps, recovery_eps) in modes.items():
            rows.append(
                [
                    regime,
                    mode,
                    format_throughput(runtime_eps),
                    format_throughput(recovery_eps),
                ]
            )
    print_figure(
        "Ablation — adaptive vs fixed commitment epochs (GS regimes)",
        render_table(["regime", "mode", "runtime", "recovery"], rows),
    )

    for regime in FIG9_REGIMES:
        modes = results[regime]
        run_small, _rec_small = modes["fixed-small"]
        run_large, _rec_large = modes["fixed-large"]
        run_adaptive, _rec_adaptive = modes["adaptive"]
        # The balanced controller never collapses below the worse fixed
        # choice on runtime (it may deliberately sit below the *better*
        # one in high-skew regimes: that is the recovery trade).
        assert run_adaptive >= 0.9 * min(run_small, run_large), regime
    # LSFD: large epochs dominate both axes and the controller goes
    # maximal, so both throughputs approach the fixed-large run.
    lsfd = results["LSFD"]
    assert lsfd["adaptive"][0] >= 0.9 * lsfd["fixed-large"][0]
    assert lsfd["adaptive"][1] >= 0.8 * lsfd["fixed-large"][1]
    # HSFD: recovery wants large epochs; the balanced (weight 0.5)
    # controller interpolates, so it must land well above the
    # small-epoch recovery without being required to reach fixed-large.
    hsfd = results["HSFD"]
    assert hsfd["adaptive"][1] >= 1.2 * hsfd["fixed-small"][1]
    assert hsfd["adaptive"][1] <= 1.05 * hsfd["fixed-large"][1]
    # LSMD: the controller's midpoint beats fixed-large on runtime and
    # fixed-small on recovery — the stated §VI-B compromise.
    lsmd = results["LSMD"]
    assert lsmd["adaptive"][0] >= 0.95 * lsmd["fixed-small"][0]
    assert lsmd["adaptive"][1] >= lsmd["fixed-small"][1]
    # HSMD sanity: both adaptive modes stay within the fixed envelope
    # (per-epoch profiling is noisy at 64-event epochs, so only the
    # envelope — not a specific interior point — is asserted).
    hsmd = results["HSMD"]
    for mode in ("adaptive", "adaptive-runtime-first"):
        assert hsmd[mode][0] >= 0.9 * hsmd["fixed-large"][0], mode
        assert hsmd[mode][1] >= 0.9 * hsmd["fixed-small"][1], mode
