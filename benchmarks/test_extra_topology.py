"""Extension — cross-operator recovery on a two-stage pipeline.

The group-commit adaptation of §III-B extended into a measured
experiment: every scheme protects both operators of a ledger → fee
pipeline, the chain crashes, and recovery replays it end to end
(downstream inputs regenerated from upstream replay).  Expected: the
single-operator ordering transfers — MSR fastest, WAL slowest — and the
chain's recovery cost is roughly the sum of its stages'.
"""

from __future__ import annotations

from repro.harness.figures import RECOVERY_SCHEMES
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)
from repro.topology import (
    FeeAccountingStage,
    LedgerStage,
    TopologyEngine,
    verify_topology,
)


def _stages():
    return [
        LedgerStage(
            512,
            transfer_ratio=0.7,
            multi_partition_ratio=0.3,
            skew=0.5,
            num_partitions=8,
        ),
        FeeAccountingStage(64, num_partitions=8),
    ]


def test_extra_topology_recovery(run_once):
    def sweep():
        results = {}
        for name, scheme_cls in RECOVERY_SCHEMES.items():
            stages = _stages()
            topo = TopologyEngine(
                stages,
                scheme_cls,
                num_workers=8,
                epoch_len=256,
                snapshot_interval=5,
            )
            events = stages[0].generate(256 * 9, seed=7)
            runtime = topo.process_stream(events)
            topo.crash()
            recovery = topo.recover()
            verify_topology(topo, stages, events)
            results[name] = (runtime, recovery)
        return results

    results = run_once(sweep)
    rows = [
        [
            name,
            format_throughput(runtime.throughput_eps),
            format_seconds(recovery.elapsed_seconds),
            format_throughput(recovery.throughput_eps),
        ]
        for name, (runtime, recovery) in results.items()
    ]
    print_figure(
        "Extension — two-operator pipeline (ledger -> fee accounting)",
        render_table(
            ["scheme", "runtime", "recovery time", "recovery tput"], rows
        ),
    )

    recovery_times = {
        name: recovery.elapsed_seconds
        for name, (_rt, recovery) in results.items()
    }
    assert min(recovery_times, key=recovery_times.get) == "MSR"
    assert max(recovery_times, key=recovery_times.get) == "WAL"
