"""Fig. 14 — workload sensitivity study (Grep&Sum).

Three sweeps of recovery throughput:

- (a) multi-partition transaction ratio (skew 0, no aborts): MSR leads
  throughout because dependency inspection replaces the cross-partition
  exploration the other schemes pay for;
- (b) state-access skew (write-only): LV is the best at uniform access
  and collapses as skew grows; MSR is skew-tolerant thanks to optimized
  task assignment;
- (c) abort ratio (0–80%): WAL improves with aborts (fewer committed
  commands to redo); MSR leads through moderate abort ratios but is
  overtaken at the extreme, matching §VIII-F.
"""

from __future__ import annotations

from repro.harness.figures import (
    DEFAULT_SCALE,
    fig14a_multi_partition,
    fig14b_skew,
    fig14c_aborts,
)
from repro.harness.report import format_throughput, print_figure, render_table


def _table(title, results, x_format):
    first = next(iter(results.values()))
    xs = [x for x, _eps in first]
    rows = [
        [name, *(format_throughput(eps) for _x, eps in points)]
        for name, points in results.items()
    ]
    print_figure(title, render_table(["scheme", *(x_format(x) for x in xs)], rows))


def test_fig14a_multi_partition_ratio(run_once):
    results = run_once(fig14a_multi_partition, DEFAULT_SCALE)
    _table(
        "Fig. 14a — recovery throughput vs multi-partition ratio (GS)",
        results,
        lambda x: f"{x:.0%}",
    )
    for index in range(len(results["MSR"])):
        msr = results["MSR"][index][1]
        for name in ("CKPT", "WAL", "DL", "LV"):
            assert msr > results[name][index][1], (index, name)
    # CKPT degrades as cross-partition dependencies grow.
    assert results["CKPT"][-1][1] < results["CKPT"][0][1]


def test_fig14b_state_access_skew(run_once):
    results = run_once(fig14b_skew, DEFAULT_SCALE)
    _table(
        "Fig. 14b — recovery throughput vs access skew (GS write-only)",
        results,
        lambda x: f"{x:.2f}",
    )
    at_uniform = {name: points[0][1] for name, points in results.items()}
    assert max(at_uniform, key=at_uniform.get) == "LV"
    # LV and CKPT degrade with skew; MSR tolerates it.
    assert results["LV"][-1][1] < 0.5 * results["LV"][0][1]
    assert results["CKPT"][-1][1] < results["CKPT"][0][1]
    assert results["MSR"][-1][1] > 0.9 * results["MSR"][0][1]
    at_extreme = {name: points[-1][1] for name, points in results.items()}
    assert max(at_extreme, key=at_extreme.get) == "MSR"


def test_fig14c_aborting_transactions(run_once):
    results = run_once(fig14c_aborts, DEFAULT_SCALE)
    _table(
        "Fig. 14c — recovery throughput vs abort ratio (GS)",
        results,
        lambda x: f"{x:.0%}",
    )
    # WAL improves monotonically: it only redoes committed commands.
    wal = [eps for _x, eps in results["WAL"]]
    assert wal == sorted(wal)
    # MSR leads through moderate ratios...
    for index in range(3):
        msr = results["MSR"][index][1]
        for name in ("CKPT", "WAL", "DL", "LV"):
            assert msr > results[name][index][1], (index, name)
    # ...but the lead is not guaranteed at 80% (§VIII-F).
    assert results["LV"][-1][1] > results["MSR"][-1][1]
