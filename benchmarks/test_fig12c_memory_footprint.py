"""Fig. 12c — maximum memory consumption at runtime (SL).

Peak memory footprint per scheme.  Shapes to hold: CKPT (no logs) is
the floor; MSR's views cost less memory than DL's edge records and LV's
vectors (the paper reports roughly +20% vs +35%/+38% over CKPT).
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig12c_memory
from repro.harness.report import print_figure, render_table


def test_fig12c_memory_footprint(run_once):
    results = run_once(fig12c_memory, DEFAULT_SCALE)

    baseline = results["CKPT"]
    rows = [
        [name, f"{peak / 1024:.1f} KiB", f"{peak / baseline - 1:+.0%}"]
        for name, peak in results.items()
    ]
    print_figure(
        "Fig. 12c — peak runtime memory footprint (SL, vs CKPT)",
        render_table(["scheme", "peak memory", "vs CKPT"], rows),
    )

    for name in ("WAL", "DL", "LV", "MSR"):
        assert results[name] >= baseline, name
    assert results["MSR"] < results["DL"]
    assert results["MSR"] < results["LV"]
