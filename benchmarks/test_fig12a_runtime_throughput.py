"""Fig. 12a — runtime throughput of different systems.

All schemes on SL/GS/TP.  Shapes to hold: CKPT incurs the least
fault-tolerance overhead; MSR stays within ~15% of native and clearly
above the log-based schemes (WAL/DL/LV).
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig12a_runtime
from repro.harness.report import format_throughput, print_figure, render_table


def test_fig12a_runtime_throughput(run_once):
    results = run_once(fig12a_runtime, DEFAULT_SCALE)

    schemes = list(next(iter(results.values())))
    rows = [
        [app, *(format_throughput(per[name]) for name in schemes)]
        for app, per in results.items()
    ]
    print_figure(
        "Fig. 12a — runtime throughput per scheme",
        render_table(["app", *schemes], rows),
    )

    for app, per in results.items():
        ft_only = {k: v for k, v in per.items() if k != "NAT"}
        assert max(ft_only, key=ft_only.get) == "CKPT", app
        for name in ("WAL", "DL", "LV"):
            assert per["MSR"] > per[name], (app, name)
        assert per["MSR"] >= per["NAT"] * 0.8, app
