"""Fig. 11d — factor analysis of MSR's recovery optimizations.

Recovery time as optimizations stack up (Simple → +OpRestructure →
+AbortPD → +OptTaskAssign), per application.  Shapes to hold: operation
restructuring yields the largest single gain for dependency-heavy SL;
optimized task assignment delivers the remaining gain for skewed GS;
abort pushdown delivers it for abort-heavy TP.
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig11d_factor
from repro.harness.report import format_seconds, print_figure, render_table


def test_fig11d_factor_analysis(run_once):
    results = run_once(fig11d_factor, DEFAULT_SCALE)

    rows = []
    for app, steps in results.items():
        for label, seconds in steps:
            rows.append([app, label, format_seconds(seconds)])
    print_figure(
        "Fig. 11d — recovery time as optimizations are added",
        render_table(["app", "configuration", "recovery time"], rows),
    )

    for app, steps in results.items():
        times = dict(steps)
        assert times["+OptTaskAssign"] < times["Simple"], app

    sl = dict(results["SL"])
    restructure_gain = sl["Simple"] - sl["+OpRestructure"]
    assert restructure_gain > sl["+OpRestructure"] - sl["+OptTaskAssign"]

    gs = dict(results["GS"])
    assert gs["+OptTaskAssign"] < gs["+AbortPD"]

    tp = dict(results["TP"])
    assert tp["+AbortPD"] < tp["+OpRestructure"]
