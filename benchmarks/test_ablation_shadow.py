"""Ablation — shadow-based exploration vs full view logging.

Selective logging trades runtime log volume for recovery-side shadow
resolution.  This bench quantifies both sides on the dependency-heavy
SL configuration: bytes logged per epoch, runtime throughput, and
recovery time with selective logging (shadow exploration for
intra-partition deps) versus full ParametricView logging.
"""

from __future__ import annotations

from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.harness.figures import DEFAULT_SCALE, _run, sl_factory
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)


def test_ablation_shadow_vs_full_logging(run_once):
    def sweep():
        factory = sl_factory(transfer_ratio=1.0, multi_partition_ratio=1.0)
        results = {}
        for label, options in (
            ("selective+shadow", MSROptions()),
            ("full logging", MSROptions(selective_logging=False)),
        ):
            outcome = _run(DEFAULT_SCALE, factory, MorphStreamR, options=options)
            results[label] = {
                "runtime_eps": outcome.runtime.throughput_eps,
                "recovery_s": outcome.recovery.elapsed_seconds,
                "log_bytes": outcome.runtime.bytes_logged,
            }
        return results

    results = run_once(sweep)
    rows = [
        [
            label,
            format_throughput(row["runtime_eps"]),
            format_seconds(row["recovery_s"]),
            f"{row['log_bytes'] / 1024:.1f} KiB",
        ]
        for label, row in results.items()
    ]
    print_figure(
        "Ablation — shadow exploration vs full view logging (SL, 100% transfers)",
        render_table(["mode", "runtime", "recovery", "log bytes"], rows),
    )

    selective = results["selective+shadow"]
    full = results["full logging"]
    # Selective logging writes fewer view bytes on this dependency-heavy
    # workload and keeps runtime at least on par.
    assert selective["log_bytes"] < full["log_bytes"]
    assert selective["runtime_eps"] >= full["runtime_eps"] * 0.98
    # Shadow resolution costs some recovery time relative to pure view
    # lookups, but stays within a small factor.
    assert selective["recovery_s"] <= full["recovery_s"] * 1.5
