"""Fig. 12b — effectiveness of selective logging.

Logging efficiency (recovery improvement over CKPT divided by runtime
degradation against NAT) for MSR with and without selective logging, as
the proportion of multi-partition transactions grows.  Shapes to hold:
full logging is more efficient when dependencies are few (the
partitioner's algorithmic overhead dominates); the gap narrows as
multi-partition transactions — and hence PDs — increase, with selective
logging overtaking at the top of the sweep.
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig12b_selective
from repro.harness.report import print_figure, render_table

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_fig12b_selective_logging(run_once):
    points = run_once(fig12b_selective, DEFAULT_SCALE, RATIOS)

    rows = [
        [f"{ratio:.0%}", f"{with_sel:.3f}", f"{without_sel:.3f}"]
        for ratio, with_sel, without_sel in points
    ]
    print_figure(
        "Fig. 12b — logging efficiency vs multi-partition transactions",
        render_table(
            ["multi-partition txns", "selective", "full logging"], rows
        ),
    )

    first_gap = points[0][2] - points[0][1]
    last_gap = points[-1][2] - points[-1][1]
    assert first_gap > 0  # full logging wins at low dependency counts
    assert last_gap < first_gap  # selective catches up as PDs grow
    assert points[-1][1] > points[-1][2]  # and overtakes at the top
