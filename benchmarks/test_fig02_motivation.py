"""Fig. 2 — comparisons of applicable fault tolerance approaches.

Streaming Ledger: runtime throughput (higher is better) against
recovery time (lower is better) for NAT/CKPT/WAL/DL/LV/MSR.  The paper
reports CKPT ~10 s, WAL ~37 s and MSR fastest; the shape to hold here
is the ordering — MSR recovers fastest while staying near CKPT's
runtime, WAL recovers slowest, and DL/LV recover slower than CKPT.
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig2_motivation
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)


def test_fig02_motivation(run_once):
    results = run_once(fig2_motivation, DEFAULT_SCALE)

    rows = [
        [
            name,
            format_throughput(row["runtime_eps"]),
            format_seconds(row["recovery_seconds"])
            if row["recovery_seconds"]
            else "n/a",
        ]
        for name, row in results.items()
    ]
    print_figure(
        "Fig. 2 — runtime throughput vs recovery time (SL)",
        render_table(["scheme", "runtime", "recovery time"], rows),
    )

    recovery = {
        name: row["recovery_seconds"]
        for name, row in results.items()
        if name != "NAT"
    }
    assert min(recovery, key=recovery.get) == "MSR"
    assert max(recovery, key=recovery.get) == "WAL"
    assert recovery["DL"] > recovery["CKPT"]
    assert results["MSR"]["runtime_eps"] > results["WAL"]["runtime_eps"]
