"""Benchmark harness configuration.

Every benchmark reproduces one figure of the paper's evaluation at
``DEFAULT_SCALE`` and prints the same rows/series the figure plots.
Experiments are deterministic, so a single round measures them exactly;
``run_once`` wraps ``benchmark.pedantic`` accordingly.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
