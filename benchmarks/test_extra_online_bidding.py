"""Extension — Online Bidding recovery comparison (beyond the paper).

The paper's intro motivates online bidding as a TSP application but the
evaluation sticks to SL/GS/TP.  This extension runs the full recovery
comparison on OB, whose bids carry *two* interacting abort conditions
(stock and price), and checks that the paper's headline result — MSR
recovers fastest while WAL trails — transfers to a fourth workload.
"""

from __future__ import annotations

from repro import buckets
from repro.harness.figures import DEFAULT_SCALE, RECOVERY_SCHEMES, _run, ob_factory
from repro.harness.report import (
    print_figure,
    recovery_breakdown_rows,
    render_table,
)


def test_extra_online_bidding_recovery(run_once):
    def sweep():
        factory = ob_factory()
        return {
            name: _run(DEFAULT_SCALE, factory, scheme).recovery
            for name, scheme in RECOVERY_SCHEMES.items()
        }

    recoveries = run_once(sweep)
    per_scheme = {
        name: {
            bucket: report.buckets.get(bucket, 0.0)
            for bucket in buckets.RECOVERY_BUCKETS
        }
        for name, report in recoveries.items()
    }
    print_figure(
        "Extension — recovery time breakdown (Online Bidding)",
        render_table(
            ["scheme", *buckets.RECOVERY_BUCKETS, "total"],
            recovery_breakdown_rows(per_scheme),
        ),
    )

    totals = {name: sum(b.values()) for name, b in per_scheme.items()}
    assert min(totals, key=totals.get) == "MSR"
    assert totals["WAL"] > totals["MSR"] * 2
    # The WAL/DL/LV replayers skip rejected bids entirely, yet MSR's
    # abort pushdown still beats them.
    assert all(
        recoveries[name].state_verified is not False for name in recoveries
    )
