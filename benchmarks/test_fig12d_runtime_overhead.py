"""Fig. 12d — runtime overhead relative to native execution (SL).

Per-scheme I/O / Tracking / Sync seconds.  Shapes to hold: LV pays the
most tracking (vector maintenance); selective logging keeps MSR's
tracking and I/O well below DL/LV; I/O remains a major component for
every logging scheme.
"""

from __future__ import annotations

from repro import buckets
from repro.harness.figures import DEFAULT_SCALE, fig12d_overhead
from repro.harness.report import format_seconds, print_figure, render_table


def test_fig12d_runtime_overhead(run_once):
    results = run_once(fig12d_overhead, DEFAULT_SCALE)

    rows = []
    for name, per_bucket in results.items():
        rows.append(
            [
                name,
                *(
                    format_seconds(per_bucket[b])
                    for b in buckets.RUNTIME_OVERHEAD_BUCKETS
                ),
                format_seconds(sum(per_bucket.values())),
            ]
        )
    print_figure(
        "Fig. 12d — runtime overhead breakdown (SL)",
        render_table(
            ["scheme", *buckets.RUNTIME_OVERHEAD_BUCKETS, "total"], rows
        ),
    )

    assert results["NAT"][buckets.IO] == 0.0
    assert results["NAT"][buckets.TRACK] == 0.0
    lv_track = results["LV"][buckets.TRACK]
    for name in ("NAT", "CKPT", "WAL", "MSR"):
        assert lv_track > results[name][buckets.TRACK], name
    assert results["MSR"][buckets.TRACK] < results["DL"][buckets.TRACK]
    assert results["MSR"][buckets.IO] < results["DL"][buckets.IO]
