"""Ablation — incremental (delta) checkpoints.

§VIII-D finds I/O the dominant runtime overhead and points at reducing
it; delta checkpoints are the classic lever (persist only records
written since the last checkpoint, anchored by periodic fulls).  This
bench quantifies the trade on MSR over Toll Processing — whose writes
concentrate on hot segments, the delta-friendly pattern: checkpoint
bytes written and runtime throughput versus the longer recovery reload
of replaying a delta chain.
"""

from __future__ import annotations

from repro.core.morphstreamr import MorphStreamR
from repro.harness.figures import DEFAULT_SCALE, _run, tp_factory
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)


def test_ablation_incremental_checkpoints(run_once):
    def sweep():
        factory = tp_factory()
        results = {}
        for label, kwargs in (
            ("full snapshots", {}),
            (
                "incremental (full every 4)",
                dict(incremental_snapshots=True, full_snapshot_every=4),
            ),
        ):
            outcome = _run(DEFAULT_SCALE, factory, MorphStreamR, **kwargs)
            results[label] = {
                "runtime_eps": outcome.runtime.throughput_eps,
                "snapshot_bytes": outcome.runtime.snapshot_bytes_written,
                "recovery_s": outcome.recovery.elapsed_seconds,
                "reload_s": outcome.recovery.buckets.get("reload", 0.0),
            }
        return results

    results = run_once(sweep)
    rows = [
        [
            label,
            format_throughput(row["runtime_eps"]),
            f"{row['snapshot_bytes'] / 1024:.1f} KiB",
            format_seconds(row["reload_s"]),
            format_seconds(row["recovery_s"]),
        ]
        for label, row in results.items()
    ]
    print_figure(
        "Ablation — full vs incremental checkpoints (MSR on TP)",
        render_table(
            ["mode", "runtime", "ckpt bytes written", "reload", "recovery"], rows
        ),
    )

    full = results["full snapshots"]
    incremental = results["incremental (full every 4)"]
    # Deltas shrink durable snapshot state and never hurt runtime...
    assert incremental["snapshot_bytes"] < full["snapshot_bytes"]
    assert incremental["runtime_eps"] >= full["runtime_eps"] * 0.99
    # ...at the price of a longer reload chain during recovery.
    assert incremental["reload_s"] >= full["reload_s"]
