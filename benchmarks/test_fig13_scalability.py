"""Fig. 13 — recovery throughput as the number of cores increases.

Input events recovered per second for every scheme on SL/GS/TP from 1
to 32 cores.  Shapes to hold: MSR scales effectively on all three
applications; WAL saturates immediately (sequential redo, and is the
best choice at a single core); CKPT scales on low-contention workloads
but is synchronization-bound on GS; LV's scaling is limited by the
workload's inherent parallelism.
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig13_scalability
from repro.harness.report import format_throughput, print_figure, render_table

CORES = (1, 2, 4, 8, 16, 32)


def test_fig13_scalability(run_once):
    results = run_once(fig13_scalability, DEFAULT_SCALE, CORES)

    for app, per_scheme in results.items():
        rows = [
            [name, *(format_throughput(eps) for _c, eps in points)]
            for name, points in per_scheme.items()
        ]
        print_figure(
            f"Fig. 13 — recovery throughput vs cores ({app})",
            render_table(["scheme", *(str(c) for c in CORES)], rows),
        )

    for app, per_scheme in results.items():
        msr = dict(per_scheme["MSR"])
        wal = dict(per_scheme["WAL"])
        assert msr[32] > 5 * msr[1], app  # MSR scales
        assert wal[32] < 2 * wal[1], app  # WAL does not
        assert msr[32] == max(
            dict(points)[32] for points in per_scheme.values()
        ), app

    # WAL wins at a single core (no sort, while MSR pays its constant
    # dependency-aware-optimization overhead), especially on TP.
    assert dict(results["TP"]["WAL"])[1] > dict(results["TP"]["MSR"])[1]

    # CKPT scales worse on contended GS than on SL.
    ckpt_gs = dict(results["GS"]["CKPT"])
    ckpt_sl = dict(results["SL"]["CKPT"])
    assert ckpt_gs[32] / ckpt_gs[1] < ckpt_sl[32] / ckpt_sl[1]
