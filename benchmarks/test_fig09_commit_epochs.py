"""Fig. 9 — runtime vs recovery throughput under commitment epochs.

MorphStreamR on the four Grep&Sum contention regimes of §VI-B (LSFD,
LSMD, HSFD, HSMD) across log-commitment epoch lengths.  Shapes to hold:
LSFD improves in both phases with larger epochs; LSMD's recovery peaks
at a moderate epoch; the high-skew regimes show *inverse* trends —
runtime prefers small epochs, recovery prefers large ones.
"""

from __future__ import annotations

from repro.harness.figures import DEFAULT_SCALE, fig9_commit_epochs
from repro.harness.report import format_throughput, print_figure, render_table

EPOCHS = (64, 128, 256, 512, 1024)


def test_fig09_commit_epochs(run_once):
    curves = run_once(fig9_commit_epochs, DEFAULT_SCALE, EPOCHS)

    rows = []
    for regime, points in curves.items():
        for epoch_len, runtime_eps, recovery_eps in points:
            rows.append(
                [
                    regime,
                    epoch_len,
                    format_throughput(runtime_eps),
                    format_throughput(recovery_eps),
                ]
            )
    print_figure(
        "Fig. 9 — MSR throughput vs log commitment epoch (GS regimes)",
        render_table(["regime", "epoch", "runtime", "recovery"], rows),
    )

    def series(regime, index):
        return [p[index] for p in curves[regime]]

    # LSFD: biggest epoch is best (or tied) for recovery.
    lsfd_recovery = series("LSFD", 2)
    assert lsfd_recovery[-1] == max(lsfd_recovery)
    # High skew: runtime monotonically prefers smaller epochs...
    hsmd_runtime = series("HSMD", 1)
    assert hsmd_runtime[0] > hsmd_runtime[-1]
    # ...while recovery prefers larger ones (inverse trends).
    hsmd_recovery = series("HSMD", 2)
    assert hsmd_recovery[0] < max(hsmd_recovery[2:])
    hsfd_recovery = series("HSFD", 2)
    assert hsfd_recovery[0] < hsfd_recovery[-1]
