"""Fig. 11(a-c) — recovery-time breakdown per scheme per application.

For SL, GS and TP: per-bucket (Reload / Execute / Construct / Abort /
Explore / Wait) recovery seconds for CKPT/WAL/DL/LV/MSR.  Shapes to
hold: MSR total lowest everywhere; WAL's Wait dominates (sequential
redo) and its Reload is the largest (global sort); DL's Construct
(graph reconstruction) exceeds everyone else's; MSR's Explore is
minimal.
"""

from __future__ import annotations

from repro import buckets
from repro.harness.figures import DEFAULT_SCALE, fig11_breakdown
from repro.harness.report import (
    print_figure,
    recovery_breakdown_rows,
    render_table,
)

HEADERS = ["scheme", *buckets.RECOVERY_BUCKETS, "total"]


def test_fig11_recovery_breakdown(run_once):
    results = run_once(fig11_breakdown, DEFAULT_SCALE)

    for app, per_scheme in results.items():
        print_figure(
            f"Fig. 11 — recovery time breakdown ({app})",
            render_table(HEADERS, recovery_breakdown_rows(per_scheme)),
        )

    for app, per_scheme in results.items():
        totals = {name: sum(b.values()) for name, b in per_scheme.items()}
        assert min(totals, key=totals.get) == "MSR", (app, totals)
        wal = per_scheme["WAL"]
        assert wal[buckets.WAIT] == max(wal.values())
        assert wal[buckets.RELOAD] == max(
            b[buckets.RELOAD] for b in per_scheme.values()
        )
        assert per_scheme["DL"][buckets.CONSTRUCT] == max(
            b[buckets.CONSTRUCT] for b in per_scheme.values()
        )
