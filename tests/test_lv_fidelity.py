"""Logged-vector fidelity: the vectors LV logs are used, not discarded.

ISSUE-10 satellite coverage for the LSN-vector fix:

- recovery verifies every logged vector against the partial order
  recomputed from the rebuilt committed-only TPG; a tampered (but
  CRC-valid) vector raises the distinct :class:`VectorMismatchError`
  and degrades to rung-2 event replay instead of silently replaying a
  wrong partial order;
- abort-heavy epochs recover on the fast rung — the runtime vectors
  (computed over the committed-only TPG) match recovery's recomputation
  bit for bit, which was exactly what the old full-TPG path violated;
- ``_vectors_for`` fails loudly when a dependency source holds no log
  position (the old silent-drop path);
- property: every set vector entry references a strictly earlier
  position in its stream, for both the dense and compressed encodings;
- encode/decode round-trips for LV and LVC.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.engine.tpg import build_tpg
from repro.errors import CorruptSegmentError, VectorMismatchError
from repro.ft.lsnvector import STREAM, LSNVector, LSNVectorCompressed
from repro.storage.codec import decode, encode
from repro.storage.integrity import protect, verify
from repro.workloads.grep_sum import GrepSum
from repro.workloads.streaming_ledger import StreamingLedger
from tests.conftest import serial_ground_truth

VECTOR_SCHEMES = [LSNVector, LSNVectorCompressed]


def abort_heavy_sl():
    """Every fifth transaction aborts: the regime that exposed the bug
    (dependencies routed through aborted writers)."""
    return StreamingLedger(
        64,
        transfer_ratio=0.7,
        multi_partition_ratio=0.5,
        skew=0.5,
        forced_abort_ratio=0.2,
        num_partitions=4,
    )


def crashed_scheme(scheme_cls, workload, events, **kwargs):
    scheme = scheme_cls(
        workload, num_workers=3, epoch_len=40, snapshot_interval=3, **kwargs
    )
    scheme.process_stream(events)
    scheme.crash()
    return scheme


def tamper_vector(scheme, epoch_id, record_index):
    """Rewrite one logged vector (CRC-valid) to a wrong partial order."""
    key = (STREAM, epoch_id)
    blob = scheme.disk.logs._segments[key]
    records = decode(verify(blob, "test"))
    cmd, vec = records[record_index]
    # Claim a dependency on the newest possible position of stream 0 —
    # a partial order the committed-only TPG cannot produce.
    tampered = scheme._decode_vector(vec)
    tampered = list(tampered)
    tampered[0] = len(records)  # beyond any real position
    records[record_index] = (cmd, scheme._encode_vector(tampered))
    scheme.disk.logs._segments[key] = protect(encode(records))


class TestVectorVerification:
    @pytest.mark.parametrize("scheme_cls", VECTOR_SCHEMES)
    def test_tampered_vector_degrades_to_event_replay(self, gs, scheme_cls):
        """A stale/corrupt vector payload is caught before any state
        mutation and the ladder replays that epoch from the event store;
        the final state is still bit-exact."""
        events = gs.generate(280, seed=5)
        scheme = crashed_scheme(scheme_cls, gs, events)
        tamper_vector(scheme, epoch_id=6, record_index=2)
        report = scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(gs, events)
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert report.degraded()
        assert report.ladder.get("replay", 0) == 1
        assert [f.epoch_id for f in report.fallbacks] == [6]
        assert report.fallbacks[0].error == "VectorMismatchError"
        assert "disagrees with recomputed" in report.fallbacks[0].detail

    def test_strict_mode_raises_the_distinct_error(self, gs):
        """allow_degraded_recovery=False surfaces VectorMismatchError
        itself, carrying the epoch and record that disagreed."""
        events = gs.generate(280, seed=5)
        scheme = crashed_scheme(
            LSNVector, gs, events, allow_degraded_recovery=False
        )
        tamper_vector(scheme, epoch_id=6, record_index=2)
        with pytest.raises(VectorMismatchError) as excinfo:
            scheme.recover()
        assert excinfo.value.epoch_id == 6
        assert excinfo.value.record_index == 2
        # Distinct type, but still a degradable storage error so the
        # ladder (and chaos tooling) can treat it like corruption.
        assert isinstance(excinfo.value, CorruptSegmentError)
        assert scheme.store is None  # nothing installed

    @pytest.mark.parametrize("scheme_cls", VECTOR_SCHEMES)
    def test_abort_heavy_epochs_recover_on_fast_rung(self, scheme_cls):
        """Runtime vectors equal recovery's recomputation even when
        dependencies were routed through aborted transactions — the
        fidelity fix itself.  Any residual mismatch would surface as a
        replay fallback here."""
        workload = abort_heavy_sl()
        events = workload.generate(320, seed=9)
        scheme = crashed_scheme(scheme_cls, workload, events)
        report = scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(workload, events)
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert not report.degraded()
        assert report.ladder.get("fast", 0) == report.epochs_replayed
        assert set(scheme.sink.outputs()) == {e.seq for e in events}


class TestVectorsFor:
    def test_unresolved_dependency_fails_loudly(self, gs):
        """A dependency source without a log position is a contract
        violation (the old code silently encoded it as 'no dependency')."""
        events = gs.generate(40, seed=1)
        txns = preprocess(events, gs, 0)
        scheme = LSNVector(gs, num_workers=3)
        deps = {t.txn_id: () for t in txns}
        deps[txns[0].txn_id] = (999_999,)  # never assigned a position
        with pytest.raises(AssertionError, match="holds no log position"):
            scheme._vectors_for(txns, deps, aborted=())

    def test_committed_only_deps_all_resolve(self, sl):
        """With deps from the committed-only TPG every source resolves,
        even when the full-batch TPG routes edges through aborts."""
        events = sl.generate(200, seed=4)
        txns = preprocess(events, sl, 0)
        store = sl.initial_state()
        outcome = execute_serial(store, txns)
        scheme = LSNVector(sl, num_workers=3)
        tpg = build_tpg(txns)
        deps = scheme._committed_deps(txns, tpg, outcome.aborted)
        vectors = scheme._vectors_for(txns, deps, outcome.aborted)
        assert set(vectors) == {
            t.txn_id for t in txns if t.txn_id not in outcome.aborted
        }


@given(
    seed=st.integers(0, 10_000),
    skew=st.floats(0.0, 0.99),
    mp_ratio=st.floats(0.0, 1.0),
    abort_ratio=st.floats(0.0, 0.6),
    compressed=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_property_entries_reference_strictly_earlier_positions(
    seed, skew, mp_ratio, abort_ratio, compressed
):
    """Every set entry of every vector points at a position already
    assigned in that stream — i.e. strictly earlier in commit order.
    A violation would deadlock replay (a transaction waiting on a
    record at or after itself)."""
    workload = GrepSum(
        96,
        list_len=3,
        skew=skew,
        multi_partition_ratio=mp_ratio,
        abort_ratio=abort_ratio,
        num_partitions=3,
    )
    events = workload.generate(120, seed=seed)
    txns = preprocess(events, workload, 0)
    store = workload.initial_state()
    outcome = execute_serial(store, txns)
    cls = LSNVectorCompressed if compressed else LSNVector
    scheme = cls(workload, num_workers=3)
    tpg = build_tpg(txns)
    deps = scheme._committed_deps(txns, tpg, outcome.aborted)
    vectors = scheme._vectors_for(txns, deps, outcome.aborted)
    next_pos = [0] * scheme.num_workers
    for txn in txns:
        if txn.txn_id in outcome.aborted:
            continue
        # Round-trip through the scheme's wire form first.
        vector = scheme._decode_vector(
            scheme._encode_vector(vectors[txn.txn_id])
        )
        for stream, pos in enumerate(vector):
            if pos >= 0:
                assert pos < next_pos[stream], (
                    f"txn {txn.txn_id} references stream {stream} "
                    f"position {pos} but only {next_pos[stream]} exist"
                )
        next_pos[scheme._stream_of(txn)] += 1


@given(
    vector=st.lists(st.integers(-1, 500), min_size=1, max_size=12),
    compressed=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_property_encode_decode_round_trip(vector, compressed):
    workload = GrepSum(8, num_partitions=2)
    cls = LSNVectorCompressed if compressed else LSNVector
    scheme = cls(workload, num_workers=len(vector))
    encoded = scheme._encode_vector(vector)
    assert scheme._decode_vector(encoded) == tuple(vector)
    if compressed:
        # The compressed wire form carries only the set entries.
        assert len(encoded) == sum(1 for p in vector if p >= 0)
