"""Property-based end-to-end recovery: every scheme, random workloads.

The central invariant of the whole system — after an arbitrary
runtime/crash/recovery cycle, the recovered state equals the serial
ground truth and every event's output is delivered exactly once —
checked under randomized workload parameters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector
from repro.ft.wal import WriteAheadLog
from repro.workloads.grep_sum import GrepSum
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.toll_processing import TollProcessing
from tests.conftest import serial_ground_truth

SCHEMES = [
    GlobalCheckpoint,
    WriteAheadLog,
    DependencyLogging,
    LSNVector,
    MorphStreamR,
]


def _cycle_and_check(workload, scheme_cls, seed, **kwargs):
    events = workload.generate(240, seed=seed)
    scheme = scheme_cls(
        workload, num_workers=3, epoch_len=40, snapshot_interval=3, **kwargs
    )
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    expected, _txns, _outcome = serial_ground_truth(workload, events)
    assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
    assert len(scheme.sink) == len(events)
    assert set(scheme.sink.outputs()) == {e.seq for e in events}


@given(
    seed=st.integers(0, 10_000),
    skew=st.floats(0.0, 0.99),
    list_len=st.integers(1, 6),
    mp_ratio=st.floats(0.0, 1.0),
    abort_ratio=st.floats(0.0, 0.6),
    scheme_index=st.integers(0, len(SCHEMES) - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_grep_sum_recovery(
    seed, skew, list_len, mp_ratio, abort_ratio, scheme_index
):
    workload = GrepSum(
        96,
        list_len=list_len,
        skew=skew,
        multi_partition_ratio=mp_ratio,
        abort_ratio=abort_ratio,
        num_partitions=3,
    )
    _cycle_and_check(workload, SCHEMES[scheme_index], seed)


@given(
    seed=st.integers(0, 10_000),
    transfer_ratio=st.floats(0.0, 1.0),
    mp_ratio=st.floats(0.0, 1.0),
    skew=st.floats(0.0, 0.9),
    balance=st.floats(50.0, 5000.0),
    scheme_index=st.integers(0, len(SCHEMES) - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_streaming_ledger_recovery(
    seed, transfer_ratio, mp_ratio, skew, balance, scheme_index
):
    workload = StreamingLedger(
        48,
        transfer_ratio=transfer_ratio,
        multi_partition_ratio=mp_ratio,
        skew=skew,
        initial_balance=balance,
        forced_abort_ratio=0.05,
        num_partitions=3,
    )
    _cycle_and_check(workload, SCHEMES[scheme_index], seed)


@given(
    seed=st.integers(0, 10_000),
    skew=st.floats(0.0, 0.99),
    capacity=st.floats(3.0, 60.0),
    scheme_index=st.integers(0, len(SCHEMES) - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_toll_processing_recovery(seed, skew, capacity, scheme_index):
    workload = TollProcessing(
        24, skew=skew, capacity=capacity, num_partitions=3
    )
    _cycle_and_check(workload, SCHEMES[scheme_index], seed)


@given(
    seed=st.integers(0, 10_000),
    selective=st.booleans(),
    restructure=st.booleans(),
    pushdown=st.booleans(),
    lpt=st.booleans(),
    commit_every=st.sampled_from([1, 3]),
)
@settings(max_examples=40, deadline=None)
def test_property_msr_option_lattice(
    seed, selective, restructure, pushdown, lpt, commit_every
):
    """Every corner of the MSR option lattice recovers exactly."""
    workload = GrepSum(
        96, skew=0.7, abort_ratio=0.15, multi_partition_ratio=0.6,
        num_partitions=3,
    )
    options = MSROptions(
        selective_logging=selective,
        op_restructure=restructure,
        abort_pushdown=pushdown,
        opt_task_assign=lpt,
    )
    _cycle_and_check(
        workload, MorphStreamR, seed, options=options, commit_every=commit_every
    )


@given(
    seed=st.integers(0, 10_000),
    crash_epochs=st.integers(1, 3),
    scheme_index=st.integers(0, len(SCHEMES) - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_multiple_crash_recover_cycles(seed, crash_epochs, scheme_index):
    """Crash → recover → keep processing → crash again: still exact."""
    workload = GrepSum(64, skew=0.5, abort_ratio=0.1, num_partitions=3)
    events = workload.generate(400, seed=seed)
    scheme = SCHEMES[scheme_index](
        workload, num_workers=3, epoch_len=40, snapshot_interval=4
    )
    scheme.process_stream(events[:200])
    scheme.crash()
    scheme.recover()
    scheme.process_stream(events[200:])
    scheme.crash()
    scheme.recover()
    expected, _txns, _outcome = serial_ground_truth(workload, events)
    assert scheme.store.equals(expected)
    assert len(scheme.sink) == 400
