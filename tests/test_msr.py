"""MorphStreamR: view contents, recovery paths, ablations, fallbacks."""

from __future__ import annotations

import pytest

from repro import buckets
from repro.core.logmanager import STREAM as MSR_STREAM
from repro.core.commitment import AdaptiveCommitController
from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.core.views import CONDITION_INDEX
from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.errors import ConfigError
from tests.conftest import serial_ground_truth

RUN = dict(num_workers=4, epoch_len=50, snapshot_interval=3)
N_EVENTS = 350  # 7 epochs; snapshot at 5; recovery replays epoch 6


def run_cycle(workload, seed=0, **kwargs):
    events = workload.generate(N_EVENTS, seed=seed)
    scheme = MorphStreamR(workload, **{**RUN, **kwargs})
    runtime = scheme.process_stream(events)
    scheme.crash()
    recovery = scheme.recover()
    expected, _txns, outcome = serial_ground_truth(workload, events)
    return scheme, runtime, recovery, expected, outcome


ABLATIONS = [
    ("full", MSROptions()),
    ("no_selective", MSROptions(selective_logging=False)),
    ("simple", MSROptions(op_restructure=False, abort_pushdown=False, opt_task_assign=False)),
    ("restructure_only", MSROptions(abort_pushdown=False, opt_task_assign=False)),
    ("pushdown_no_lpt", MSROptions(opt_task_assign=False)),
    ("pushdown_no_restructure", MSROptions(op_restructure=False, opt_task_assign=False)),
]


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("label,options", ABLATIONS)
    def test_every_ablation_recovers_exact_state(self, workload, label, options):
        scheme, _rt, _rec, expected, _outcome = run_cycle(
            workload, options=options
        )
        assert scheme.store.equals(expected), (label, scheme.store.diff(expected, 5))

    @pytest.mark.parametrize("label,options", ABLATIONS)
    def test_every_ablation_delivers_exactly_once(self, gs, label, options):
        scheme, _rt, _rec, _expected, _outcome = run_cycle(gs, options=options)
        assert len(scheme.sink) == N_EVENTS

    def test_deterministic_timings(self, sl):
        _s1, rt1, rec1, _e1, _o1 = run_cycle(sl)
        _s2, rt2, rec2, _e2, _o2 = run_cycle(sl)
        assert rt1.elapsed_seconds == rt2.elapsed_seconds
        assert rec1.elapsed_seconds == rec2.elapsed_seconds


class TestRuntimeViews:
    def _segment(self, workload, epoch=6, **kwargs):
        events = workload.generate(N_EVENTS, seed=0)
        scheme = MorphStreamR(workload, **{**RUN, **kwargs})
        scheme.process_stream(events)
        segment, _io = scheme.lm.load_epoch(epoch)
        return scheme, events, segment

    def test_abort_view_matches_serial_aborts(self, tp):
        scheme, events, segment = self._segment(tp)
        _store, _txns, outcome = serial_ground_truth(tp, events)
        epoch6 = {e.seq for e in events[300:350]}
        assert set(segment.abort_view.aborted) == outcome.aborted & epoch6

    def test_parametric_view_values_match_serial_reads(self, sl):
        scheme, events, segment = self._segment(
            sl, options=MSROptions(selective_logging=False)
        )
        # Without selective logging every sourced read of a committed
        # transaction is recorded; check values against ground truth.
        batch = events[300:350]
        store6 = sl.initial_state()
        txns_before = preprocess(events[:300], sl, 0)
        execute_serial(store6, txns_before)
        txns6 = preprocess(batch, sl, 0)
        outcome6 = execute_serial(store6, txns6)
        checked = 0
        for txn in txns6:
            if txn.txn_id in outcome6.aborted:
                continue
            for idx, op in enumerate(txn.ops):
                for ref, value in zip(op.reads, outcome6.read_values[op.uid]):
                    if segment.parametric_view.has(txn.txn_id, idx, ref):
                        assert segment.parametric_view.lookup(
                            txn.txn_id, idx, ref
                        ) == value
                        checked += 1
        assert checked > 0

    def test_condition_reads_recorded_with_condition_index(self, sl):
        _scheme, _events, segment = self._segment(
            sl, options=MSROptions(selective_logging=False)
        )
        cond_entries = [
            key
            for key in segment.parametric_view._entries
            if key[1] == CONDITION_INDEX
        ]
        assert cond_entries

    def test_selective_logging_records_fewer_entries(self, sl):
        _s1, _e1, selective = self._segment(sl)
        _s2, _e2, full = self._segment(
            sl, options=MSROptions(selective_logging=False)
        )
        assert len(selective.parametric_view) < len(full.parametric_view)
        assert selective.partition_map is not None
        assert full.partition_map is None

    def test_partition_map_covers_epoch_chains(self, sl):
        scheme, events, segment = self._segment(sl)
        batch = events[300:350]
        txns = preprocess(batch, sl, 0)
        for txn in txns:
            for op in txn.ops:
                assert op.ref in segment.partition_map


class TestCommitInterval:
    def test_uncommitted_epochs_fall_back_to_reprocessing(self, gs):
        # commit_every=3 with crash at epoch 6: views for epoch 6 are
        # still buffered (commits at 2 and 5) and die with the crash.
        scheme, _rt, _rec, expected, _outcome = run_cycle(
            gs, commit_every=3
        )
        assert scheme.store.equals(expected)
        assert not scheme.lm.has_epoch(6)

    def test_commit_interval_must_divide_snapshot_interval(self, gs):
        with pytest.raises(ConfigError):
            MorphStreamR(gs, **RUN, commit_every=2)  # snapshot_interval=3

    def test_crash_drops_staged_segments(self, gs):
        events = gs.generate(N_EVENTS, seed=0)
        scheme = MorphStreamR(gs, **{**RUN, "commit_every": 3})
        scheme.process_stream(events)
        assert scheme.lm.buffered_epochs > 0
        scheme.crash()
        assert scheme.lm.buffered_epochs == 0


class TestRecoveryBehaviour:
    def test_restructured_execution_has_no_cross_worker_waits(self, sl):
        # MSR's recovery tasks carry no dependencies at all, so wait can
        # only come from load imbalance — assert it is far below CKPT's.
        from repro.ft.checkpoint import GlobalCheckpoint

        events = sl.generate(N_EVENTS, seed=0)
        msr = MorphStreamR(sl, **RUN)
        msr.process_stream(events)
        msr.crash()
        msr_rec = msr.recover()
        ckpt = GlobalCheckpoint(sl, **RUN)
        ckpt.process_stream(events)
        ckpt.crash()
        ckpt_rec = ckpt.recover()
        assert msr_rec.buckets.get(buckets.WAIT, 0) < ckpt_rec.buckets.get(
            buckets.WAIT, 1
        )

    def test_abort_pushdown_removes_abort_handling(self, tp):
        _s, _rt, with_pd, _e, outcome = run_cycle(tp)
        _s2, _rt2, without_pd, _e2, _o2 = run_cycle(
            tp, options=MSROptions(abort_pushdown=False, opt_task_assign=False)
        )
        assert outcome.aborted
        assert with_pd.buckets.get(buckets.ABORT, 0.0) < without_pd.buckets.get(
            buckets.ABORT, 0.0
        )

    def test_factor_analysis_monotone_improvement(self, gs):
        """Each Fig. 11d increment must not slow recovery down (much)."""
        times = []
        for _label, options in [
            ("simple", MSROptions(op_restructure=False, abort_pushdown=False, opt_task_assign=False)),
            ("+rest", MSROptions(abort_pushdown=False, opt_task_assign=False)),
            ("+abort", MSROptions(opt_task_assign=False)),
            ("+lpt", MSROptions()),
        ]:
            _s, _rt, rec, _e, _o = run_cycle(gs, options=options)
            times.append(rec.elapsed_seconds)
        assert times[1] < times[0]  # restructuring is the big win
        assert times[3] <= times[1] * 1.05

    def test_views_reloaded_from_disk_not_memory(self, sl):
        # Recovery must work from a scheme instance whose logging
        # manager buffers were wiped — only durable bytes remain.
        events = sl.generate(N_EVENTS, seed=0)
        scheme = MorphStreamR(sl, **RUN)
        scheme.process_stream(events)
        scheme.crash()
        assert scheme.lm.buffered_epochs == 0
        assert scheme.disk.logs.has_epoch(MSR_STREAM, 6)
        scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(sl, events)
        assert scheme.store.equals(expected)


class TestAdaptiveController:
    def test_epoch_len_adapts_during_stream(self):
        from repro.workloads.grep_sum import GrepSum

        workload = GrepSum(
            512, list_len=2, skew=0.0, multi_partition_ratio=0.1,
            abort_ratio=0.0, num_partitions=4,
        )
        controller = AdaptiveCommitController(32, 256)
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=64,
            snapshot_interval=4,
            controller=controller,
        )
        scheme.process_stream(workload.generate(600, seed=0))
        # LSFD regime: the controller pushes toward the maximum epoch.
        assert scheme.epoch_len == 256

    def test_adapted_run_still_recovers(self):
        from repro.workloads.grep_sum import GrepSum

        workload = GrepSum(256, skew=0.9, num_partitions=4)
        controller = AdaptiveCommitController(32, 128, recovery_weight=0.5)
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=64,
            snapshot_interval=4,
            controller=controller,
        )
        events = workload.generate(700, seed=0)
        scheme.process_stream(events)
        scheme.crash()
        scheme.recover()
        processed = scheme.sink.outputs()
        # All processed events recovered exactly once (the trailing
        # partial epoch was still pending and is not counted).
        expected, txns, outcome = serial_ground_truth(
            workload, events[: max(processed) + 1]
        )
        assert scheme.store.equals(expected)
