"""Result export: JSON/CSV artifacts round-trip and flatten correctly."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.errors import ConfigError
from repro.harness.export import (
    export_figure,
    figure_payload,
    load_json,
    to_csv,
    write_json,
)
from repro.harness.figures import QUICK_SCALE


class TestJson:
    def test_payload_shape(self):
        payload = figure_payload("fig2", QUICK_SCALE, {"MSR": 1.0})
        assert payload["figure"] == "fig2"
        assert payload["scale"]["epoch_len"] == QUICK_SCALE.epoch_len
        assert payload["data"] == {"MSR": 1.0}

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "fig.json"
        payload = figure_payload("x", QUICK_SCALE, [1, 2, 3])
        write_json(path, payload)
        assert load_json(path) == json.loads(json.dumps(payload))

    def test_output_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_json(a, {"z": 1, "a": 2})
        write_json(b, {"a": 2, "z": 1})
        assert a.read_text() == b.read_text()


def _rows(text):
    return list(csv.reader(io.StringIO(text)))


class TestCsv:
    def test_scalar_map(self):
        rows = _rows(to_csv({"MSR": 1.5, "WAL": 9.0}))
        assert rows[0] == ["key", "value"]
        assert ["MSR", "1.5"] in rows

    def test_nested_map(self):
        rows = _rows(to_csv({"MSR": {"reload": 1.0, "wait": 2.0}}))
        assert rows[0] == ["key", "reload", "wait"]
        assert rows[1] == ["MSR", "1.0", "2.0"]

    def test_curves_long_format(self):
        rows = _rows(to_csv({"MSR": [(1, 10.0), (2, 20.0)]}))
        assert rows[0] == ["key", "x", "y1"]
        assert ["MSR", "1", "10.0"] in rows

    def test_plain_point_list(self):
        rows = _rows(to_csv([(0.1, 1.0, 2.0)]))
        assert rows[0] == ["x", "y1", "y2"]
        assert rows[1] == ["0.1", "1.0", "2.0"]

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ConfigError):
            to_csv("a string")


class TestExportFigure:
    def test_flat_figure_writes_json_and_csv(self, tmp_path):
        written = export_figure(
            "fig12c", QUICK_SCALE, {"MSR": 100, "WAL": 200}, tmp_path
        )
        assert written["json"].exists()
        assert written["csv"].exists()
        payload = load_json(written["json"])
        assert payload["data"] == {"MSR": 100, "WAL": 200}

    def test_per_app_figure_writes_one_csv_per_app(self, tmp_path):
        data = {
            "SL": {"MSR": {"reload": 1.0}, "WAL": {"reload": 2.0}},
            "GS": {"MSR": {"reload": 3.0}, "WAL": {"reload": 4.0}},
        }
        written = export_figure("fig11", QUICK_SCALE, data, tmp_path)
        assert (tmp_path / "fig11_SL.csv").exists()
        assert (tmp_path / "fig11_GS.csv").exists()
        assert written["csv:SL"].read_text().startswith("key,reload")

    def test_tuples_become_lists_in_json(self, tmp_path):
        written = export_figure(
            "fig12b", QUICK_SCALE, [(0.1, 1.0, 2.0)], tmp_path
        )
        payload = load_json(written["json"])
        assert payload["data"] == [[0.1, 1.0, 2.0]]


class TestRegenerationScript:
    def test_quick_regeneration_end_to_end(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "regenerate_experiments.py"
        )
        result = subprocess.run(
            [
                sys.executable,
                str(script),
                "--quick",
                "--skip-calibration",
                "--out",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=1200,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        produced = {p.name for p in tmp_path.glob("*.json")}
        assert "fig2.json" in produced
        assert "fig13.json" in produced
        assert len(produced) >= 12
