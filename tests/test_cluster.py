"""Sharded-cluster recovery: failure domains, correlated kills, placement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterFault,
    ClusterFaultPlan,
    ClusterTopology,
    DependencyFrontier,
    FrontierEntry,
    PLACEMENT_NAMES,
    ShardMap,
    ShardedCluster,
    get_placement,
    parse_kill,
)
from repro.core.morphstreamr import MorphStreamR
from repro.engine.execution import preprocess
from repro.errors import (
    ClusterDataLossError,
    ConfigError,
    ReassignmentError,
    WorkloadError,
)
from repro.storage.device import StorageDevice
from repro.storage.filedisk import FileProgressStore
from repro.workloads.streaming_ledger import StreamingLedger

RUN = dict(workers_per_shard=2, epoch_len=32, snapshot_interval=2)


def small_workload(accounts: int = 64) -> StreamingLedger:
    return StreamingLedger(
        accounts,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


def make_cluster(
    num_shards: int = 4,
    kills=("rack:0",),
    kill_epoch: int = 2,
    placement: str = "checkpoint_spread",
    replication: int = 1,
    racks: int = 2,
    nodes_per_rack: int = 2,
    **kwargs,
):
    workload = small_workload()
    topology = ClusterTopology(num_shards, racks, nodes_per_rack)
    plan = ClusterFaultPlan(
        kills=[ClusterFault(k, after_epoch=kill_epoch) for k in kills]
    )
    options = dict(RUN)
    options.update(kwargs)
    cluster = ShardedCluster(
        workload,
        topology,
        placement=placement,
        replication=replication,
        fault_plan=plan,
        **options,
    )
    return workload, cluster


class TestTopology:
    def test_shard_to_node_spread_is_even_and_covers_all_nodes(self):
        topo = ClusterTopology(8, num_racks=2, nodes_per_rack=2)
        assert topo.num_nodes == 4
        nodes = [topo.node_of_shard(s) for s in range(8)]
        assert nodes == [0, 0, 1, 1, 2, 2, 3, 3]
        for node in range(topo.num_nodes):
            assert topo.shards_of_node(node) == tuple(
                s for s in range(8) if nodes[s] == node
            )

    def test_rack_arithmetic(self):
        topo = ClusterTopology(6, num_racks=3, nodes_per_rack=2)
        assert topo.nodes_of_rack(1) == (2, 3)
        assert topo.rack_of_node(5) == 2
        assert topo.rack_of_shard(0) == 0

    def test_kill_domains(self):
        topo = ClusterTopology(8, num_racks=2, nodes_per_rack=2)
        assert topo.nodes_killed(parse_kill("shard:3")) == ()
        assert topo.shards_killed(parse_kill("shard:3")) == (3,)
        assert topo.nodes_killed(parse_kill("node:1.0")) == (2,)
        assert topo.shards_killed(parse_kill("node:1.0")) == (4, 5)
        assert topo.nodes_killed(parse_kill("rack:0")) == (0, 1)
        assert topo.shards_killed(parse_kill("rack:0")) == (0, 1, 2, 3)

    def test_out_of_range_targets_rejected(self):
        topo = ClusterTopology(4)
        for spec in ("shard:9", "node:0.5", "node:7.0", "rack:2"):
            with pytest.raises(ConfigError):
                topo.validate(parse_kill(spec))

    def test_malformed_specs_rejected(self):
        for spec in ("", "rack", "rack:", "disk:0", "node:1", "shard:x"):
            with pytest.raises(ConfigError):
                parse_kill(spec)

    def test_parse_round_trip_labels(self):
        for spec in ("shard:2", "node:1.1", "rack:0"):
            assert parse_kill(spec).label() == spec

    def test_underpopulated_cluster_rejected(self):
        with pytest.raises(ConfigError):
            ClusterTopology(3, num_racks=2, nodes_per_rack=2)


class TestPlacement:
    def test_replicas_land_in_other_racks_first(self):
        topo = ClusterTopology(8, num_racks=2, nodes_per_rack=2)
        strategy = get_placement("checkpoint_spread")
        # Shard 0's primary is node 0 (rack 0); the first replica must
        # land in rack 1.
        replicas = strategy.replica_nodes(0, topo, 2)
        assert len(replicas) == 2
        assert 0 not in replicas
        assert topo.rack_of_node(replicas[0]) == 1

    def test_replication_zero_has_no_replicas(self):
        topo = ClusterTopology(4)
        assert get_placement("standby_replay").replica_nodes(0, topo, 0) == ()

    def test_survival_rules(self):
        topo = ClusterTopology(8, num_racks=2, nodes_per_rack=2)
        strategy = get_placement("checkpoint_spread")
        # Primary alive: always survives.
        assert strategy.survives(0, topo, 0, dead_nodes=(1, 2, 3))
        # Primary dead, replica alive: survives.
        assert strategy.survives(0, topo, 1, dead_nodes=(0,))
        # Primary dead, no replicas: lost.
        assert not strategy.survives(0, topo, 0, dead_nodes=(0,))
        # One replica in rack 1 (node 2): killing both loses the shard.
        assert not strategy.survives(0, topo, 1, dead_nodes=(0, 2))

    def test_rack_tolerance_scales_with_replication(self):
        topo = ClusterTopology(8, num_racks=2, nodes_per_rack=2)
        strategy = get_placement("checkpoint_spread")
        rack0 = topo.nodes_of_rack(0)
        for shard in range(8):
            assert strategy.survives(shard, topo, 1, dead_nodes=rack0)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError):
            get_placement("scatter")
        assert set(PLACEMENT_NAMES) == {"checkpoint_spread", "standby_replay"}


class TestShardingAndFrontier:
    def test_shard_map_partitions_every_key_exactly_once(self):
        from repro.engine.refs import StateRef

        workload = small_workload()
        smap = ShardMap(workload, 4)
        snapshot = workload.initial_state().snapshot()
        owners = {}
        total = 0
        for table, records in snapshot.items():
            for key in records:
                shard = smap.shard_of(StateRef(table, key))
                assert 0 <= shard < 4
                owners.setdefault(shard, []).append((table, key))
                total += 1
        assert sum(len(v) for v in owners.values()) == total
        assert set(owners) == set(range(4))

    def test_cross_shard_detection_matches_op_spread(self):
        workload = small_workload()
        smap = ShardMap(workload, 4)
        events = workload.generate(64, seed=3)
        txns = preprocess(events, workload, 0)
        crossings = [t for t in txns if smap.is_cross(t)]
        assert crossings, "workload must produce cross-shard transactions"
        for txn in crossings:
            assert len(smap.shards_of_txn(txn)) > 1

    def test_shard_workloads_refuse_to_generate(self):
        workload, cluster = make_cluster()
        with pytest.raises(WorkloadError):
            cluster.shards[0].workload.generate(10, seed=0)

    def test_frontier_entry_codec_round_trip(self):
        entry = FrontierEntry(
            seq=17, home=2, aborted=False, reads={0: (1.5, -2.0), 3: (0.0,)}
        )
        assert FrontierEntry.decode(entry.encoded()) == entry

    def test_frontier_epoch_round_trip(self):
        frontier = DependencyFrontier()
        entry = FrontierEntry(seq=5, home=1, aborted=True, reads={})
        frontier.record(entry)
        assert frontier.is_cross(5)
        assert not frontier.is_cross(6)
        assert frontier.aborted(5)
        payload = frontier.encode_epoch([5])
        fresh = DependencyFrontier()
        fresh.load_epoch(payload)
        assert fresh.entry(5) == entry


class TestClusterRecovery:
    def test_node_kill_recovers_exactly_and_keeps_processing(self):
        workload, cluster = make_cluster(kills=("node:0.0",))
        events = workload.generate(4 * 32, seed=7)
        cluster.process_stream(events)
        assert cluster.crashed
        report = cluster.recover()
        assert report.verdict == "survived"
        assert [r.shard for r in report.per_shard] == [0]
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_rack_kill_recovers_all_shards_in_parallel(self):
        workload, cluster = make_cluster(num_shards=8, kills=("rack:0",))
        events = workload.generate(4 * 32, seed=11)
        cluster.process_stream(events)
        report = cluster.recover()
        assert report.shards_killed == (0, 1, 2, 3)
        assert report.correlation_width == 2  # both rack-0 nodes died
        assert report.recovery_nodes == 2  # only rack 1 survives
        assert report.rto_seconds >= report.detection_seconds
        assert report.rto_seconds == pytest.approx(
            report.detection_seconds + report.makespan_seconds
        )
        assert report.rpo_events == 0
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_standby_replay_replays_full_history(self):
        workload, cluster = make_cluster(
            kills=("node:0.1",), kill_epoch=3, placement="standby_replay"
        )
        events = workload.generate(5 * 32, seed=5)
        cluster.process_stream(events)
        report = cluster.recover()
        for record in report.per_shard:
            # No periodic checkpoints: recovery starts from the initial
            # epoch -1 snapshot and replays every epoch since.
            assert record.checkpoint_epoch == -1
            assert record.epochs_replayed == 3
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_checkpoint_spread_restarts_from_newest_checkpoint(self):
        workload, cluster = make_cluster(
            kills=("node:0.1",), kill_epoch=4, snapshot_interval=2
        )
        events = workload.generate(6 * 32, seed=5)
        cluster.process_stream(events)
        report = cluster.recover()
        assert all(r.checkpoint_epoch >= 0 for r in report.per_shard)
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_shard_kill_leaves_storage_and_recovers(self):
        workload, cluster = make_cluster(kills=("shard:2",), replication=0)
        events = workload.generate(4 * 32, seed=2)
        cluster.process_stream(events)
        report = cluster.recover()  # storage survived: r0 is enough
        assert report.correlation_width == 0
        assert [r.shard for r in report.per_shard] == [2]
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_under_replication_is_loud_data_loss(self):
        workload, cluster = make_cluster(kills=("node:0.0",), replication=0)
        events = workload.generate(4 * 32, seed=9)
        cluster.process_stream(events)
        with pytest.raises(ClusterDataLossError) as exc_info:
            cluster.recover()
        assert exc_info.value.lost_shards == (0,)
        assert exc_info.value.lost_events > 0

    def test_correlated_kill_wider_than_replication_is_loud(self):
        workload, cluster = make_cluster(
            num_shards=8, kills=("node:0.0", "node:1.0"), replication=1
        )
        events = workload.generate(4 * 32, seed=4)
        cluster.process_stream(events)
        with pytest.raises(ClusterDataLossError):
            cluster.recover()

    def test_replication_two_survives_the_same_correlated_kill(self):
        workload, cluster = make_cluster(
            num_shards=8, kills=("node:0.0", "node:1.0"), replication=2
        )
        events = workload.generate(4 * 32, seed=4)
        cluster.process_stream(events)
        report = cluster.recover()
        assert report.correlation_width == 2
        cluster.process_stream([])
        assert cluster.verify_exact()

    def test_recovery_is_no_op_without_dead_shards(self):
        workload, cluster = make_cluster(kills=())
        events = workload.generate(2 * 32, seed=1)
        cluster.process_stream(events)
        assert not cluster.crashed


class TestReassignmentError:
    def test_empty_survivor_set_is_typed(self):
        from repro.core.assignment import lpt_reassign

        with pytest.raises(ReassignmentError):
            lpt_reassign([1.0], [0], (), dead_workers=(0, 1), num_workers=2)
        # ReassignmentError is a recovery error, not a config error.
        from repro.errors import RecoveryError

        assert issubclass(ReassignmentError, RecoveryError)


class TestAtomicWatermark:
    def test_save_leaves_no_temp_file(self, tmp_path):
        store = FileProgressStore(StorageDevice(), tmp_path)
        store.save({"scheme": "MSR", "crash_epoch": 3})
        assert (tmp_path / "progress.bin").exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_temp_debris_is_swept_on_open(self, tmp_path):
        store = FileProgressStore(StorageDevice(), tmp_path)
        store.save({"scheme": "MSR", "crash_epoch": 1})
        published = (tmp_path / "progress.bin").read_bytes()
        # A crash between temp-write and rename leaves garbage beside a
        # still-consistent published slot.
        (tmp_path / "progress.bin.tmp").write_bytes(b"torn half-write")
        reopened = FileProgressStore(StorageDevice(), tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []
        assert (tmp_path / "progress.bin").read_bytes() == published
        record, _io = reopened.load()
        assert record == {"scheme": "MSR", "crash_epoch": 1}

    def test_chain_mark_write_is_atomic_too(self, tmp_path):
        store = FileProgressStore(StorageDevice(), tmp_path)
        store.save({"scheme": "MSR", "crash_epoch": 1})
        store.save_chain_mark(5)
        assert (tmp_path / "chain_mark.bin").exists()
        assert list(tmp_path.glob("*.tmp")) == []


class TestWatermarkDegradationCounter:
    def test_torn_watermark_is_counted_not_fatal(self, sl):
        scheme = MorphStreamR(
            sl, num_workers=2, epoch_len=32, snapshot_interval=2
        )
        events = sl.generate(4 * 32, seed=3)
        scheme.process_stream(events)
        scheme.crash()
        # Fake a torn watermark flush from a previous dead recovery
        # attempt: the slot exists but fails framing verification.
        scheme.disk.progress._slot = b"\x00torn watermark bytes"
        report = scheme.recover()
        assert report.watermark_degradations == 1
        from tests.conftest import serial_ground_truth

        expected, _txns, _outcome = serial_ground_truth(sl, events[: 4 * 32])
        assert scheme.store.equals(expected)

    def test_clean_recovery_counts_zero(self, sl):
        scheme = MorphStreamR(
            sl, num_workers=2, epoch_len=32, snapshot_interval=2
        )
        scheme.process_stream(sl.generate(3 * 32, seed=3))
        scheme.crash()
        assert scheme.recover().watermark_degradations == 0


#: Kills that stay within a replication budget of 1 on a 2×2 topology.
WITHIN_BUDGET_KILLS = ("shard:0", "node:0.0", "node:1.1", "rack:0", "rack:1")


@given(
    num_shards=st.sampled_from([4, 6, 8]),
    placement=st.sampled_from(PLACEMENT_NAMES),
    kill=st.sampled_from(WITHIN_BUDGET_KILLS),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=12, deadline=None)
def test_property_within_budget_kills_recover_bit_identically(
    num_shards, placement, kill, seed
):
    """Any single-domain kill within the replication budget recovers the
    cluster to a state bit-identical to the serial single-instance run,
    for every shard count × placement combination."""
    workload, cluster = make_cluster(
        num_shards=num_shards,
        kills=(kill,),
        kill_epoch=2,
        placement=placement,
        replication=1,
    )
    events = workload.generate(3 * 32, seed=seed)
    cluster.process_stream(events)
    assert cluster.crashed
    report = cluster.recover()
    assert report.verdict == "survived"
    cluster.process_stream([])
    assert cluster.verify_exact()
