"""Virtual-time simulator: clocks, cost model, list-scheduling executor."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.sim.clock import Core, Machine
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import (
    ParallelExecutor,
    SimTask,
    critical_path_length,
    total_work,
)


class TestCore:
    def test_spend_advances_clock(self):
        core = Core(0)
        assert core.spend("execute", 1.5) == 1.5
        assert core.spend("execute", 0.5) == 2.0
        assert core.spent("execute") == 2.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            Core(0).spend("execute", -1.0)

    def test_advance_to_charges_gap_to_wait(self):
        core = Core(0)
        core.spend("execute", 1.0)
        core.advance_to(3.0, "wait")
        assert core.clock == 3.0
        assert core.spent("wait") == 2.0

    def test_advance_to_past_time_is_noop(self):
        core = Core(0)
        core.spend("execute", 2.0)
        core.advance_to(1.0)
        assert core.clock == 2.0
        assert core.spent("wait") == 0.0


class TestMachine:
    def test_requires_at_least_one_core(self):
        with pytest.raises(ConfigError):
            Machine(0)

    def test_elapsed_is_max_clock(self):
        machine = Machine(3)
        machine.cores[1].spend("execute", 5.0)
        assert machine.elapsed() == 5.0

    def test_barrier_aligns_and_charges_wait(self):
        machine = Machine(2)
        machine.cores[0].spend("execute", 4.0)
        machine.barrier()
        assert machine.cores[1].clock == 4.0
        assert machine.cores[1].spent("wait") == 4.0
        assert machine.cores[0].spent("wait") == 0.0

    def test_barrier_extra_charged_on_all_cores(self):
        machine = Machine(2)
        machine.barrier("sync", extra=0.5)
        assert all(c.spent("sync") == 0.5 for c in machine.cores)
        assert machine.elapsed() == 0.5

    def test_spend_parallel_distributes_round_robin(self):
        machine = Machine(2)
        machine.spend_parallel("execute", [1.0, 1.0, 1.0])
        assert machine.cores[0].clock == 2.0
        assert machine.cores[1].clock == 1.0

    def test_bucket_breakdown_averages_across_cores(self):
        machine = Machine(4)
        machine.spend_all("io", 2.0)
        assert machine.bucket_breakdown()["io"] == pytest.approx(2.0)
        assert machine.bucket_totals()["io"] == pytest.approx(8.0)

    def test_reset_clears_everything(self):
        machine = Machine(2)
        machine.spend_all("execute", 1.0)
        machine.reset()
        assert machine.elapsed() == 0.0
        assert machine.bucket_totals() == {}


class TestCostModel:
    def test_defaults_are_nonnegative(self):
        for name, value in DEFAULT_COSTS.__dict__.items():
            assert value >= 0, name

    def test_io_overlap_validated(self):
        with pytest.raises(ConfigError):
            CostModel(io_overlap=1.5)
        with pytest.raises(ConfigError):
            CostModel(io_overlap=-0.1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(udf=-1e-6)

    def test_scaled_multiplies_durations_not_overlap(self):
        scaled = DEFAULT_COSTS.scaled(2.0)
        assert scaled.udf == pytest.approx(DEFAULT_COSTS.udf * 2)
        assert scaled.io_overlap == DEFAULT_COSTS.io_overlap

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.scaled(0.0)


class TestParallelExecutor:
    def _machine(self, cores=2):
        machine = Machine(cores)
        return machine, ParallelExecutor(machine, sync_cost=1.0)

    def test_independent_tasks_overlap(self):
        machine, executor = self._machine()
        result = executor.run(
            [SimTask(1, 0, 5.0), SimTask(2, 1, 3.0)]
        )
        assert result.makespan == 5.0
        assert result.finish == {1: 5.0, 2: 3.0}

    def test_same_worker_serializes(self):
        machine, executor = self._machine()
        result = executor.run([SimTask(1, 0, 2.0), SimTask(2, 0, 2.0)])
        assert result.makespan == 4.0

    def test_cross_worker_dependency_adds_sync(self):
        machine, executor = self._machine()
        result = executor.run(
            [SimTask(1, 0, 2.0), SimTask(2, 1, 1.0, deps=(1,))]
        )
        # Task 2 starts at 2.0 + sync(1.0), finishes at 4.0.
        assert result.finish[2] == pytest.approx(4.0)
        assert result.cross_worker_edges == 1
        assert machine.cores[1].spent("wait") == pytest.approx(3.0)

    def test_same_worker_dependency_is_free(self):
        machine, executor = self._machine()
        result = executor.run(
            [SimTask(1, 0, 2.0), SimTask(2, 0, 1.0, deps=(1,))]
        )
        assert result.finish[2] == pytest.approx(3.0)
        assert result.cross_worker_edges == 0

    def test_remote_cost_charged_per_cross_edge(self):
        machine = Machine(2)
        executor = ParallelExecutor(
            machine, sync_cost=0.0, remote_cost=0.5, remote_bucket="explore"
        )
        executor.run([SimTask(1, 0, 1.0), SimTask(2, 1, 1.0, deps=(1,))])
        assert machine.cores[1].spent("explore") == pytest.approx(0.5)
        assert machine.cores[0].spent("explore") == 0.0

    def test_forward_reference_rejected(self):
        _machine, executor = self._machine()
        with pytest.raises(SchedulingError):
            executor.run([SimTask(2, 0, 1.0, deps=(1,)), SimTask(1, 0, 1.0)])

    def test_duplicate_uid_rejected(self):
        _machine, executor = self._machine()
        with pytest.raises(SchedulingError):
            executor.run([SimTask(1, 0, 1.0), SimTask(1, 0, 1.0)])

    def test_worker_out_of_range_rejected(self):
        _machine, executor = self._machine()
        with pytest.raises(SchedulingError):
            executor.run([SimTask(1, 5, 1.0)])

    def test_extra_bucket_components(self):
        machine, executor = self._machine()
        result = executor.run(
            [SimTask(1, 0, 1.0, extra=(("explore", 0.5), ("abort", 0.25)))]
        )
        assert result.finish[1] == pytest.approx(1.75)
        assert machine.cores[0].spent("explore") == pytest.approx(0.5)
        assert machine.cores[0].spent("abort") == pytest.approx(0.25)

    def test_makespan_never_beats_critical_path(self):
        tasks = [
            SimTask(1, 0, 2.0),
            SimTask(2, 1, 3.0, deps=(1,)),
            SimTask(3, 0, 1.0, deps=(2,)),
        ]
        _machine, executor = self._machine()
        result = executor.run(tasks)
        assert result.makespan >= critical_path_length(tasks)

    def test_makespan_never_beats_work_over_cores(self):
        tasks = [SimTask(i, i % 2, 1.0) for i in range(10)]
        _machine, executor = self._machine()
        result = executor.run(tasks)
        assert result.makespan >= total_work(tasks) / 2


class TestCriticalPath:
    def test_chain(self):
        tasks = [
            SimTask(1, 0, 1.0),
            SimTask(2, 0, 2.0, deps=(1,)),
            SimTask(3, 0, 3.0, deps=(2,)),
        ]
        assert critical_path_length(tasks) == pytest.approx(6.0)

    def test_sync_cost_on_edges(self):
        tasks = [SimTask(1, 0, 1.0), SimTask(2, 0, 1.0, deps=(1,))]
        assert critical_path_length(tasks, sync_cost=0.5) == pytest.approx(2.5)

    def test_empty(self):
        assert critical_path_length([]) == 0.0
        assert total_work([]) == 0.0

    def test_unseen_dependency_rejected(self):
        with pytest.raises(SchedulingError):
            critical_path_length([SimTask(2, 0, 1.0, deps=(1,))])
