"""Figure experiments at reduced scale: the paper's shape claims.

These are integration tests over :mod:`repro.harness.figures` — each
asserts the qualitative result the corresponding paper figure reports
(who wins, which direction a sweep moves), at a scale small enough for
CI.  The full-scale numbers live in the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import buckets
from repro.harness.figures import (
    FigureScale,
    fig2_motivation,
    fig9_commit_epochs,
    fig11_breakdown,
    fig11d_factor,
    fig12a_runtime,
    fig12b_selective,
    fig12c_memory,
    fig12d_overhead,
    fig13_scalability,
    fig14a_multi_partition,
    fig14b_skew,
    fig14c_aborts,
)

#: Small but not tiny: large enough for the orderings to be stable.
SCALE = FigureScale(epoch_len=128, snapshot_interval=4, recover_epochs=3)


@pytest.fixture(scope="module")
def fig2():
    return fig2_motivation(SCALE)


@pytest.fixture(scope="module")
def fig11():
    return fig11_breakdown(SCALE)


class TestFig2Motivation:
    def test_nat_has_highest_runtime_and_no_recovery(self, fig2):
        assert fig2["NAT"]["recovery_seconds"] == 0.0
        for name, row in fig2.items():
            assert row["runtime_eps"] <= fig2["NAT"]["runtime_eps"] * 1.001

    def test_msr_recovers_fastest(self, fig2):
        msr = fig2["MSR"]["recovery_seconds"]
        for name in ("CKPT", "WAL", "DL", "LV"):
            assert msr < fig2[name]["recovery_seconds"], name

    def test_wal_recovers_slowest(self, fig2):
        wal = fig2["WAL"]["recovery_seconds"]
        for name in ("CKPT", "DL", "LV", "MSR"):
            assert wal > fig2[name]["recovery_seconds"], name

    def test_dependency_trackers_slower_than_ckpt_on_sl(self, fig2):
        # §I: "DL and LV ... cause even more overhead than CKPT".
        assert fig2["DL"]["recovery_seconds"] > fig2["CKPT"]["recovery_seconds"]


class TestFig11Breakdown:
    def test_msr_wins_every_application(self, fig11):
        for app, per_scheme in fig11.items():
            totals = {name: sum(b.values()) for name, b in per_scheme.items()}
            assert min(totals, key=totals.get) == "MSR", (app, totals)

    def test_wal_wait_dominates_its_breakdown(self, fig11):
        for app, per_scheme in fig11.items():
            wal = per_scheme["WAL"]
            assert wal[buckets.WAIT] == max(wal.values()), app

    def test_dl_construct_exceeds_all_other_schemes(self, fig11):
        for app, per_scheme in fig11.items():
            dl_construct = per_scheme["DL"][buckets.CONSTRUCT]
            for name, b in per_scheme.items():
                if name != "DL":
                    assert dl_construct > b[buckets.CONSTRUCT], (app, name)

    def test_msr_has_minimal_explore_time(self, fig11):
        # "leading to minimal explore time in all workloads"
        for app, per_scheme in fig11.items():
            msr_explore = per_scheme["MSR"][buckets.EXPLORE]
            assert msr_explore <= per_scheme["LV"][buckets.EXPLORE], app
            assert msr_explore <= per_scheme["CKPT"][buckets.EXPLORE], app

    def test_abort_pushdown_shrinks_msr_abort_time_on_tp(self, fig11):
        tp = fig11["TP"]
        assert tp["MSR"][buckets.ABORT] < tp["CKPT"][buckets.ABORT]


class TestFig11dFactorAnalysis:
    @pytest.fixture(scope="class")
    def factor(self):
        return fig11d_factor(SCALE)

    def test_full_msr_beats_simple_everywhere(self, factor):
        for app, steps in factor.items():
            times = dict(steps)
            assert times["+OptTaskAssign"] < times["Simple"], app

    def test_restructuring_is_largest_gain_for_sl(self, factor):
        steps = dict(factor["SL"])
        gain_restructure = steps["Simple"] - steps["+OpRestructure"]
        gain_abort = steps["+OpRestructure"] - steps["+AbortPD"]
        gain_lpt = steps["+AbortPD"] - steps["+OptTaskAssign"]
        assert gain_restructure > gain_abort
        assert gain_restructure > gain_lpt

    def test_task_assignment_helps_skewed_gs(self, factor):
        steps = dict(factor["GS"])
        assert steps["+OptTaskAssign"] < steps["+AbortPD"]

    def test_abort_pushdown_helps_tp(self, factor):
        steps = dict(factor["TP"])
        assert steps["+AbortPD"] < steps["+OpRestructure"]


class TestFig12Runtime:
    @pytest.fixture(scope="class")
    def runtime(self):
        return fig12a_runtime(SCALE, apps=("SL",))

    def test_ckpt_has_least_ft_overhead(self, runtime):
        per = runtime["SL"]
        for name in ("WAL", "DL", "LV", "MSR"):
            assert per["CKPT"] >= per[name], name

    def test_msr_beats_log_based_schemes(self, runtime):
        per = runtime["SL"]
        for name in ("WAL", "DL", "LV"):
            assert per["MSR"] > per[name], name

    def test_msr_within_a_fifth_of_native(self, runtime):
        per = runtime["SL"]
        assert per["MSR"] >= per["NAT"] * 0.8


class TestFig12bSelectiveLogging:
    def test_full_logging_wins_at_low_ratio(self):
        points = fig12b_selective(SCALE, ratios=(0.1, 1.0))
        ratio, eff_with, eff_without = points[0]
        assert eff_without > eff_with

    def test_gap_narrows_as_dependencies_grow(self):
        points = fig12b_selective(SCALE, ratios=(0.1, 0.5, 1.0))
        gaps = [without - with_ for _r, with_, without in points]
        assert gaps[-1] < gaps[0]


class TestFig12cMemory:
    @pytest.fixture(scope="class")
    def memory(self):
        return fig12c_memory(SCALE)

    def test_ckpt_uses_least_memory(self, memory):
        for name in ("WAL", "DL", "LV", "MSR"):
            assert memory["CKPT"] <= memory[name], name

    def test_msr_below_dl_and_lv(self, memory):
        assert memory["MSR"] < memory["DL"]
        assert memory["MSR"] < memory["LV"]


class TestFig12dOverheadBreakdown:
    @pytest.fixture(scope="class")
    def overhead(self):
        return fig12d_overhead(SCALE)

    def test_nat_has_no_io_or_tracking(self, overhead):
        assert overhead["NAT"][buckets.IO] == 0.0
        assert overhead["NAT"][buckets.TRACK] == 0.0

    def test_lv_has_most_tracking(self, overhead):
        lv = overhead["LV"][buckets.TRACK]
        for name in ("NAT", "CKPT", "WAL", "MSR"):
            assert lv > overhead[name][buckets.TRACK], name

    def test_selective_logging_cuts_msr_tracking_below_dl(self, overhead):
        assert overhead["MSR"][buckets.TRACK] < overhead["DL"][buckets.TRACK]


class TestFig13Scalability:
    @pytest.fixture(scope="class")
    def scalability(self):
        return fig13_scalability(SCALE, cores=(1, 4, 16), apps=("SL", "GS"))

    def test_msr_scales_on_every_app(self, scalability):
        for app, per_scheme in scalability.items():
            curve = dict(per_scheme["MSR"])
            assert curve[16] > 3 * curve[1], app

    def test_wal_does_not_scale(self, scalability):
        for app, per_scheme in scalability.items():
            curve = dict(per_scheme["WAL"])
            assert curve[16] < 2 * curve[1], app

    def test_wal_competitive_at_one_core(self, scalability):
        # §VIII-E: at low core counts WAL beats MSR (no sort needed,
        # while MSR pays its constant recovery-optimization overhead).
        sl = scalability["SL"]
        assert dict(sl["WAL"])[1] > dict(sl["MSR"])[1]

    def test_ckpt_bounded_on_contended_gs(self, scalability):
        gs_speedup = dict(scalability["GS"]["CKPT"])
        sl_speedup = dict(scalability["SL"]["CKPT"])
        assert (
            gs_speedup[16] / gs_speedup[1]
            < sl_speedup[16] / sl_speedup[1]
        )


class TestFig14Sensitivity:
    def test_msr_leads_across_multi_partition_ratios(self):
        results = fig14a_multi_partition(SCALE, ratios=(0.0, 1.0))
        for ratio_index in range(2):
            msr = results["MSR"][ratio_index][1]
            for name in ("CKPT", "WAL", "DL", "LV"):
                assert msr > results[name][ratio_index][1], name

    def test_lv_best_at_uniform_write_only(self):
        results = fig14b_skew(SCALE, skews=(0.0,))
        lv = results["LV"][0][1]
        for name in ("CKPT", "WAL", "DL", "MSR"):
            assert lv > results[name][0][1], name

    def test_lv_collapses_with_skew_but_msr_tolerates_it(self):
        results = fig14b_skew(SCALE, skews=(0.0, 0.99))
        lv_drop = results["LV"][1][1] / results["LV"][0][1]
        msr_drop = results["MSR"][1][1] / results["MSR"][0][1]
        assert lv_drop < 0.5
        assert msr_drop > 0.9

    def test_wal_improves_with_abort_ratio(self):
        results = fig14c_aborts(SCALE, abort_ratios=(0.0, 0.8))
        assert results["WAL"][1][1] > results["WAL"][0][1]

    def test_msr_lead_not_guaranteed_at_extreme_aborts(self):
        # §VIII-F: at 80% aborts the log-replay schemes overtake MSR.
        results = fig14c_aborts(SCALE, abort_ratios=(0.0, 0.8))
        assert results["MSR"][0][1] > results["LV"][0][1]
        assert results["LV"][1][1] > results["MSR"][1][1]
