"""Fig. 11 regression gate: the committed baseline must keep passing.

The gate exists because ISSUE 10 gave the baselines real teeth (PACMAN
parallel redo, compressed Taurus vectors): a cost-model or scheduler
change can now silently erode MSR's headline speedup.  These tests pin
the gate's own logic (schema check, regression floor, >1x headline) and
— the actual CI guard — recompute the gate and compare it against the
committed ``BENCH_fig11.json``.
"""

from __future__ import annotations

import copy
from pathlib import Path

import pytest

from repro.harness import figgate

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_fig11.json"


@pytest.fixture(scope="module")
def current():
    """One gate measurement shared by the module (virtual time, ~1s)."""
    return figgate.compute_gate()


class TestCompareGate:
    def test_identical_payloads_pass(self, current):
        assert figgate.compare_gate(current, current) == []

    def test_schema_mismatch_fails_with_regenerate_hint(self, current):
        stale = copy.deepcopy(current)
        stale["schema"] = "bench-fig11/v0"
        problems = figgate.compare_gate(current, stale)
        assert len(problems) == 1
        assert "figgate --update" in problems[0]

    def test_speedup_regression_trips_the_floor(self, current):
        """MSR losing more than the tolerance vs any committed speedup
        is reported per (workload, scheme) pair."""
        slowed = copy.deepcopy(current)
        app = next(iter(slowed["workloads"]))
        row = slowed["workloads"][app]["msr_speedup"]
        scheme = next(iter(row))
        row[scheme] *= 1.0 - 2 * figgate.GATE_TOLERANCE
        problems = figgate.compare_gate(slowed, current)
        assert len(problems) == 1
        assert scheme in problems[0] and "regressed" in problems[0]

    def test_within_tolerance_drift_passes(self, current):
        drifted = copy.deepcopy(current)
        for row in drifted["workloads"].values():
            for scheme in row["msr_speedup"]:
                # Stay above the absolute >1.0x headline floor — that
                # check is deliberately insensitive to the tolerance.
                row["msr_speedup"][scheme] = max(
                    row["msr_speedup"][scheme]
                    * (1.0 - 0.5 * figgate.GATE_TOLERANCE),
                    1.001,
                )
        assert figgate.compare_gate(drifted, current) == []

    def test_msr_losing_outright_always_fails(self, current):
        """Speedup <= 1.0 trips the headline check even if the committed
        baseline file itself were stale enough to allow it."""
        beaten = copy.deepcopy(current)
        permissive = copy.deepcopy(current)
        app = next(iter(beaten["workloads"]))
        scheme = next(iter(beaten["workloads"][app]["msr_speedup"]))
        beaten["workloads"][app]["msr_speedup"][scheme] = 0.9
        permissive["workloads"][app]["msr_speedup"][scheme] = 0.5
        problems = figgate.compare_gate(beaten, permissive)
        assert any("no longer beats" in p for p in problems)

    def test_missing_scheme_is_reported(self, current):
        partial = copy.deepcopy(current)
        app = next(iter(partial["workloads"]))
        partial["workloads"][app]["msr_speedup"].pop("PACMAN")
        problems = figgate.compare_gate(partial, current)
        assert any("PACMAN missing" in p for p in problems)


class TestCommittedBaseline:
    def test_gate_passes_against_committed_baseline(self, current):
        """The CI guard itself: today's code vs the committed numbers."""
        baseline = figgate.load_baseline(BASELINE_PATH)
        problems = figgate.compare_gate(current, baseline)
        assert problems == [], "\n".join(problems)

    def test_baseline_covers_every_strong_baseline(self):
        baseline = figgate.load_baseline(BASELINE_PATH)
        assert baseline["schema"] == figgate.GATE_SCHEMA
        for row in baseline["workloads"].values():
            assert set(row["msr_speedup"]) == set(figgate.GATE_BASELINES)
            # The headline held when the baseline was committed.
            assert all(s > 1.0 for s in row["msr_speedup"].values())

    def test_describe_mentions_every_workload(self, current):
        text = figgate.describe_gate(current)
        for app in current["workloads"]:
            assert app in text
