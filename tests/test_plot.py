"""ASCII plotting: deterministic geometry and scaling."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.plot import SERIES_GLYPHS, bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_maximum(self):
        chart = bar_chart({"a": 4.0, "b": 2.0}, width=8)
        lines = chart.splitlines()
        assert lines[0].count("█") == 8
        assert lines[1].count("█") == 4

    def test_labels_aligned(self):
        chart = bar_chart({"x": 1.0, "longer": 1.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_unit_suffix(self):
        chart = bar_chart({"a": 1500.0}, width=4, unit="/s")
        assert "1.5k/s" in chart

    def test_zero_values_handled(self):
        chart = bar_chart({"a": 0.0, "b": 0.0}, width=4)
        assert "█" not in chart

    def test_empty_input(self):
        assert bar_chart({}) == "(no data)"

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_single_series_corners(self):
        chart = line_chart(
            {"s": [(0.0, 0.0), (10.0, 100.0)]}, width=10, height=5
        )
        lines = chart.splitlines()
        # Max y lands on the top row, min y on the bottom row.
        assert "o" in lines[0]
        assert "o" in lines[4]

    def test_multiple_series_get_distinct_glyphs(self):
        chart = line_chart(
            {
                "first": [(0, 1), (1, 2)],
                "second": [(0, 2), (1, 1)],
            },
            width=12,
            height=6,
        )
        assert SERIES_GLYPHS[0] in chart
        assert SERIES_GLYPHS[1] in chart
        assert "first" in chart and "second" in chart

    def test_axis_labels_rendered(self):
        chart = line_chart(
            {"s": [(1, 1), (2, 2)]},
            width=8,
            height=4,
            x_label="cores",
            y_label="events/s",
        )
        assert "x: cores" in chart
        assert "y: events/s" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"s": [(0, 5.0), (1, 5.0)]}, width=6, height=3)
        assert "o" in chart

    def test_si_scaling_on_axis(self):
        chart = line_chart({"s": [(0, 0), (1, 2_000_000)]}, width=6, height=3)
        assert "2M" in chart

    def test_empty_input(self):
        assert line_chart({}) == "(no data)"

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            line_chart({"s": [(0, 0)]}, width=1)
        with pytest.raises(ConfigError):
            line_chart({"s": [(0, 0)]}, height=1)

    def test_deterministic(self):
        series = {"a": [(0, 1), (3, 9), (5, 4)]}
        assert line_chart(series) == line_chart(series)
