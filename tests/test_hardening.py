"""Hardening properties: fuzzed decoding, accounting invariants,
format versioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logmanager import SEGMENT_VERSION, LoggingManager, ViewSegment
from repro.core.views import AbortView, ParametricView
from repro.errors import RecoveryError, StorageError
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor, SimTask
from repro.storage.codec import decode, encode
from repro.storage.stores import Disk


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_property_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode to a value or raise StorageError —
    never any other exception (a recovery path must fail cleanly)."""
    try:
        decode(data)
    except StorageError:
        pass
    except RecursionError:
        pytest.fail("decoder recursed unboundedly on garbage input")


@given(st.binary(min_size=1, max_size=100), st.integers(0, 99))
@settings(max_examples=200, deadline=None)
def test_property_single_byte_corruption_never_decodes_wrong(data, position):
    """Flipping one byte of a valid encoding either still raises, or
    decodes to *something* — but framed segments (CRC) always detect it.
    Here we check the raw codec never produces the original value from
    corrupted input (no silent aliasing)."""
    blob = encode(data)
    index = position % len(blob)
    corrupted = bytearray(blob)
    corrupted[index] ^= 0xFF
    try:
        result = decode(bytes(corrupted))
    except StorageError:
        return
    assert result != data or bytes(corrupted) == blob


@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),  # worker
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.integers(0, 4),  # dependency fan-in (on earlier tasks)
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_property_executor_accounting_sums_to_elapsed(spec):
    """For arbitrary DAGs, per-core bucket totals plus residual idle
    always reconstruct the makespan — no time is created or lost."""
    tasks = []
    for index, (worker, cost, fan_in) in enumerate(spec):
        deps = tuple(range(max(0, index - fan_in), index))
        tasks.append(SimTask(index, worker, cost, deps))
    machine = Machine(4)
    executor = ParallelExecutor(machine, sync_cost=0.5, remote_cost=0.25)
    result = executor.run(tasks)
    machine.barrier()
    # After the final barrier every core's clock equals the makespan and
    # the per-core bucket sum equals its clock.
    for core in machine.cores:
        assert core.clock == pytest.approx(machine.elapsed())
        assert sum(core.buckets.values()) == pytest.approx(core.clock)
    assert machine.elapsed() >= result.makespan - 1e-12


class TestSegmentVersioning:
    def _segment(self):
        return ViewSegment(0, AbortView(0), ParametricView(0), None)

    def test_segments_carry_the_current_version(self):
        assert self._segment().encoded()[0] == SEGMENT_VERSION

    def test_round_trip(self):
        raw = decode(encode(self._segment().encoded()))
        restored = ViewSegment.from_encoded(raw)
        assert restored.epoch_id == 0

    def test_unknown_version_rejected(self):
        raw = list(self._segment().encoded())
        raw[0] = SEGMENT_VERSION + 1
        with pytest.raises(RecoveryError, match="version"):
            ViewSegment.from_encoded(tuple(raw))

    def test_versioned_segment_survives_disk_round_trip(self):
        lm = LoggingManager(Disk())
        lm.stage(self._segment())
        lm.commit()
        segment, _io = lm.load_epoch(0)
        assert segment.epoch_id == 0
