"""Ingress durability: a crash never loses arrived-but-unprocessed events.

The spout persists input events at arrival (§VI-C step ①), so events
still buffered for their punctuation when the node fails survive the
crash and resume processing after recovery — with exactly-once outputs.
"""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.wal import WriteAheadLog
from tests.conftest import serial_ground_truth

SCHEMES = [GlobalCheckpoint, WriteAheadLog, MorphStreamR]


@pytest.mark.parametrize("scheme_cls", SCHEMES)
def test_partial_epoch_survives_crash(gs, scheme_cls):
    events = gs.generate(230, seed=0)  # 4 full epochs of 50 + 30 pending
    scheme = scheme_cls(gs, num_workers=3, epoch_len=50, snapshot_interval=3)
    scheme.process_stream(events)
    assert scheme.disk.events.pending_count == 30
    scheme.crash()
    scheme.recover()
    # The 30 tail events are back in the buffer; 20 more complete the
    # fifth epoch and all 250 events end up processed exactly once.
    more = gs.generate(250, seed=0)[230:]
    scheme.process_stream(more)
    expected, _txns, _outcome = serial_ground_truth(gs, gs.generate(250, seed=0))
    assert scheme.store.equals(expected)
    assert len(scheme.sink) == 250


@pytest.mark.parametrize("scheme_cls", SCHEMES)
def test_pending_tail_not_double_processed(sl, scheme_cls):
    events = sl.generate(180, seed=1)  # 3 epochs of 50 + 30 pending
    scheme = scheme_cls(sl, num_workers=3, epoch_len=50, snapshot_interval=2)
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    # Recovery alone must not process the pending tail (no punctuation
    # arrived for it): only the 150 sealed events have outputs.
    assert len(scheme.sink) == 150
    assert len(scheme._pending_events) == 30


def test_crash_immediately_after_recovery_is_consistent(gs):
    events = gs.generate(230, seed=2)
    scheme = GlobalCheckpoint(gs, num_workers=3, epoch_len=50, snapshot_interval=3)
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    scheme.crash()  # fail again before any new processing
    scheme.recover()
    expected, _txns, _outcome = serial_ground_truth(gs, events[:200])
    assert scheme.store.equals(expected)
    assert len(scheme._pending_events) == 30
