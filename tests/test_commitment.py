"""Workload profiling and adaptive log commitment (§VI-B)."""

from __future__ import annotations

import pytest

from repro.core.commitment import (
    DEPS_THRESHOLD,
    SKEW_THRESHOLD,
    AdaptiveCommitController,
    WorkloadProfile,
    profile_epoch,
)
from repro.engine.execution import execute_tpg, preprocess
from repro.engine.tpg import build_tpg
from repro.errors import ConfigError
from repro.workloads.grep_sum import GrepSum


def _profile(**params):
    workload = GrepSum(512, num_partitions=4, **params)
    events = workload.generate(400, seed=1)
    tpg = build_tpg(preprocess(events, workload, 0))
    outcome = execute_tpg(workload.initial_state(), tpg)
    return profile_epoch(tpg, outcome)


class TestProfileEpoch:
    def test_skew_estimate_orders_uniform_below_skewed(self):
        uniform = _profile(skew=0.0, write_ratio=1.0)
        skewed = _profile(skew=0.99, write_ratio=1.0)
        assert skewed.skew > uniform.skew

    def test_dependency_density_tracks_read_lists(self):
        few = _profile(list_len=1, skew=0.0, write_ratio=1.0)
        many = _profile(list_len=8, skew=0.0)
        assert many.dependencies_per_op > few.dependencies_per_op

    def test_abort_ratio_measured(self):
        aborting = _profile(abort_ratio=0.4)
        clean = _profile(abort_ratio=0.0)
        assert aborting.abort_ratio > 0.2
        assert clean.abort_ratio == 0.0

    def test_regime_classification(self):
        assert WorkloadProfile(0.0, 0.0, 0.0).regime == "LSFD"
        assert WorkloadProfile(0.0, DEPS_THRESHOLD + 1, 0.0).regime == "LSMD"
        assert WorkloadProfile(SKEW_THRESHOLD + 0.1, 0.0, 0.0).regime == "HSFD"
        assert (
            WorkloadProfile(SKEW_THRESHOLD + 0.1, DEPS_THRESHOLD + 1, 0.0).regime
            == "HSMD"
        )


class TestAdaptiveCommitController:
    def test_lsfd_goes_maximal(self):
        controller = AdaptiveCommitController(128, 4096)
        assert controller.recommend(WorkloadProfile(0.0, 0.0, 0.0)) == 4096

    def test_lsmd_stays_moderate(self):
        controller = AdaptiveCommitController(128, 4096)
        epoch = controller.recommend(WorkloadProfile(0.0, 5.0, 0.0))
        assert 128 < epoch < 4096

    def test_high_skew_interpolates_by_objective(self):
        profile = WorkloadProfile(0.9, 5.0, 0.0)
        runtime_first = AdaptiveCommitController(128, 4096, recovery_weight=0.0)
        recovery_first = AdaptiveCommitController(128, 4096, recovery_weight=1.0)
        balanced = AdaptiveCommitController(128, 4096, recovery_weight=0.5)
        assert runtime_first.recommend(profile) == 128
        assert recovery_first.recommend(profile) == 4096
        assert 128 < balanced.recommend(profile) < 4096

    def test_recommendation_within_bounds_for_any_profile(self):
        controller = AdaptiveCommitController(100, 1000, recovery_weight=0.7)
        for skew in (0.0, 0.2, 0.9):
            for deps in (0.0, 1.0, 10.0):
                epoch = controller.recommend(WorkloadProfile(skew, deps, 0.0))
                assert 100 <= epoch <= 1000

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigError):
            AdaptiveCommitController(0, 100)
        with pytest.raises(ConfigError):
            AdaptiveCommitController(100, 50)
        with pytest.raises(ConfigError):
            AdaptiveCommitController(1, 10, recovery_weight=1.5)
