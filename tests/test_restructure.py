"""Operation restructuring (§V-B2): read classification and bundling."""

from __future__ import annotations

import pytest

from repro.core.restructure import (
    ReadClass,
    chains_by_partition,
    restructure_operations,
)
from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.engine.transactions import Transaction

A, B, C = (StateRef("t", k) for k in "ABC")


def txn(txn_id, ops_spec):
    ops = tuple(
        Operation(uid, txn_id, txn_id, ref, "deposit", (1.0,), tuple(reads))
        for uid, ref, reads in ops_spec
    )
    return Transaction(txn_id, txn_id, Event(txn_id, "e", ()), ops)


class TestClassification:
    def test_unsourced_read_is_base(self):
        restructured = restructure_operations(
            [txn(0, [(0, B, (A,))])], {A: 0, B: 0}
        )
        (resolution,) = restructured.resolutions[0]
        assert resolution.read_class is ReadClass.BASE

    def test_same_partition_sourced_read_is_local(self):
        txns = [txn(0, [(0, A, ())]), txn(1, [(1, B, (A,))])]
        restructured = restructure_operations(txns, {A: 0, B: 0})
        (resolution,) = restructured.resolutions[1]
        assert resolution.read_class is ReadClass.LOCAL
        assert resolution.source_uid == 0
        assert restructured.local_deps[1] == (0,)
        assert restructured.num_local_reads == 1

    def test_cross_partition_sourced_read_is_view(self):
        txns = [txn(0, [(0, A, ())]), txn(1, [(1, B, (A,))])]
        restructured = restructure_operations(txns, {A: 0, B: 1})
        (resolution,) = restructured.resolutions[1]
        assert resolution.read_class is ReadClass.VIEW
        assert restructured.num_view_reads == 1
        assert 1 not in restructured.local_deps

    def test_no_partition_map_makes_all_sourced_reads_view(self):
        txns = [txn(0, [(0, A, ())]), txn(1, [(1, B, (A,))])]
        restructured = restructure_operations(txns, None)
        (resolution,) = restructured.resolutions[1]
        assert resolution.read_class is ReadClass.VIEW
        assert restructured.local_deps == {}

    def test_classification_depends_only_on_record_partitions(self):
        # Whatever transactions commit, a (from_ref, to_ref) pair always
        # classifies the same way — the invariant that keeps runtime
        # logging and recovery lookup in agreement.
        pmap = {A: 0, B: 1, C: 0}
        full = [txn(0, [(0, A, ())]), txn(1, [(1, C, ())]), txn(2, [(2, B, (A,))])]
        sub = [txn(0, [(0, A, ())]), txn(2, [(2, B, (A,))])]
        for txns in (full, sub):
            restructured = restructure_operations(txns, pmap)
            (resolution,) = restructured.resolutions[2]
            assert resolution.read_class is ReadClass.VIEW


class TestBundling:
    def test_partition_map_groups_chains(self):
        txns = [txn(0, [(0, A, ())]), txn(1, [(1, B, ())]), txn(2, [(2, C, ())])]
        restructured = restructure_operations(txns, {A: 0, B: 0, C: 1})
        bundles = chains_by_partition(restructured, {A: 0, B: 0, C: 1}, 2)
        sizes = sorted(len(b) for b in bundles)
        assert sizes == [1, 2]

    def test_without_map_chains_fold_into_bounded_bundles(self, gs):
        events = gs.generate(200, seed=1)
        txns = preprocess(events, gs, 0)
        restructured = restructure_operations(txns, None)
        bundles = chains_by_partition(restructured, None, 4)
        assert len(bundles) <= 16
        total = sum(len(b) for b in bundles)
        assert total == len(restructured.chains)

    def test_bundles_cover_all_chains_exactly_once(self, sl):
        events = sl.generate(200, seed=2)
        txns = preprocess(events, sl, 0)
        # Build a partition map over the chains (all to 2 partitions).
        refs = sorted(set().union(*[t.write_set() for t in txns]))
        pmap = {ref: i % 2 for i, ref in enumerate(refs)}
        restructured = restructure_operations(txns, pmap)
        bundles = chains_by_partition(restructured, pmap, 2)
        seen = [id(chain) for bundle in bundles for chain in bundle]
        assert len(seen) == len(set(seen)) == len(restructured.chains)

    def test_local_deps_stay_within_bundle(self, sl):
        events = sl.generate(300, seed=3)
        txns = preprocess(events, sl, 0)
        refs = sorted(set().union(*[t.write_set() for t in txns]))
        pmap = {ref: i % 3 for i, ref in enumerate(refs)}
        restructured = restructure_operations(txns, pmap)
        bundles = chains_by_partition(restructured, pmap, 3)
        op_bundle = {}
        for bi, bundle in enumerate(bundles):
            for chain in bundle:
                for operation in chain:
                    op_bundle[operation.uid] = bi
        for uid, deps in restructured.local_deps.items():
            for dep in deps:
                assert op_bundle[dep] == op_bundle[uid]
