"""The example scripts must run clean end to end (they self-verify)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_the_promised_scripts():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_successfully(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they did"
