"""SLO evaluation, error budgets and the BENCH trajectory gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.harness.slo import (
    BENCH_SCHEMA,
    REQUIRED_METRICS,
    GateTolerance,
    SLOTargets,
    append_record,
    baseline_for,
    evaluate_slo,
    load_trajectory,
    new_trajectory,
    regression_gate,
    validate_record,
)


def _metrics(**overrides):
    base = {
        "throughput_eps": 1000.0,
        "latency_p50_seconds": 0.01,
        "latency_p99_seconds": 0.1,
        "latency_p999_seconds": 0.2,
        "mttr_mean_seconds": 1.0,
        "mttr_max_seconds": 2.0,
        "rto_max_seconds": 2.5,
        "rpo_events": 0,
        "availability": 0.999,
        "degraded_reads": 8,
    }
    base.update(overrides)
    return base


def _record(cell="single/MSR/test", **metric_overrides):
    return {"cell": cell, "metrics": _metrics(**metric_overrides)}


def _grade(**overrides):
    kwargs = dict(
        targets=SLOTargets(
            p99_latency_seconds=1.0,
            p999_latency_seconds=2.0,
            availability=0.99,
            max_mttr_seconds=5.0,
            max_rpo_events=0,
            min_throughput_eps=100.0,
        ),
        duration_seconds=100.0,
        outage_seconds=0.5,
        latency_p99_seconds=0.5,
        latency_p999_seconds=1.0,
        mttr_max_seconds=1.0,
        rpo_events=0,
        throughput_eps=500.0,
    )
    kwargs.update(overrides)
    return evaluate_slo(**kwargs)


class TestTargets:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SLOTargets(availability=0.0)
        with pytest.raises(ConfigError):
            SLOTargets(availability=1.5)
        with pytest.raises(ConfigError):
            SLOTargets(p99_latency_seconds=0.0)
        with pytest.raises(ConfigError):
            SLOTargets(max_rpo_events=-1)


class TestEvaluate:
    def test_all_objectives_met(self):
        verdict = _grade()
        assert verdict.passed
        assert verdict.breaches == []
        assert "SLO met" in verdict.describe()

    def test_error_budget_accounting(self):
        verdict = _grade()
        # 99% over 100s allows 1s of outage; 0.5s spent = 50% burn.
        assert verdict.budget.allowed_outage_seconds == pytest.approx(1.0)
        assert verdict.budget.remaining_seconds == pytest.approx(0.5)
        assert verdict.budget.burn_fraction == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "override, objective",
        [
            ({"latency_p99_seconds": 1.5}, "p99 latency"),
            ({"latency_p999_seconds": 3.0}, "p999 latency"),
            ({"outage_seconds": 5.0}, "availability"),
            ({"mttr_max_seconds": 10.0}, "max MTTR"),
            ({"rpo_events": 3}, "RPO events"),
            ({"throughput_eps": 50.0}, "throughput"),
        ],
    )
    def test_each_breach_detected(self, override, objective):
        verdict = _grade(**override)
        assert not verdict.passed
        assert [b.objective for b in verdict.breaches] == [objective]
        assert "SLO BREACH" in verdict.describe()

    def test_perfect_availability_target_has_zero_budget(self):
        verdict = _grade(
            targets=SLOTargets(availability=1.0), outage_seconds=0.1
        )
        assert verdict.budget.burn_fraction == float("inf")
        assert not verdict.passed


class TestTrajectory:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_soak.json"
        append_record(path, _record())
        append_record(path, _record(cell="cluster/MSR/test"))
        doc = load_trajectory(path)
        assert doc["schema"] == BENCH_SCHEMA
        assert len(doc["records"]) == 2
        assert doc == json.loads(path.read_text())

    def test_unknown_fields_tolerated_and_preserved(self, tmp_path):
        path = tmp_path / "BENCH_soak.json"
        doc = new_trajectory()
        record = _record()
        record["future_field"] = {"nested": True}
        record["metrics"]["future_metric"] = 42
        doc["records"].append(record)
        doc["future_top_level"] = "keep me"
        path.write_text(json.dumps(doc))
        loaded = load_trajectory(path)
        assert loaded["future_top_level"] == "keep me"
        append_record(path, _record(cell="other"))
        reloaded = load_trajectory(path)
        assert reloaded["future_top_level"] == "keep me"
        assert reloaded["records"][0]["future_field"] == {"nested": True}
        assert reloaded["records"][0]["metrics"]["future_metric"] == 42

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "records": []}))
        with pytest.raises(ConfigError):
            load_trajectory(path)

    def test_malformed_record_rejected(self, tmp_path):
        incomplete = {"cell": "x", "metrics": {"throughput_eps": 1.0}}
        with pytest.raises(ConfigError):
            validate_record(incomplete)
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": BENCH_SCHEMA, "records": [incomplete]})
        )
        with pytest.raises(ConfigError):
            load_trajectory(path)

    def test_baseline_is_newest_matching_cell(self):
        doc = new_trajectory()
        doc["records"] = [
            _record(throughput_eps=100.0),
            _record(cell="other"),
            _record(throughput_eps=200.0),
        ]
        base = baseline_for(doc, "single/MSR/test")
        assert base["metrics"]["throughput_eps"] == 200.0
        assert baseline_for(doc, "missing") is None

    def test_required_metrics_all_present_in_helper(self):
        # Guard: the test helper stays in sync with the schema contract.
        assert set(REQUIRED_METRICS) <= set(_metrics())


class TestGate:
    def _trajectory_with(self, **metric_overrides):
        doc = new_trajectory()
        doc["records"].append(_record(**metric_overrides))
        return doc

    def test_no_baseline_passes_vacuously(self):
        result = regression_gate(new_trajectory(), _record())
        assert result.passed and result.no_baseline
        assert "no committed baseline" in result.describe()

    def test_within_band_passes(self):
        doc = self._trajectory_with()
        candidate = _record(
            throughput_eps=950.0,  # -5% within the 10% band
            latency_p99_seconds=0.11,  # +10% within the 25% band
            mttr_max_seconds=2.2,  # +10% within the 25% band
        )
        result = regression_gate(doc, candidate)
        assert result.passed
        assert all(c.verdict == "within-band" for c in result.comparisons)

    def test_improvement_reported(self):
        doc = self._trajectory_with()
        candidate = _record(
            throughput_eps=1500.0, latency_p99_seconds=0.05,
            mttr_max_seconds=1.0,
        )
        result = regression_gate(doc, candidate)
        assert result.passed
        assert all(c.verdict == "improved" for c in result.comparisons)

    @pytest.mark.parametrize(
        "override, metric",
        [
            ({"throughput_eps": 800.0}, "throughput_eps"),
            ({"latency_p99_seconds": 0.2}, "latency_p99_seconds"),
            ({"mttr_max_seconds": 3.0}, "mttr_max_seconds"),
        ],
    )
    def test_each_regression_fails(self, override, metric):
        result = regression_gate(self._trajectory_with(), _record(**override))
        assert not result.passed
        regressed = [c.metric for c in result.comparisons if c.regressed]
        assert regressed == [metric]
        assert "PERF REGRESSION" in result.describe()
        assert "REGRESSED" in result.describe()

    def test_zero_baseline_only_strict_worsening_regresses(self):
        doc = self._trajectory_with(mttr_max_seconds=0.0)
        same = regression_gate(doc, _record(mttr_max_seconds=0.0))
        assert same.passed
        worse = regression_gate(doc, _record(mttr_max_seconds=0.5))
        assert not worse.passed

    def test_custom_tolerance(self):
        doc = self._trajectory_with()
        candidate = _record(throughput_eps=850.0)  # -15%
        assert not regression_gate(doc, candidate).passed
        loose = GateTolerance(throughput_drop=0.20)
        assert regression_gate(doc, candidate, loose).passed
