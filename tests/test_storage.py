"""Storage substrate: device model and crash-surviving stores."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, StorageError
from repro.storage.device import StorageDevice
from repro.storage.stores import Disk, EventStore, LogStore, SnapshotStore


class TestStorageDevice:
    def test_write_time_is_latency_plus_bandwidth(self):
        device = StorageDevice(
            write_bandwidth=1e9, read_bandwidth=1e9, iops=1e9, latency=1e-5
        )
        assert device.write(1_000_000) == pytest.approx(1e-5 + 1e-3)

    def test_iops_floor(self):
        device = StorageDevice(iops=100.0, latency=0.0)
        # A tiny write cannot beat 1/iops.
        assert device.write(1) == pytest.approx(0.01)

    def test_read_uses_read_bandwidth(self):
        device = StorageDevice(
            write_bandwidth=1e9, read_bandwidth=2e9, iops=1e9, latency=0.0
        )
        assert device.read(2_000_000) == pytest.approx(1e-3)

    def test_stats_accumulate(self):
        device = StorageDevice()
        device.write(100)
        device.write(200)
        device.read(50)
        assert device.stats.bytes_written == 300
        assert device.stats.write_ops == 2
        assert device.stats.bytes_read == 50
        assert device.stats.read_ops == 1
        assert device.stats.write_seconds > 0

    def test_reset_stats(self):
        device = StorageDevice()
        device.write(100)
        device.reset_stats()
        assert device.stats.bytes_written == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            StorageDevice().write(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            StorageDevice(write_bandwidth=0)
        with pytest.raises(ConfigError):
            StorageDevice(latency=-1e-6)


class TestEventStore:
    def test_append_seal_and_read_round_trip(self):
        store = EventStore(StorageDevice())
        events = [(0, "deposit", (1, 2.0)), (1, "transfer", (3, 4))]
        assert store.append_events(events) > 0
        store.seal_epoch(0, 2)
        out, seconds = store.read_epochs(0, 0)
        assert out == events
        assert seconds > 0

    def test_read_spans_multiple_epochs_in_order(self):
        store = EventStore(StorageDevice())
        store.append_events([(0, "a", ()), (1, "b", ())])
        store.seal_epoch(0, 1)
        store.seal_epoch(1, 1)
        out, _s = store.read_epochs(0, 1)
        assert [e[1] for e in out] == ["a", "b"]

    def test_double_seal_rejected(self):
        store = EventStore(StorageDevice())
        store.append_events([(0, "a", ())])
        store.seal_epoch(0, 1)
        with pytest.raises(StorageError):
            store.seal_epoch(0, 0)

    def test_seal_beyond_pending_rejected(self):
        store = EventStore(StorageDevice())
        store.append_events([(0, "a", ())])
        with pytest.raises(StorageError):
            store.seal_epoch(0, 2)

    def test_missing_epoch_rejected(self):
        store = EventStore(StorageDevice())
        with pytest.raises(StorageError):
            store.read_epochs(0, 0)

    def test_count_epoch(self):
        store = EventStore(StorageDevice())
        store.append_events([(0,), (1,), (2,)])
        store.seal_epoch(3, 3)
        assert store.count_epoch(3) == 3
        with pytest.raises(StorageError):
            store.count_epoch(4)

    def test_pending_tail_survives_and_is_readable(self):
        store = EventStore(StorageDevice())
        store.append_events([(0, "a", ()), (1, "b", ()), (2, "c", ())])
        store.seal_epoch(0, 2)
        assert store.pending_count == 1
        pending, seconds = store.read_pending()
        assert pending == [(2, "c", ())]
        assert seconds > 0

    def test_read_pending_empty_is_free(self):
        store = EventStore(StorageDevice())
        pending, seconds = store.read_pending()
        assert pending == [] and seconds == 0.0

    def test_truncate_frees_sealed_but_not_pending(self):
        store = EventStore(StorageDevice())
        store.append_events([(0, "a", ()), (1, "b", ()), (2, "c", ())])
        store.seal_epoch(0, 1)
        store.seal_epoch(1, 1)
        before = store.bytes_stored
        freed = store.truncate_before(1)
        assert freed > 0
        assert store.bytes_stored < before
        with pytest.raises(StorageError):
            store.read_epochs(0, 0)
        store.read_epochs(1, 1)  # epoch 1 survives
        assert store.pending_count == 1  # tail untouched


class TestSnapshotStore:
    def test_put_load_round_trip(self):
        store = SnapshotStore(StorageDevice())
        state = {"t": {1: 2.0, 2: 3.0}}
        store.put(5, state)
        loaded, seconds = store.load(5)
        assert loaded == state
        assert seconds > 0

    def test_latest_epoch(self):
        store = SnapshotStore(StorageDevice())
        assert store.latest_epoch() is None
        store.put(1, {})
        store.put(5, {})
        assert store.latest_epoch() == 5

    def test_load_missing_rejected(self):
        with pytest.raises(StorageError):
            SnapshotStore(StorageDevice()).load(0)

    def test_truncate_keeps_target_epoch(self):
        store = SnapshotStore(StorageDevice())
        store.put(1, {"a": {}})
        store.put(5, {"b": {}})
        store.truncate_before(5)
        assert store.latest_epoch() == 5
        with pytest.raises(StorageError):
            store.load(1)


class TestLogStore:
    def test_commit_read_round_trip(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("wal", 0, [(0, "cmd")])
        records, _s = store.read_epoch("wal", 0)
        assert records == [(0, "cmd")]

    def test_streams_are_independent(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("a", 0, ["a0"])
        store.commit_epoch("b", 0, ["b0"])
        assert store.read_epoch("a", 0)[0] == ["a0"]
        assert store.read_epoch("b", 0)[0] == ["b0"]
        assert store.bytes_for_stream("a") > 0

    def test_double_commit_rejected(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("wal", 0, [])
        with pytest.raises(StorageError):
            store.commit_epoch("wal", 0, [])

    def test_read_epochs_skips_gaps(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("wal", 0, ["x"])
        store.commit_epoch("wal", 2, ["y"])
        segments, _s = store.read_epochs("wal", 0, 2)
        assert segments == [["x"], ["y"]]

    def test_has_epoch(self):
        store = LogStore(StorageDevice())
        assert not store.has_epoch("wal", 0)
        store.commit_epoch("wal", 0, [])
        assert store.has_epoch("wal", 0)

    def test_truncate_by_epoch(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("wal", 0, ["x"])
        store.commit_epoch("wal", 3, ["y"])
        store.truncate_before(2)
        assert not store.has_epoch("wal", 0)
        assert store.has_epoch("wal", 3)


class TestDisk:
    def test_shared_device_accounting(self):
        disk = Disk()
        disk.events.append_events([(0, "e", ())])
        disk.snapshots.put(0, {"t": {}})
        disk.logs.commit_epoch("wal", 0, [])
        assert disk.device.stats.write_ops == 3
        assert disk.bytes_stored > 0
