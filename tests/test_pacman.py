"""PACMAN-style parallel WAL redo: batching, speedup, and the sort fix.

Covers the ISSUE-10 tentpole baseline (``WALPacman``) and the WAL
merge-sort double-charge fix:

- the static key-access analysis never splits dependent transactions
  across batches (property-based);
- PACMAN recovery beats WAL by >= 2x at 4 workers on the
  low-dependency workload while staying bit-identical to the serial
  ground truth (the acceptance criterion);
- PACMAN ships a real multi-group plan to the real backend where WAL
  stays sequential;
- hybrid mode (static analysis + MSR chain scheduling) recovers exactly;
- the WAL sort charge totals exactly ``n * log2(k)`` comparisons of CPU
  (regression pin for the old ``spend_all`` + divide-by-min(4, nw)
  double charge).
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import buckets
from repro.engine.execution import preprocess
from repro.engine.tpg import build_tpg
from repro.ft.common import txn_level_deps
from repro.ft.pacman import WALPacman, static_batches, txn_refs
from repro.ft.wal import WriteAheadLog
from repro.sim.costs import DEFAULT_COSTS
from repro.workloads.grep_sum import GrepSum
from tests.conftest import serial_ground_truth

EPOCH_LEN = 128
SNAPSHOT_INTERVAL = 4
RECOVER_EPOCHS = 2


def low_dep_gs():
    """The low-dependency sweep point where parallel redo shines."""
    return GrepSum(
        256,
        list_len=4,
        skew=0.0,
        multi_partition_ratio=0.0,
        abort_ratio=0.0,
        num_partitions=4,
    )


def run_recovery(scheme_cls, workload, *, num_workers=4, seed=7, **kwargs):
    events = workload.generate(
        EPOCH_LEN * (SNAPSHOT_INTERVAL + RECOVER_EPOCHS), seed
    )
    scheme = scheme_cls(
        workload,
        num_workers=num_workers,
        epoch_len=EPOCH_LEN,
        snapshot_interval=SNAPSHOT_INTERVAL,
        **kwargs,
    )
    scheme.process_stream(events)
    scheme.crash()
    report = scheme.recover()
    return scheme, report, events


class TestStaticBatches:
    def test_batches_partition_all_transactions(self, gs):
        events = gs.generate(200, seed=3)
        txns = preprocess(events, gs, 0)
        component_of, accesses = static_batches(txns)
        assert set(component_of) == {t.txn_id for t in txns}
        assert accesses == sum(len(txn_refs(t)) for t in txns)
        # Components are densely numbered from zero.
        ids = set(component_of.values())
        assert ids == set(range(len(ids)))

    @given(
        seed=st.integers(0, 10_000),
        skew=st.floats(0.0, 0.99),
        mp_ratio=st.floats(0.0, 1.0),
        abort_ratio=st.floats(0.0, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_batches_never_split_dependent_transactions(
        self, seed, skew, mp_ratio, abort_ratio
    ):
        """Every TPG dependency edge stays inside one static batch.

        This is the property that makes zero-sync replay sound: a TD/PD/
        LD edge implies a shared record, and transactions sharing a
        record are unioned into the same component.
        """
        workload = GrepSum(
            96,
            list_len=3,
            skew=skew,
            multi_partition_ratio=mp_ratio,
            abort_ratio=abort_ratio,
            num_partitions=3,
        )
        events = workload.generate(120, seed=seed)
        txns = preprocess(events, workload, 0)
        component_of, _accesses = static_batches(txns)
        tpg = build_tpg(txns)
        for dst, sources in txn_level_deps(tpg).items():
            for src in sources:
                assert component_of[src] == component_of[dst], (
                    f"dependency {src} -> {dst} crosses batches "
                    f"{component_of[src]} / {component_of[dst]}"
                )

    def test_disjoint_components_touch_disjoint_records(self, gs):
        """Transactions in different batches share no state records."""
        events = gs.generate(160, seed=11)
        txns = preprocess(events, gs, 0)
        component_of, _ = static_batches(txns)
        refs_by_component = {}
        for txn in txns:
            refs_by_component.setdefault(
                component_of[txn.txn_id], set()
            ).update(txn_refs(txn))
        seen = set()
        for refs in refs_by_component.values():
            assert not (refs & seen)
            seen |= refs


class TestPacmanRecovery:
    def test_beats_wal_2x_on_low_dependency_workload(self):
        """Acceptance criterion: >= 2x over WAL at 4 workers, bit-exact."""
        workload = low_dep_gs()
        wal_scheme, wal_report, events = run_recovery(WriteAheadLog, workload)
        pac_scheme, pac_report, _ = run_recovery(WALPacman, workload)
        expected, _txns, _outcome = serial_ground_truth(workload, events)
        assert wal_scheme.store.equals(expected)
        assert pac_scheme.store.equals(expected), pac_scheme.store.diff(
            expected, 5
        )
        speedup = wal_report.elapsed_seconds / pac_report.elapsed_seconds
        assert speedup >= 2.0, f"PACMAN only {speedup:.2f}x over WAL"

    def test_exact_on_dependency_heavy_workload(self, workload):
        """Skew/aborts collapse the batches but never break exactness."""
        scheme, report, events = run_recovery(
            WALPacman, workload, num_workers=3
        )
        expected, _txns, _outcome = serial_ground_truth(workload, events)
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert len(scheme.sink) == len(events)
        assert not report.degraded()

    def test_hybrid_mode_recovers_exact(self, gs):
        scheme, report, events = run_recovery(WALPacman, gs, hybrid=True)
        expected, _txns, _outcome = serial_ground_truth(gs, events)
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert set(scheme.sink.outputs()) == {e.seq for e in events}
        assert not report.degraded()

    def test_zero_explore_in_batch_mode(self):
        """PACMAN's core trade: analysis up front, no runtime dependency
        checks during redo — Explore stays zero where WAL-style replay
        schemes pay it per dependency."""
        _, report, _ = run_recovery(WALPacman, low_dep_gs())
        assert report.buckets.get(buckets.EXPLORE, 0.0) == 0.0
        assert report.buckets.get(buckets.CONSTRUCT, 0.0) > 0.0

    def test_real_group_plan_is_parallel_where_wal_is_sequential(self):
        workload = low_dep_gs()
        wal = WriteAheadLog(workload, num_workers=4)
        pac = WALPacman(workload, num_workers=4)
        assert wal._real_num_groups() == 1
        assert pac._real_num_groups() == 8  # two groups per worker


class TestWalSortCharge:
    def test_sort_charge_totals_exactly_one_merge(self):
        """Regression pin for the sort double-charge.

        The k-way merge costs ``n * log2(k)`` comparisons *total*; the
        old model charged every core the per-participant share
        (``spend_all`` of ``sort/min(4, nw)``), inflating the RELOAD
        CPU by ``nw / min(4, nw)``.  Diffing the RELOAD breakdown
        between the default cost model and one with free sorting
        isolates the sort charge exactly.
        """
        workload = low_dep_gs()  # abort-free: every command is logged
        num_workers = 8
        _, priced, _ = run_recovery(
            WriteAheadLog, workload, num_workers=num_workers
        )
        _, free, _ = run_recovery(
            WriteAheadLog,
            workload,
            num_workers=num_workers,
            costs=replace(DEFAULT_COSTS, sort_per_element=0.0),
        )
        assert priced.epochs_replayed == free.epochs_replayed
        n = EPOCH_LEN  # committed commands per epoch (no aborts)
        sort_cpu_per_epoch = (
            DEFAULT_COSTS.sort_per_element * n * math.log2(num_workers)
        )
        # bucket_breakdown reports per-core seconds: total CPU / cores.
        expected_diff = (
            priced.epochs_replayed * sort_cpu_per_epoch / num_workers
        )
        measured_diff = priced.buckets[buckets.RELOAD] - free.buckets[
            buckets.RELOAD
        ]
        assert measured_diff == pytest.approx(expected_diff, rel=1e-9)

    def test_single_worker_sorts_for_free(self):
        workload = low_dep_gs()
        scheme = WriteAheadLog(workload, num_workers=1)
        assert scheme._sort_seconds(500) == 0.0
        scheme = WriteAheadLog(workload, num_workers=4)
        assert scheme._sort_seconds(1) == 0.0
        assert scheme._sort_seconds(100) == pytest.approx(
            DEFAULT_COSTS.sort_per_element * 100 * 2.0
        )
