"""Cost-model sensitivity: orderings survive ±30% on any one constant.

docs/cost-model.md claims the headline orderings are driven by
structure, not knife-edge calibration.  This test perturbs each
influential constant by ±30% (one at a time) and asserts the Fig. 2
orderings still hold on Streaming Ledger.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.harness.figures import FigureScale, RECOVERY_SCHEMES, _config, sl_factory
from repro.harness.runner import run_experiment
from repro.sim.costs import DEFAULT_COSTS

SCALE = FigureScale(epoch_len=128, snapshot_interval=4, recover_epochs=3)

#: The constants with the most structural leverage.
PERTURBED = [
    "state_access",
    "sync_handoff",
    "remote_fetch",
    "rebuild_edge",
    "lsn_vector_entry",
    "sort_per_element",
    "view_record",
    "abort_transaction",
]


def _orderings(costs):
    recovery = {}
    runtime = {}
    for name, scheme in RECOVERY_SCHEMES.items():
        config = _config(SCALE, sl_factory(), scheme)
        config.costs = costs
        result = run_experiment(config)
        recovery[name] = result.recovery.elapsed_seconds
        runtime[name] = result.runtime.throughput_eps
    return recovery, runtime


@pytest.mark.parametrize("constant", PERTURBED)
@pytest.mark.parametrize("factor", [0.7, 1.3])
def test_fig2_orderings_survive_single_constant_perturbation(
    constant, factor
):
    perturbed = replace(
        DEFAULT_COSTS, **{constant: getattr(DEFAULT_COSTS, constant) * factor}
    )
    recovery, runtime = _orderings(perturbed)
    # The two headline claims:
    assert min(recovery, key=recovery.get) == "MSR", (constant, factor, recovery)
    assert max(recovery, key=recovery.get) == "WAL", (constant, factor, recovery)
    # MSR stays ahead of the log-based schemes at runtime.
    for name in ("WAL", "DL", "LV"):
        assert runtime["MSR"] > runtime[name] * 0.98, (constant, factor, name)
