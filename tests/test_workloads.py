"""The three benchmark applications: generation, transactions, outputs."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.engine.refs import StateRef
from repro.engine.serial import execute_serial
from repro.engine.execution import preprocess
from repro.errors import WorkloadError
from repro.workloads.grep_sum import GrepSum
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.toll_processing import TollProcessing
from tests.conftest import serial_ground_truth


class TestWorkloadBase:
    def test_partition_of_ranges(self, gs):
        # 128 keys over 4 partitions: 32 keys each.
        assert gs.partition_of(StateRef("records", 0)) == 0
        assert gs.partition_of(StateRef("records", 31)) == 0
        assert gs.partition_of(StateRef("records", 32)) == 1
        assert gs.partition_of(StateRef("records", 127)) == 3

    def test_partition_bounds_cover_key_space(self, gs):
        covered = []
        for pid in range(gs.num_partitions):
            lo, hi = gs.partition_bounds("records", pid)
            covered.extend(range(lo, hi))
        assert covered == list(range(128))

    def test_partition_bounds_consistent_with_partition_of(self, sl):
        for pid in range(sl.num_partitions):
            lo, hi = sl.partition_bounds("accounts", pid)
            for key in (lo, hi - 1):
                assert sl.partition_of(StateRef("accounts", key)) == pid

    def test_unknown_table_rejected(self, gs):
        with pytest.raises(WorkloadError):
            gs.partition_of(StateRef("nope", 0))

    def test_out_of_range_key_rejected(self, gs):
        with pytest.raises(WorkloadError):
            gs.partition_of(StateRef("records", 9999))

    def test_spans_partitions(self, sl):
        events = sl.generate(200, seed=1)
        txns = preprocess(events, sl, 0)
        spanning = [t for t in txns if sl.spans_partitions(t)]
        local = [t for t in txns if not sl.spans_partitions(t)]
        assert spanning and local


class TestGeneratorContract:
    def test_generation_is_deterministic(self, workload):
        assert workload.generate(100, seed=4) == workload.generate(100, seed=4)

    def test_seeds_change_the_stream(self, workload):
        assert workload.generate(100, seed=1) != workload.generate(100, seed=2)

    def test_sequence_numbers_are_dense(self, workload):
        events = workload.generate(50, seed=0)
        assert [e.seq for e in events] == list(range(50))

    def test_events_survive_codec_round_trip(self, workload):
        from repro.engine.events import Event
        from repro.storage.codec import decode, encode

        for event in workload.generate(30, seed=0):
            blob = encode(event.encoded())
            assert Event.from_encoded(decode(blob)) == event

    def test_transactions_rebuild_identically_from_events(self, workload):
        events = workload.generate(50, seed=0)
        first = preprocess(events, workload, 0)
        second = preprocess(events, workload, 0)
        assert first == second

    def test_outputs_deterministic(self, workload):
        events = workload.generate(100, seed=0)
        _store, txns, outcome = serial_ground_truth(workload, events)
        outputs = [
            workload.output_for(
                t, t.txn_id not in outcome.aborted, outcome.op_values
            )
            for t in txns
        ]
        _store2, txns2, outcome2 = serial_ground_truth(workload, events)
        outputs2 = [
            workload.output_for(
                t, t.txn_id not in outcome2.aborted, outcome2.op_values
            )
            for t in txns2
        ]
        assert outputs == outputs2


class TestStreamingLedger:
    def test_deposit_transaction_shape(self):
        wl = StreamingLedger(64, transfer_ratio=0.0, num_partitions=4)
        events = wl.generate(20, seed=0)
        txns = preprocess(events, wl, 0)
        for txn in txns:
            assert txn.event.kind == "deposit"
            assert len(txn.ops) == 2
            tables = {op.ref.table for op in txn.ops}
            assert tables == {"accounts", "assets"}

    def test_transfer_transaction_shape(self):
        wl = StreamingLedger(64, transfer_ratio=1.0, num_partitions=4)
        events = wl.generate(20, seed=0)
        txns = preprocess(events, wl, 0)
        for txn in txns:
            assert len(txn.ops) == 4
            assert len(txn.conditions) == 2
            # Destination writes read the source record (Fig. 3, f3).
            assert txn.ops[1].reads == (txn.ops[0].ref,)
            assert txn.ops[3].reads == (txn.ops[2].ref,)

    def test_transfer_src_dst_distinct(self):
        wl = StreamingLedger(
            16, transfer_ratio=1.0, multi_partition_ratio=0.0, num_partitions=4
        )
        for event in wl.generate(300, seed=2):
            src, dst = event.payload[0], event.payload[1]
            assert src != dst

    def test_multi_partition_ratio_zero_keeps_transfers_local(self):
        wl = StreamingLedger(
            64, transfer_ratio=1.0, multi_partition_ratio=0.0, num_partitions=4
        )
        for event in wl.generate(200, seed=0):
            src, dst = event.payload[0], event.payload[1]
            assert src * 4 // 64 == dst * 4 // 64

    def test_multi_partition_ratio_one_always_crosses(self):
        wl = StreamingLedger(
            64, transfer_ratio=1.0, multi_partition_ratio=1.0, num_partitions=4
        )
        for event in wl.generate(200, seed=0):
            src, dst = event.payload[0], event.payload[1]
            assert src * 4 // 64 != dst * 4 // 64

    def test_forced_abort_ratio_controls_aborts(self):
        wl = StreamingLedger(
            64, transfer_ratio=0.0, forced_abort_ratio=0.5, num_partitions=4
        )
        events = wl.generate(400, seed=0)
        _store, _txns, outcome = serial_ground_truth(wl, events)
        assert 100 < len(outcome.aborted) < 300

    def test_natural_aborts_on_insufficient_balance(self):
        wl = StreamingLedger(
            8,
            transfer_ratio=1.0,
            skew=0.9,
            initial_balance=50.0,
            max_amount=40.0,
            num_partitions=2,
        )
        events = wl.generate(400, seed=0)
        _store, _txns, outcome = serial_ground_truth(wl, events)
        assert outcome.aborted  # hot accounts drain and transfers bounce

    def test_money_conservation_without_deposits(self):
        wl = StreamingLedger(32, transfer_ratio=1.0, num_partitions=4)
        events = wl.generate(300, seed=1)
        store, _txns, _outcome = serial_ground_truth(wl, events)
        total = sum(
            store.get(StateRef("accounts", k)) for k in range(32)
        )
        assert total == pytest.approx(32 * wl.initial_balance)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            StreamingLedger(1)
        with pytest.raises(WorkloadError):
            StreamingLedger(64, transfer_ratio=1.5)
        with pytest.raises(WorkloadError):
            StreamingLedger(64, multi_partition_ratio=-0.1)


class TestGrepSum:
    def test_sum_transaction_shape(self):
        wl = GrepSum(64, list_len=4, num_partitions=4)
        events = wl.generate(30, seed=0)
        for txn in preprocess(events, wl, 0):
            assert len(txn.ops) == 1
            assert len(txn.ops[0].reads) == 3

    def test_read_list_keys_distinct(self):
        wl = GrepSum(64, list_len=6, multi_partition_ratio=0.5, num_partitions=4)
        for event in wl.generate(200, seed=0):
            keys = event.payload[0]
            assert len(set(keys)) == len(keys)

    def test_write_ratio_one_is_write_only(self):
        wl = GrepSum(64, write_ratio=1.0, num_partitions=4)
        events = wl.generate(100, seed=0)
        assert all(e.kind == "write" for e in events)
        for txn in preprocess(events, wl, 0):
            assert txn.ops[0].reads == ()
            assert not txn.conditions

    def test_abort_ratio_zero_never_aborts(self):
        wl = GrepSum(64, abort_ratio=0.0, num_partitions=4)
        events = wl.generate(300, seed=0)
        _store, _txns, outcome = serial_ground_truth(wl, events)
        assert not outcome.aborted

    def test_abort_ratio_matches_forced_fraction(self):
        wl = GrepSum(128, abort_ratio=0.3, num_partitions=4)
        events = wl.generate(1000, seed=0)
        _store, _txns, outcome = serial_ground_truth(wl, events)
        assert len(outcome.aborted) == pytest.approx(300, rel=0.2)

    def test_multi_partition_zero_keeps_reads_local(self):
        wl = GrepSum(64, multi_partition_ratio=0.0, list_len=4, num_partitions=4)
        for event in wl.generate(100, seed=0):
            if event.kind != "sum":
                continue
            parts = {k * 4 // 64 for k in event.payload[0]}
            assert len(parts) == 1

    def test_values_stay_finite_under_heavy_reuse(self):
        wl = GrepSum(8, list_len=4, skew=0.9, num_partitions=2)
        events = wl.generate(2000, seed=0)
        store, _txns, _outcome = serial_ground_truth(wl, events)
        for key in range(8):
            value = store.get(StateRef("records", key))
            assert abs(value) < 100.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            GrepSum(2, list_len=10)
        with pytest.raises(WorkloadError):
            GrepSum(64, abort_ratio=2.0)


class TestTollProcessing:
    def test_report_transaction_shape(self, tp):
        events = tp.generate(20, seed=0)
        for txn in preprocess(events, tp, 0):
            assert len(txn.ops) == 2
            assert txn.ops[0].ref.table == "road_speed"
            assert txn.ops[1].ref.table == "road_count"
            assert txn.ops[0].ref.key == txn.ops[1].ref.key
            assert txn.conditions[0].func == "lt"

    def test_capacity_saturation_causes_aborts(self):
        wl = TollProcessing(4, skew=0.0, capacity=5.0, num_partitions=2)
        events = wl.generate(100, seed=0)
        store, _txns, outcome = serial_ground_truth(wl, events)
        assert outcome.aborted
        # No segment count ever exceeds capacity.
        for seg in range(4):
            assert store.get(StateRef("road_count", seg)) <= 5.0

    def test_counts_equal_committed_reports(self, tp):
        events = tp.generate(300, seed=1)
        store, _txns, outcome = serial_ground_truth(tp, events)
        total = sum(
            store.get(StateRef("road_count", s)) for s in range(32)
        )
        assert total == 300 - len(outcome.aborted)

    def test_toll_output_reflects_congestion(self, tp):
        events = tp.generate(50, seed=0)
        _store, txns, outcome = serial_ground_truth(tp, events)
        for txn in txns:
            committed = txn.txn_id not in outcome.aborted
            output = tp.output_for(txn, committed, outcome.op_values)
            if committed:
                kind, toll = output
                assert kind == "toll"
                assert 0.0 <= toll <= 2.0
            else:
                assert output == ("report", "rejected")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            TollProcessing(0)
        with pytest.raises(WorkloadError):
            TollProcessing(8, alpha=0.0)
        with pytest.raises(WorkloadError):
            TollProcessing(8, capacity=0.0)


class TestQueries:
    def _wl(self, query_ratio=0.3):
        return StreamingLedger(
            64, transfer_ratio=0.5, query_ratio=query_ratio,
            skew=0.5, num_partitions=4,
        )

    def test_query_transaction_is_read_only(self):
        wl = self._wl()
        events = [e for e in wl.generate(200, seed=0) if e.kind == "query"]
        assert events
        for txn in preprocess(events[:10], wl, 0):
            assert len(txn.ops) == 1
            assert txn.ops[0].func == "identity"
            assert not txn.conditions

    def test_queries_leave_state_untouched(self):
        with_queries = self._wl(query_ratio=1.0)
        events = with_queries.generate(300, seed=1)
        store, _txns, outcome = serial_ground_truth(with_queries, events)
        assert store.equals(with_queries.initial_state())
        assert not outcome.aborted

    def test_query_observes_timestamp_consistent_balance(self):
        wl = self._wl()
        events = wl.generate(400, seed=2)
        _store, txns, outcome = serial_ground_truth(wl, events)
        # Reconstruct each queried balance by replaying the prefix.
        from repro.engine.refs import StateRef
        replay = wl.initial_state()
        for txn in txns:
            if txn.event.kind == "query":
                (account,) = txn.event.payload
                expected = replay.get(StateRef("accounts", account))
                assert outcome.op_values[txn.ops[0].uid] == expected
            elif txn.txn_id not in outcome.aborted:
                for op in txn.ops:
                    replay.set(op.ref, outcome.op_values[op.uid])

    def test_recovery_regenerates_query_outputs(self):
        from repro.core.morphstreamr import MorphStreamR
        wl = self._wl()
        events = wl.generate(350, seed=3)
        scheme = MorphStreamR(
            wl, num_workers=4, epoch_len=50, snapshot_interval=3
        )
        scheme.process_stream(events)
        scheme.crash()
        scheme.recover()
        queries = [
            o for o in scheme.sink.outputs().values() if o[0] == "query"
        ]
        assert queries
        expected, _txns, _outcome = serial_ground_truth(wl, events)
        assert scheme.store.equals(expected)
