"""Experiment runner: sizing, verification, and fault detection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, RecoveryError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.native import Native
from repro.harness.report import (
    format_seconds,
    format_throughput,
    recovery_breakdown_rows,
    render_table,
)
from repro.harness.runner import ExperimentConfig, ground_truth, run_experiment
from repro.workloads.grep_sum import GrepSum


def gs_factory():
    return GrepSum(128, num_partitions=4, abort_ratio=0.1)


def config(**overrides):
    params = dict(
        workload_factory=gs_factory,
        scheme=GlobalCheckpoint,
        num_workers=4,
        epoch_len=50,
        snapshot_interval=3,
        recover_epochs=2,
        seed=7,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


class TestExperimentConfig:
    def test_crash_lands_between_checkpoints(self):
        cfg = config()
        assert cfg.total_epochs == 5
        assert cfg.num_events == 250

    def test_recover_epochs_must_stay_below_interval(self):
        with pytest.raises(ConfigError):
            config(recover_epochs=3)
        with pytest.raises(ConfigError):
            config(recover_epochs=-1)


class TestRunExperiment:
    def test_verified_result(self):
        result = run_experiment(config())
        assert result.state_verified and result.outputs_verified
        assert result.recovery is not None
        assert result.recovery.events_replayed == 100
        assert result.runtime.events_processed == 250

    def test_native_runs_runtime_only(self):
        result = run_experiment(config(scheme=Native))
        assert result.recovery is None
        assert result.runtime.throughput_eps > 0

    def test_corrupted_recovery_detected(self):
        class BrokenCheckpoint(GlobalCheckpoint):
            name = "BROKEN"

            def recover(self):
                report = super().recover()
                # Corrupt one record after recovery "succeeds".
                ref = next(iter(self.store.refs()))
                self.store.set(ref, self.store.get(ref) + 1.0)
                return report

        with pytest.raises(RecoveryError):
            run_experiment(config(scheme=BrokenCheckpoint))

    def test_ground_truth_deterministic(self):
        workload = gs_factory()
        events = workload.generate(100, seed=1)
        store1, outputs1 = ground_truth(workload, events)
        store2, outputs2 = ground_truth(gs_factory(), events)
        assert store1.equals(store2)
        assert outputs1 == outputs2


class TestReportFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(5e-7) == "0.5us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(3.0) == "3.00s"

    def test_format_throughput_scales(self):
        assert format_throughput(500) == "500/s"
        assert format_throughput(25_000) == "25.0k/s"
        assert format_throughput(2_500_000) == "2.50M/s"

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows same width

    def test_recovery_breakdown_rows(self):
        rows = recovery_breakdown_rows(
            {"MSR": {"reload": 1e-3, "execute": 2e-3}}
        )
        assert rows[0][0] == "MSR"
        assert rows[0][-1] == format_seconds(3e-3)
