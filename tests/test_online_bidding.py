"""Online Bidding workload: auction semantics and recovery."""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.engine.execution import preprocess
from repro.engine.refs import StateRef
from repro.errors import WorkloadError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector
from repro.ft.wal import WriteAheadLog
from repro.workloads.online_bidding import PRICE, QUANTITY, OnlineBidding
from tests.conftest import serial_ground_truth


@pytest.fixture
def ob():
    return OnlineBidding(
        32, bid_ratio=0.8, alter_ratio=0.1, skew=0.6, num_partitions=4
    )


class TestSemantics:
    def test_bid_transaction_shape(self, ob):
        events = [e for e in ob.generate(200, seed=0) if e.kind == "bid"]
        assert events
        for txn in preprocess(events[:20], ob, 0):
            assert len(txn.ops) == 2
            assert len(txn.conditions) == 2
            assert txn.ops[0].ref.table == QUANTITY
            assert txn.ops[1].ref.table == PRICE

    def test_quantity_never_negative(self, ob):
        events = ob.generate(600, seed=1)
        store, _txns, _outcome = serial_ground_truth(ob, events)
        for item in range(32):
            assert store.get(StateRef(QUANTITY, item)) >= 0.0

    def test_hot_items_reject_bids(self, ob):
        events = ob.generate(600, seed=1)
        _store, txns, outcome = serial_ground_truth(ob, events)
        rejected = [
            t for t in txns
            if t.event.kind == "bid" and t.txn_id in outcome.aborted
        ]
        won = [
            t for t in txns
            if t.event.kind == "bid" and t.txn_id not in outcome.aborted
        ]
        assert rejected and won

    def test_winning_bids_raise_the_price(self):
        ob = OnlineBidding(1, bid_ratio=1.0, alter_ratio=0.0, skew=0.0,
                           num_partitions=1, initial_quantity=1000.0)
        events = ob.generate(50, seed=2)
        store, _txns, outcome = serial_ground_truth(ob, events)
        wins = 50 - len(outcome.aborted)
        expected = ob.initial_price * (1.0 + ob.price_premium) ** wins
        assert store.get(StateRef(PRICE, 0)) == pytest.approx(expected)

    def test_alters_and_topups_never_abort(self, ob):
        events = [
            e for e in ob.generate(400, seed=3) if e.kind != "bid"
        ]
        _store, _txns, outcome = serial_ground_truth(ob, events)
        assert not outcome.aborted

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            OnlineBidding(0)
        with pytest.raises(WorkloadError):
            OnlineBidding(8, bid_ratio=0.8, alter_ratio=0.5)
        with pytest.raises(WorkloadError):
            OnlineBidding(8, price_premium=1.5)


@pytest.mark.parametrize(
    "scheme_cls",
    [GlobalCheckpoint, WriteAheadLog, DependencyLogging, LSNVector, MorphStreamR],
)
def test_recovery_exact_for_all_schemes(ob, scheme_cls):
    events = ob.generate(350, seed=4)
    scheme = scheme_cls(ob, num_workers=4, epoch_len=50, snapshot_interval=3)
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    expected, _txns, _outcome = serial_ground_truth(ob, events)
    assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
    assert len(scheme.sink) == 350
