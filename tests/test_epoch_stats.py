"""Per-epoch observability: the runtime time series."""

from __future__ import annotations

import pytest

from repro.core.commitment import AdaptiveCommitController
from repro.core.morphstreamr import MorphStreamR
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.wal import WriteAheadLog
from repro.workloads.grep_sum import GrepSum


class TestEpochStats:
    def test_one_record_per_epoch(self, gs):
        scheme = GlobalCheckpoint(gs, num_workers=3, epoch_len=50)
        scheme.process_stream(gs.generate(250, seed=0))
        assert [s.epoch_id for s in scheme.epoch_stats] == [0, 1, 2, 3, 4]
        assert all(s.num_events == 50 for s in scheme.epoch_stats)

    def test_elapsed_and_throughput_consistent(self, gs):
        scheme = GlobalCheckpoint(gs, num_workers=3, epoch_len=50)
        scheme.process_stream(gs.generate(200, seed=0))
        for stat in scheme.epoch_stats:
            assert stat.elapsed_seconds > 0
            assert stat.throughput_eps == pytest.approx(
                stat.num_events / stat.elapsed_seconds
            )
        total = sum(s.elapsed_seconds for s in scheme.epoch_stats)
        # The ingress persist happens outside epoch accounting, so the
        # epoch series covers slightly less than the full elapsed time.
        assert total <= scheme.machine.elapsed()
        assert total >= 0.9 * scheme.machine.elapsed()

    def test_aborts_counted_per_epoch(self, tp):
        scheme = GlobalCheckpoint(tp, num_workers=3, epoch_len=50)
        scheme.process_stream(tp.generate(300, seed=0))
        assert sum(s.num_aborted for s in scheme.epoch_stats) > 0

    def test_log_bytes_delta_tracks_commits(self, gs):
        ckpt = GlobalCheckpoint(gs, num_workers=3, epoch_len=50)
        wal = WriteAheadLog(gs, num_workers=3, epoch_len=50)
        events = gs.generate(200, seed=0)
        ckpt.process_stream(events)
        wal.process_stream(events)
        assert all(s.log_bytes_delta == 0 for s in ckpt.epoch_stats)
        # GC reclaims older segments at checkpoints, so some deltas can
        # be negative; but commits must show up somewhere.
        assert any(s.log_bytes_delta > 0 for s in wal.epoch_stats)

    def test_adaptive_epoch_len_visible_in_series(self):
        workload = GrepSum(
            512, list_len=2, skew=0.0, multi_partition_ratio=0.1,
            abort_ratio=0.0, num_partitions=4,
        )
        controller = AdaptiveCommitController(32, 256)
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=64,
            snapshot_interval=4,
            controller=controller,
        )
        scheme.process_stream(workload.generate(800, seed=0))
        lens = [s.epoch_len for s in scheme.epoch_stats]
        assert lens[0] == 64
        assert lens[-1] == 256  # LSFD pushed the interval up
        assert len(set(lens)) > 1
