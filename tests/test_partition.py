"""Graph-based partitioning for selective logging (§VI-A1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import ChainGraph, build_chain_graph, greedy_partition
from repro.engine.execution import preprocess
from repro.engine.refs import StateRef
from repro.engine.tpg import build_tpg
from repro.errors import ConfigError

A, B, C, D = (StateRef("t", k) for k in "ABCD")


def graph_of(vertices, edges):
    graph = ChainGraph(vertices=dict(vertices))
    for a, b, w in edges:
        graph.add_edge(a, b, w)
    return graph


class TestChainGraph:
    def test_edges_are_undirected_and_accumulate(self):
        graph = graph_of({A: 1, B: 1}, [(A, B, 2), (B, A, 3)])
        assert graph.edges == {(A, B): 5}

    def test_self_edges_ignored(self):
        graph = graph_of({A: 1}, [(A, A, 5)])
        assert graph.edges == {}

    def test_cut_weight(self):
        graph = graph_of({A: 1, B: 1, C: 1}, [(A, B, 2), (B, C, 3)])
        assert graph.cut_weight({A: 0, B: 0, C: 1}) == 3
        assert graph.cut_weight({A: 0, B: 1, C: 0}) == 5

    def test_built_from_tpg(self, sl):
        events = sl.generate(200, seed=1)
        tpg = build_tpg(preprocess(events, sl, 0))
        graph = build_chain_graph(tpg)
        # One vertex per chain, weighted by its operation count.
        assert set(graph.vertices) == set(tpg.chains)
        for ref, weight in graph.vertices.items():
            assert weight == len(tpg.chains[ref])
        # Every edge endpoint is a real chain.
        for a, b in graph.edges:
            assert a in graph.vertices and b in graph.vertices

    def test_tpg_edge_weights_count_ld_and_pd(self):
        # One transfer-like txn: validator on A, second op on B
        # reading A -> one LD edge (B,A) and one PD edge per source.
        from repro.engine.events import Event
        from repro.engine.operations import Operation
        from repro.engine.transactions import Transaction

        t0 = Transaction(
            0, 0, Event(0, "w", ()),
            (Operation(0, 0, 0, A, "deposit", (1.0,)),),
        )
        t1 = Transaction(
            1, 1, Event(1, "x", ()),
            (
                Operation(1, 1, 1, C, "deposit", (1.0,)),
                Operation(2, 1, 1, B, "write_sum", (), (A,)),
            ),
        )
        graph = build_chain_graph(build_tpg([t0, t1]))
        assert graph.edges[(B, C)] == 1  # LD: op2 -> validator on C
        assert graph.edges[(A, B)] == 1  # PD: read of A by op on B


class TestGreedyPartition:
    def test_every_vertex_assigned_in_range(self):
        graph = graph_of({A: 3, B: 2, C: 2, D: 1}, [(A, B, 5)])
        assignment = greedy_partition(graph, 2)
        assert set(assignment) == {A, B, C, D}
        assert all(0 <= p < 2 for p in assignment.values())

    def test_single_partition_takes_all(self):
        graph = graph_of({A: 1, B: 1}, [])
        assert set(greedy_partition(graph, 1).values()) == {0}

    def test_affinity_groups_connected_chains(self):
        # Two heavy cliques: partitioning must not split them.
        graph = graph_of(
            {A: 1, B: 1, C: 1, D: 1},
            [(A, B, 10), (C, D, 10)],
        )
        assignment = greedy_partition(graph, 2)
        assert assignment[A] == assignment[B]
        assert assignment[C] == assignment[D]
        assert assignment[A] != assignment[C]

    def test_loads_balanced_within_cap(self):
        rng = random.Random(0)
        vertices = {StateRef("t", i): rng.randint(1, 5) for i in range(64)}
        graph = ChainGraph(vertices=vertices)
        assignment = greedy_partition(graph, 4, imbalance=1.2)
        loads = [0] * 4
        for ref, pid in assignment.items():
            loads[pid] += vertices[ref]
        total = sum(vertices.values())
        # Unconnected graph: no partition exceeds cap + one max vertex.
        assert max(loads) <= total / 4 * 1.2 + 5

    def test_cut_no_worse_than_random_on_structured_graph(self, sl):
        events = sl.generate(300, seed=2)
        tpg = build_tpg(preprocess(events, sl, 0))
        graph = build_chain_graph(tpg)
        greedy = greedy_partition(graph, 4)
        rng = random.Random(1)
        random_cuts = []
        for _ in range(5):
            assignment = {v: rng.randrange(4) for v in graph.vertices}
            random_cuts.append(graph.cut_weight(assignment))
        assert graph.cut_weight(greedy) <= min(random_cuts)

    def test_deterministic(self, gs):
        events = gs.generate(200, seed=3)
        graph = build_chain_graph(build_tpg(preprocess(events, gs, 0)))
        assert greedy_partition(graph, 4) == greedy_partition(graph, 4)

    def test_empty_graph(self):
        assert greedy_partition(ChainGraph(), 4) == {}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            greedy_partition(ChainGraph(), 0)
        with pytest.raises(ConfigError):
            greedy_partition(ChainGraph(), 2, imbalance=0.5)


@given(
    weights=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=40),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_property_partition_complete_and_bounded(weights, k):
    vertices = {StateRef("t", i): w for i, w in enumerate(weights)}
    graph = ChainGraph(vertices=vertices)
    assignment = greedy_partition(graph, k)
    assert set(assignment) == set(vertices)
    loads = [0] * k
    for ref, pid in assignment.items():
        loads[pid] += vertices[ref]
    cap = sum(weights) / k * 1.2 + max(weights)
    assert max(loads) <= cap
