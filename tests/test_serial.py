"""Serial ground-truth executor: the TSP semantics of §II-A.

Includes a literal encoding of the paper's Fig. 3 scenario (deposit then
two transfers with sufficient-balance conditions).
"""

from __future__ import annotations

import pytest

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.serial import execute_serial
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction

A = StateRef("accounts", "A")
B = StateRef("accounts", "B")


def deposit(txn_id, key, amount, uid):
    op = Operation(uid, txn_id, txn_id, key, "deposit", (amount,))
    return Transaction(txn_id, txn_id, Event(txn_id, "deposit", ()), (op,))


def transfer(txn_id, src, dst, amount, uid):
    ops = (
        Operation(uid, txn_id, txn_id, src, "debit", (amount,)),
        Operation(uid + 1, txn_id, txn_id, dst, "credit", (amount,)),
    )
    cond = Condition("ge", (src,), (amount,))
    return Transaction(txn_id, txn_id, Event(txn_id, "transfer", ()), ops, (cond,))


@pytest.fixture
def store():
    return StateStore({"accounts": {"A": 0.0, "B": 0.0}})


class TestFigure3Scenario:
    """e1: Deposit(A, 100); e2: Transfer(A→B, 60); e3: Transfer(B→A, 50)."""

    def test_all_commit(self, store):
        txns = [
            deposit(0, A, 100.0, uid=0),
            transfer(1, A, B, 60.0, uid=1),
            transfer(2, B, A, 50.0, uid=3),
        ]
        outcome = execute_serial(store, txns)
        assert outcome.aborted == set()
        assert store.get(A) == pytest.approx(90.0)
        assert store.get(B) == pytest.approx(10.0)

    def test_insufficient_balance_aborts_whole_transaction(self, store):
        txns = [
            deposit(0, A, 100.0, uid=0),
            transfer(1, A, B, 150.0, uid=1),  # A has only 100
        ]
        outcome = execute_serial(store, txns)
        assert outcome.aborted == {1}
        # Atomicity: neither the debit nor the credit applied.
        assert store.get(A) == pytest.approx(100.0)
        assert store.get(B) == pytest.approx(0.0)

    def test_abort_condition_sees_pre_transaction_state(self, store):
        # e2 transfers exactly A's balance; the condition reads the
        # post-e1 value of A, not the post-e2 one.
        txns = [
            deposit(0, A, 100.0, uid=0),
            transfer(1, A, B, 100.0, uid=1),
        ]
        outcome = execute_serial(store, txns)
        assert outcome.aborted == set()
        assert store.get(A) == 0.0
        assert store.get(B) == 100.0

    def test_downstream_transaction_sees_aborted_as_noop(self, store):
        txns = [
            deposit(0, A, 100.0, uid=0),
            transfer(1, A, B, 150.0, uid=1),  # aborts
            transfer(2, A, B, 100.0, uid=3),  # must still see A == 100
        ]
        outcome = execute_serial(store, txns)
        assert outcome.aborted == {1}
        assert store.get(A) == 0.0
        assert store.get(B) == 100.0


class TestOutcomeArtifacts:
    def test_op_values_recorded_for_committed_only(self, store):
        txns = [
            deposit(0, A, 100.0, uid=0),
            transfer(1, A, B, 150.0, uid=1),
        ]
        outcome = execute_serial(store, txns)
        assert outcome.op_values[0] == 100.0
        assert 1 not in outcome.op_values
        assert 2 not in outcome.op_values

    def test_read_values_resolved_pre_transaction(self):
        store = StateStore({"accounts": {"A": 5.0, "B": 1.0}})
        op = Operation(0, 0, 0, B, "write_sum", (), reads=(A,))
        txn = Transaction(0, 0, Event(0, "sum", ()), (op,))
        outcome = execute_serial(store, [txn])
        assert outcome.read_values[0] == (5.0,)
        assert store.get(B) == 6.0

    def test_cond_values_recorded_even_on_abort(self, store):
        txns = [transfer(0, A, B, 10.0, uid=0)]  # A == 0 -> aborts
        outcome = execute_serial(store, txns)
        assert outcome.cond_values[0] == {A: 0.0}
        assert outcome.aborted == {0}

    def test_decisions_in_timestamp_order(self, store):
        txns = [
            transfer(1, A, B, 10.0, uid=1),
            deposit(0, A, 100.0, uid=0),
        ]
        outcome = execute_serial(store, txns)
        # Supplied out of order; executed and recorded in ts order, so
        # the transfer sees the deposited balance and commits.
        assert outcome.decisions == [(0, True), (1, True)]

    def test_within_transaction_snapshot_reads(self):
        # An op reading a key its own transaction writes sees the
        # pre-transaction value (no read-own-write).
        store = StateStore({"accounts": {"A": 10.0, "B": 0.0}})
        ops = (
            Operation(0, 0, 0, A, "deposit", (5.0,)),
            Operation(1, 0, 0, B, "write_sum", (), reads=(A,)),
        )
        txn = Transaction(0, 0, Event(0, "e", ()), ops)
        outcome = execute_serial(store, [txn])
        # B = 0 + A(pre-txn)=10, not 15.
        assert store.get(B) == 10.0
        assert outcome.read_values[1] == (10.0,)
