"""Optimized task assignment: LPT guarantees and determinism (§V-B3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import lpt_assign, makespan, round_robin_assign
from repro.errors import ConfigError


class TestLPT:
    def test_loads_consistent_with_assignment(self):
        weights = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        assignment, loads = lpt_assign(weights, 3)
        recomputed = [0.0] * 3
        for i, worker in enumerate(assignment):
            recomputed[worker] += weights[i]
        assert recomputed == pytest.approx(loads)

    def test_classic_lpt_example(self):
        # LPT on {5,3,3,2,2,1} over 2 workers reaches the optimum of 8.
        _assignment, loads = lpt_assign([5, 3, 3, 2, 2, 1], 2)
        assert makespan(loads) == 8.0

    def test_better_than_round_robin_on_skewed_tasks(self):
        weights = [100.0] + [1.0] * 15
        _a1, lpt_loads = lpt_assign(weights, 4)
        _a2, rr_loads = round_robin_assign(weights, 4)
        assert makespan(lpt_loads) < makespan(rr_loads)

    def test_deterministic(self):
        weights = [3.0, 3.0, 2.0, 2.0, 1.0]
        assert lpt_assign(weights, 2) == lpt_assign(weights, 2)

    def test_empty_task_list(self):
        assignment, loads = lpt_assign([], 3)
        assert assignment == []
        assert loads == [0.0, 0.0, 0.0]

    def test_single_worker_serializes_everything(self):
        _assignment, loads = lpt_assign([1.0, 2.0, 3.0], 1)
        assert loads == [6.0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            lpt_assign([1.0], 0)
        with pytest.raises(ConfigError):
            lpt_assign([-1.0], 2)
        with pytest.raises(ConfigError):
            round_robin_assign([1.0], 0)


class TestMakespan:
    def test_empty(self):
        assert makespan([]) == 0.0

    def test_max_load(self):
        assert makespan([1.0, 5.0, 3.0]) == 5.0


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=60,
    ),
    workers=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=150, deadline=None)
def test_property_lpt_within_guarantee(weights, workers):
    """LPT makespan <= 2x the trivial lower bound (theory: 4/3 - 1/3m)."""
    assignment, loads = lpt_assign(weights, workers)
    assert len(assignment) == len(weights)
    assert all(0 <= w < workers for w in assignment)
    lower_bound = max(
        sum(weights) / workers, max(weights) if weights else 0.0
    )
    assert makespan(loads) <= 2 * lower_bound + 1e-9


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=60,
    ),
    workers=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_property_lpt_within_4_3_of_optimum_proxy(weights, workers):
    """LPT's theoretical bound: makespan <= 4/3 OPT + max task.

    OPT is not computable cheaply; ``max(total/m, max weight)`` lower
    bounds it, so LPT must stay within 4/3 of that bound plus one task
    (a consequence of the Graham bound, loose enough to be sound).
    """
    _a, loads = lpt_assign(weights, workers)
    if not weights:
        return
    lower = max(sum(weights) / workers, max(weights))
    assert makespan(loads) <= (4.0 / 3.0) * lower + max(weights) + 1e-9
