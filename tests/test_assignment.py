"""Optimized task assignment: LPT guarantees and determinism (§V-B3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    lpt_assign,
    lpt_reassign,
    makespan,
    round_robin_assign,
)
from repro.errors import ConfigError, ReassignmentError


class TestLPT:
    def test_loads_consistent_with_assignment(self):
        weights = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        assignment, loads = lpt_assign(weights, 3)
        recomputed = [0.0] * 3
        for i, worker in enumerate(assignment):
            recomputed[worker] += weights[i]
        assert recomputed == pytest.approx(loads)

    def test_classic_lpt_example(self):
        # LPT on {5,3,3,2,2,1} over 2 workers reaches the optimum of 8.
        _assignment, loads = lpt_assign([5, 3, 3, 2, 2, 1], 2)
        assert makespan(loads) == 8.0

    def test_better_than_round_robin_on_skewed_tasks(self):
        weights = [100.0] + [1.0] * 15
        _a1, lpt_loads = lpt_assign(weights, 4)
        _a2, rr_loads = round_robin_assign(weights, 4)
        assert makespan(lpt_loads) < makespan(rr_loads)

    def test_deterministic(self):
        weights = [3.0, 3.0, 2.0, 2.0, 1.0]
        assert lpt_assign(weights, 2) == lpt_assign(weights, 2)

    def test_empty_task_list(self):
        assignment, loads = lpt_assign([], 3)
        assert assignment == []
        assert loads == [0.0, 0.0, 0.0]

    def test_single_worker_serializes_everything(self):
        _assignment, loads = lpt_assign([1.0, 2.0, 3.0], 1)
        assert loads == [6.0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            lpt_assign([1.0], 0)
        with pytest.raises(ConfigError):
            lpt_assign([-1.0], 2)
        with pytest.raises(ConfigError):
            round_robin_assign([1.0], 0)

    def test_nan_and_inf_weights_rejected(self):
        with pytest.raises(ConfigError):
            lpt_assign([1.0, math.nan], 2)
        with pytest.raises(ConfigError):
            lpt_assign([math.inf], 2)
        with pytest.raises(ConfigError):
            lpt_reassign([math.nan], [0], (), (), 2)

    def test_more_workers_than_tasks(self):
        # Only the first len(weights) workers can ever receive a task;
        # the rest stay idle but still appear in loads.
        assignment, loads = lpt_assign([4.0, 2.0], 16)
        assert sorted(assignment) == [0, 1]
        assert len(loads) == 16
        assert loads[0] + loads[1] == pytest.approx(6.0)
        assert all(load == 0.0 for load in loads[2:])


class TestLPTReassign:
    def test_completed_tasks_keep_their_worker(self):
        weights = [5.0, 3.0, 2.0]
        assignment = [0, 1, 1]
        new_assignment, loads = lpt_reassign(
            weights, assignment, completed=(0,), dead_workers=(1,),
            num_workers=3,
        )
        assert new_assignment[0] == 0  # done work is never moved
        assert all(w != 1 for w in new_assignment[1:])
        # Residual loads exclude the completed task's weight.
        assert sum(loads) == pytest.approx(5.0)

    def test_no_survivors_raises_typed_reassignment_error(self):
        # Every worker dead: a *recovery* condition, not a usage bug —
        # callers catch ReassignmentError, keep the watermark intact and
        # retry on healthy workers.  Must raise immediately, before any
        # heap work (an empty survivor pool would otherwise divide the
        # residual across zero machines).
        with pytest.raises(ReassignmentError):
            lpt_reassign([1.0], [0], (), dead_workers=(0, 1), num_workers=2)
        # Even with nothing left to move, an empty survivor set is still
        # an error — the caller must learn the machine is gone.
        with pytest.raises(ReassignmentError):
            lpt_reassign(
                [1.0], [0], completed=(0,), dead_workers=(0, 1), num_workers=2
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            lpt_reassign([1.0, 2.0], [0], (), (), 2)

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ConfigError):
            lpt_reassign([1.0], [5], (), (), 2)
        with pytest.raises(ConfigError):
            lpt_reassign([1.0], [0], (), (7,), 2)

    def test_no_deaths_is_a_plain_rebalance(self):
        weights = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        assignment = [0] * 6  # pathological: everything on one worker
        _new, loads = lpt_reassign(weights, assignment, (), (), 2)
        assert makespan(loads) == 8.0  # the fresh-LPT optimum


class TestMakespan:
    def test_empty(self):
        assert makespan([]) == 0.0

    def test_max_load(self):
        assert makespan([1.0, 5.0, 3.0]) == 5.0


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=60,
    ),
    workers=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=150, deadline=None)
def test_property_lpt_within_guarantee(weights, workers):
    """LPT makespan <= 2x the trivial lower bound (theory: 4/3 - 1/3m)."""
    assignment, loads = lpt_assign(weights, workers)
    assert len(assignment) == len(weights)
    assert all(0 <= w < workers for w in assignment)
    lower_bound = max(
        sum(weights) / workers, max(weights) if weights else 0.0
    )
    assert makespan(loads) <= 2 * lower_bound + 1e-9


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=60,
    ),
    workers=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_property_lpt_within_4_3_of_optimum_proxy(weights, workers):
    """LPT's theoretical bound: makespan <= 4/3 OPT + max task.

    OPT is not computable cheaply; ``max(total/m, max weight)`` lower
    bounds it, so LPT must stay within 4/3 of that bound plus one task
    (a consequence of the Graham bound, loose enough to be sound).
    """
    _a, loads = lpt_assign(weights, workers)
    if not weights:
        return
    lower = max(sum(weights) / workers, max(weights))
    assert makespan(loads) <= (4.0 / 3.0) * lower + max(weights) + 1e-9


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=40,
    ),
    workers=st.integers(min_value=2, max_value=12),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_property_reassign_after_any_deaths_keeps_lpt_guarantee(
    weights, workers, data
):
    """Kill any proper subset of workers mid-schedule: re-assignment
    loses no chain, duplicates none, strands none on the dead, and the
    residual makespan stays within 2x the fresh-LPT lower bound over
    the survivors."""
    assignment, _loads = lpt_assign(weights, workers)
    dead = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=workers - 1),
            max_size=workers - 1,
        ),
        label="dead_workers",
    )
    completed = data.draw(
        st.sets(st.sampled_from(range(len(weights))), max_size=len(weights))
        if weights
        else st.just(set()),
        label="completed",
    )
    new_assignment, loads = lpt_reassign(
        weights, assignment, completed, dead, workers
    )
    # Conservation: exactly one worker per task — nothing lost, nothing
    # duplicated — and no residual task sits on a dead worker.
    assert len(new_assignment) == len(weights)
    residual = [i for i in range(len(weights)) if i not in completed]
    for i in residual:
        assert new_assignment[i] not in dead
        assert 0 <= new_assignment[i] < workers
    for i in completed:
        assert new_assignment[i] == assignment[i]
    # Loads are consistent with the residual assignment.
    recomputed = [0.0] * workers
    for i in residual:
        recomputed[new_assignment[i]] += weights[i]
    assert recomputed == pytest.approx(list(loads))
    # The 2x guarantee over the reduced machine.
    survivors = workers - len(dead)
    residual_weights = [weights[i] for i in residual]
    if residual_weights:
        lower = max(
            sum(residual_weights) / survivors, max(residual_weights)
        )
        assert makespan(loads) <= 2 * lower + 1e-9
