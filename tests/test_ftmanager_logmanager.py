"""Fault-tolerance Manager markers and Logging Manager commits."""

from __future__ import annotations

import pytest

from repro.core.commitment import AdaptiveCommitController, WorkloadProfile
from repro.core.ftmanager import (
    COMMIT,
    SNAPSHOT,
    TRANSACTION,
    FaultToleranceManager,
    MarkerSchedule,
)
from repro.core.logmanager import STREAM, LoggingManager, ViewSegment
from repro.core.views import AbortView, ParametricView
from repro.engine.refs import StateRef
from repro.errors import ConfigError, RecoveryError
from repro.storage.stores import Disk

A, B = StateRef("t", "A"), StateRef("t", "B")


class TestMarkerSchedule:
    def test_defaults_valid(self):
        MarkerSchedule()

    def test_snapshot_must_align_with_commit(self):
        with pytest.raises(ConfigError):
            MarkerSchedule(commit_every=3, snapshot_every=4)

    def test_nonpositive_intervals_rejected(self):
        with pytest.raises(ConfigError):
            MarkerSchedule(commit_every=0)
        with pytest.raises(ConfigError):
            MarkerSchedule(snapshot_every=0)


class TestFaultToleranceManager:
    def test_transaction_marker_every_epoch(self):
        fm = FaultToleranceManager(MarkerSchedule(2, 4))
        for epoch in range(8):
            assert TRANSACTION in fm.markers_at(epoch)

    def test_commit_and_snapshot_intervals(self):
        fm = FaultToleranceManager(MarkerSchedule(commit_every=2, snapshot_every=4))
        commits = [e for e in range(8) if COMMIT in fm.markers_at(e)]
        snapshots = [e for e in range(8) if SNAPSHOT in fm.markers_at(e)]
        assert commits == [1, 3, 5, 7]
        assert snapshots == [3, 7]

    def test_snapshots_always_on_commit_boundaries(self):
        fm = FaultToleranceManager(MarkerSchedule(commit_every=3, snapshot_every=6))
        for epoch in range(24):
            markers = fm.markers_at(epoch)
            if SNAPSHOT in markers:
                assert COMMIT in markers

    def test_observe_without_controller_keeps_epoch_len(self):
        fm = FaultToleranceManager(base_epoch_len=256)
        fm.observe(WorkloadProfile(0.0, 0.0, 0.0))
        assert fm.epoch_len == 256

    def test_observe_with_controller_adapts_epoch_len(self):
        controller = AdaptiveCommitController(64, 1024)
        fm = FaultToleranceManager(controller=controller, base_epoch_len=256)
        fm.observe(WorkloadProfile(0.0, 0.0, 0.0))  # LSFD -> max
        assert fm.epoch_len == 1024
        assert fm.last_profile is not None


def _segment(epoch_id, aborted=(), entries=(), pmap=None):
    pview = ParametricView(epoch_id)
    for txn_id, idx, ref, value in entries:
        pview.record(txn_id, idx, ref, B, value)
    return ViewSegment(epoch_id, AbortView(epoch_id, frozenset(aborted)), pview, pmap)


class TestLoggingManager:
    def test_stage_then_commit_persists_each_epoch(self):
        lm = LoggingManager(Disk())
        lm.stage(_segment(0, aborted=(1,)))
        lm.stage(_segment(1, entries=[(5, 0, A, 2.0)]))
        assert lm.buffered_epochs == 2
        io_s, committed = lm.commit()
        assert io_s > 0 and committed > 0
        assert lm.buffered_epochs == 0
        assert lm.has_epoch(0) and lm.has_epoch(1)

    def test_load_round_trips_views_and_map(self):
        lm = LoggingManager(Disk())
        lm.stage(_segment(3, aborted=(7, 9), entries=[(5, -1, A, 1.5)], pmap={A: 0, B: 1}))
        lm.commit()
        segment, io_s = lm.load_epoch(3)
        assert io_s > 0
        assert 7 in segment.abort_view and 9 in segment.abort_view
        assert segment.parametric_view.lookup(5, -1, A) == 1.5
        assert segment.partition_map == {A: 0, B: 1}

    def test_none_partition_map_round_trips(self):
        lm = LoggingManager(Disk())
        lm.stage(_segment(0))
        lm.commit()
        segment, _io = lm.load_epoch(0)
        assert segment.partition_map is None

    def test_crash_drops_uncommitted_buffer(self):
        lm = LoggingManager(Disk())
        lm.stage(_segment(0))
        lm.drop_buffer()
        assert lm.buffered_epochs == 0
        assert not lm.has_epoch(0)
        with pytest.raises(RecoveryError):
            lm.load_epoch(0)

    def test_buffered_bytes_tracks_staging(self):
        lm = LoggingManager(Disk())
        assert lm.buffered_bytes == 0
        lm.stage(_segment(0, entries=[(i, 0, A, float(i)) for i in range(20)]))
        assert lm.buffered_bytes > 0

    def test_commit_uses_msr_stream(self):
        disk = Disk()
        lm = LoggingManager(disk)
        lm.stage(_segment(0))
        lm.commit()
        assert disk.logs.has_epoch(STREAM, 0)
