"""Real backend internals: descriptors, plan recording, the executor.

Covers the picklability contract (task descriptors must survive a
round trip to worker processes), deterministic LPT group assignment,
the pure chain-group interpreter, and the executor's exactly-once /
fault-recovery guarantees — the latter also as a Hypothesis property
over random chain-group plans, worker counts and fault plans.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.errors import (
    BackendError,
    ConfigError,
    ReassignmentError,
    SchedulingError,
)
from repro.real.backend import (
    RealFaultPlan,
    pick_start_method,
    real_backend_unavailable_reason,
)
from repro.real.descriptors import (
    BASE,
    LOCAL,
    PIN,
    ChainGroupTask,
    GroupResult,
    OpSpec,
    execute_group,
    lpt_assign_groups,
    lpt_reassign_groups,
)
from repro.real.executor import RealExecutor
from repro.real.plan import merge_group_results
from repro.sim.executor import WorkerFault


def make_group(group_id, ops_spec, base=(), service=0.0, epoch=0):
    """Build a ChainGroupTask from (uid, key, func, params, reads) rows."""
    ops = tuple(
        OpSpec(
            uid=uid,
            table="t",
            key=key,
            func=func,
            params=params,
            reads=reads,
        )
        for uid, key, func, params, reads in ops_spec
    )
    return ChainGroupTask(
        group_id=group_id,
        epoch_id=epoch,
        ops=ops,
        base_values=tuple(base),
        service_seconds=service,
    )


def store_for(groups):
    """An engine store holding every record the groups write back."""
    records = {}
    for group in groups:
        for _table, key, value in group.base_values:
            records[key] = value
    store = StateStore()
    store.create_table("t", records)
    return store


def chain_group(group_id, keys, ops_per_key=2, start_uid=0):
    """A deterministic little plan: ``deposit`` chains over ``keys``."""
    rows = []
    base = []
    uid = start_uid
    for key in keys:
        base.append(("t", key, 10.0 * (hash(key) % 7)))
        for _ in range(ops_per_key):
            rows.append((uid, key, "deposit", (1.5,), ()))
            uid += 1
    return make_group(group_id, rows, base=base)


class TestDescriptorPickling:
    """Satellite regression: descriptors must stay pickle-cheap."""

    def test_round_trip_preserves_everything(self):
        task = make_group(
            3,
            [
                (0, "a", "deposit", (2.0,), ((BASE, "t", "b"),)),
                (1, "a", "grep_sum", (0.5,), ((LOCAL, 0), (PIN, 4.25))),
            ],
            base=[("t", "a", 1.0), ("t", "b", 2.0)],
            service=0.125,
            epoch=9,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.weight == task.weight == 2.0
        assert clone.ops[1].reads == ((LOCAL, 0), (PIN, 4.25))

    def test_group_result_round_trip(self):
        result = GroupResult(
            group_id=1,
            epoch_id=4,
            final_values=(("t", "a", 3.5),),
            op_values=((0, 3.5),),
        )
        assert pickle.loads(pickle.dumps(result)) == result

    def test_descriptors_are_frozen(self):
        task = chain_group(0, ["a"])
        with pytest.raises(AttributeError):
            task.group_id = 5
        with pytest.raises(AttributeError):
            task.ops[0].uid = 99


class TestExecuteGroup:
    def test_chain_threading_and_read_classes(self):
        # Chain on "a": 1 -> (1+2)=3 -> (3 * base(b)=4 + pinned 10) = 22.
        task = make_group(
            0,
            [
                (0, "a", "deposit", (2.0,), ()),
                (1, "a", "write_sum", (), ((BASE, "t", "b"), (PIN, 10.0))),
            ],
            base=[("t", "a", 1.0), ("t", "b", 4.0)],
        )
        result = execute_group(task)
        assert result.final_values == (("t", "a", 17.0),)
        assert dict(result.op_values) == {0: 3.0, 1: 17.0}

    def test_local_read_resolves_within_group(self):
        task = make_group(
            0,
            [
                (0, "a", "deposit", (5.0,), ()),
                (1, "b", "write_sum", (), ((LOCAL, 0),)),
            ],
            base=[("t", "a", 0.0), ("t", "b", 1.0)],
        )
        result = execute_group(task)
        assert dict((k, v) for _t, k, v in result.final_values) == {
            "a": 5.0,
            "b": 6.0,
        }

    def test_missing_base_value_fails_loudly(self):
        task = make_group(0, [(0, "a", "deposit", (1.0,), ())])
        with pytest.raises(SchedulingError):
            execute_group(task)

    def test_missing_local_source_fails_loudly(self):
        task = make_group(
            0,
            [(0, "a", "deposit", (1.0,), ((LOCAL, 99),))],
            base=[("t", "a", 0.0)],
        )
        with pytest.raises(SchedulingError):
            execute_group(task)


class TestGroupAssignment:
    def test_lpt_is_deterministic_and_balanced(self):
        groups = [chain_group(g, [f"k{g}"], ops_per_key=g + 1) for g in range(6)]
        first = lpt_assign_groups(groups, [0, 1, 2])
        second = lpt_assign_groups(list(reversed(groups)), [0, 1, 2])
        as_ids = lambda a: {w: [g.group_id for g in gs] for w, gs in a.items()}
        assert as_ids(first) == as_ids(second)
        loads = {
            w: sum(g.weight for g in gs) for w, gs in first.items()
        }
        assert max(loads.values()) <= sum(g.weight for g in groups)

    def test_reassign_moves_only_incomplete_groups(self):
        groups = [chain_group(g, [f"k{g}"]) for g in range(4)]
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        moved = lpt_reassign_groups(
            groups,
            assignment,
            completed={0},
            dead_workers={0},
            num_workers=2,
        )
        # All incomplete groups land on survivors; completed group 0 does
        # not re-run, and the dead worker receives nothing.
        assert set(moved) == {1}
        assert sorted(g.group_id for g in moved[1]) == [1, 2, 3]

    def test_reassign_with_no_survivors_raises(self):
        groups = [chain_group(0, ["a"])]
        with pytest.raises(ReassignmentError):
            lpt_reassign_groups(
                groups, {0: 0}, completed=set(),
                dead_workers={0}, num_workers=1,
            )


class TestBackendGating:
    def test_this_host_supports_the_real_backend(self):
        assert real_backend_unavailable_reason() is None

    def test_unknown_start_method_rejected(self):
        with pytest.raises(BackendError):
            pick_start_method("not-a-method")

    def test_fault_plan_translation(self):
        plan = RealFaultPlan.from_worker_faults(
            [
                WorkerFault(worker=0, kind="die", at_seconds=0.0),
                WorkerFault(worker=1, kind="die", at_seconds=5.0),
                WorkerFault(
                    worker=2, kind="straggle", at_seconds=0.0, slowdown=3.0
                ),
            ],
            num_workers=4,
        )
        assert plan.die_after == {0: 0, 1: 1}
        assert plan.straggle[2] > 0.0
        assert bool(plan)
        assert not RealFaultPlan()


class TestRealExecutor:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RealExecutor(0)
        with pytest.raises(ConfigError):
            RealExecutor(1, hard_timeout=0.0)
        executor = RealExecutor(2)
        with pytest.raises(ConfigError):
            executor.kill_worker(7)
        with pytest.raises(ConfigError):
            executor.run_plan([chain_group(0, ["a"]), chain_group(0, ["b"])])

    def test_empty_plan_is_a_no_op(self):
        run = RealExecutor(2).run_plan([])
        assert run.results == {}
        assert run.rounds == 0

    def test_exactly_once_and_merge(self):
        groups = [chain_group(g, [f"k{g}"], start_uid=10 * g) for g in range(5)]
        executor = RealExecutor(2)
        run = executor.run_plan(groups)
        assert sorted(run.results) == [0, 1, 2, 3, 4]
        assert all(count == 1 for count in run.completions.values())
        assert run.dead_workers == ()
        store = store_for(groups)
        written = merge_group_results(store, run.results)
        assert written == 5
        for group in groups:
            serial = execute_group(group)
            for table, key, value in serial.final_values:
                assert store.get(StateRef(table, key)) == value

    def test_death_triggers_lpt_reassignment(self):
        groups = [chain_group(g, [f"k{g}"], start_uid=10 * g) for g in range(4)]
        executor = RealExecutor(
            2, fault_plan=RealFaultPlan(die_after={1: 0})
        )
        run = executor.run_plan(groups)
        assert sorted(run.results) == [0, 1, 2, 3]
        assert run.dead_workers == (1,)
        assert run.rounds == 1
        assert run.groups_reassigned > 0
        # The reassignment rounds land in the shared stats contract.
        assert executor.stats.rounds == 1
        assert executor.stats.groups_reassigned == run.groups_reassigned

    def test_all_workers_dead_raises_loudly(self):
        executor = RealExecutor(
            2, fault_plan=RealFaultPlan(die_after={0: 0, 1: 0})
        )
        with pytest.raises(ReassignmentError):
            executor.run_plan([chain_group(0, ["a"]), chain_group(1, ["b"])])

    def test_straggler_completes_everything(self):
        groups = [chain_group(g, [f"k{g}"], start_uid=10 * g) for g in range(3)]
        executor = RealExecutor(
            2, fault_plan=RealFaultPlan(straggle={0: 0.01})
        )
        run = executor.run_plan(groups)
        assert sorted(run.results) == [0, 1, 2]
        assert run.dead_workers == ()

    def test_assignment_log_deterministic_across_executors(self):
        groups = [chain_group(g, [f"k{g}"], start_uid=10 * g) for g in range(6)]
        plans = [
            RealExecutor(
                3, fault_plan=RealFaultPlan(die_after={2: 0})
            ).run_plan(groups)
            for _ in range(2)
        ]
        assert plans[0].assignment_log == plans[1].assignment_log
        assert plans[0].dead_workers == plans[1].dead_workers == (2,)

    def test_deaths_persist_across_plans(self):
        executor = RealExecutor(2, fault_plan=RealFaultPlan(die_after={0: 0}))
        first = executor.run_plan([chain_group(0, ["a"])])
        assert first.dead_workers == (0,)
        second = executor.run_plan([chain_group(1, ["b"], start_uid=5)])
        # Worker 0 stays dead: the second plan runs on worker 1 alone.
        assert second.dead_workers == (0,)
        assert {w for _r, _g, w in second.assignment_log} == {1}


# ---------------------------------------------------------------------------
# Hypothesis property: exactly-once under random plans and fault plans
# ---------------------------------------------------------------------------

#: random chain-group plans: up to 6 groups, each with 1-3 single-key
#: chains of 1-3 ops (random TPG shapes after LPT grouping).
plans = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),  # chains in the group
        st.integers(min_value=1, max_value=3),  # ops per chain
    ),
    min_size=1,
    max_size=6,
)


def build_plan(shape):
    groups = []
    uid = 0
    for group_id, (num_chains, ops_per_chain) in enumerate(shape):
        keys = [f"g{group_id}c{c}" for c in range(num_chains)]
        groups.append(
            chain_group(
                group_id, keys, ops_per_key=ops_per_chain, start_uid=uid
            )
        )
        uid += num_chains * ops_per_chain
    return groups


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    shape=plans,
    num_workers=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_exactly_once_under_random_faults(shape, num_workers, data):
    """Random TPG-shaped plans + random seeded die/straggle fault plans:
    every chain group completes exactly once (no loss, no duplication),
    and the merged state equals the serial execution of every group."""
    groups = build_plan(shape)
    # Leave at least one worker fault-free so the plan stays recoverable.
    doomed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=num_workers - 1),
            max_size=max(0, num_workers - 1),
            unique=True,
        )
    )
    die_after = {
        worker: data.draw(
            st.integers(min_value=0, max_value=2), label=f"die_after[{worker}]"
        )
        for worker in doomed
    }
    straggler = data.draw(
        st.integers(min_value=-1, max_value=num_workers - 1),
        label="straggler",
    )
    straggle = {straggler: 0.002} if straggler >= 0 else {}
    executor = RealExecutor(
        num_workers,
        fault_plan=RealFaultPlan(die_after=die_after, straggle=straggle),
        reassign_budget=num_workers + 1,
    )
    run = executor.run_plan(groups)

    assert sorted(run.results) == [g.group_id for g in groups]
    assert all(count == 1 for count in run.completions.values())
    assert set(run.dead_workers) <= set(die_after)
    store = store_for(groups)
    merge_group_results(store, run.results)
    for group in groups:
        for table, key, value in execute_group(group).final_values:
            assert store.get(StateRef(table, key)) == value
