"""Recovery robustness: failed recoveries leave the scheme recoverable."""

from __future__ import annotations

import pytest

from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.errors import StorageError, WorkloadError
from repro.ft.base import FTScheme
from repro.ft.checkpoint import GlobalCheckpoint
from repro.workloads.base import Workload
from tests.conftest import serial_ground_truth


class TestFailedRecoveryIsRetryable:
    @staticmethod
    def _crashed_wal_with_corrupt_segment(gs, events, **kwargs):
        from repro.ft.wal import STREAM, WriteAheadLog

        scheme = WriteAheadLog(
            gs, num_workers=3, epoch_len=50, snapshot_interval=3, **kwargs
        )
        scheme.process_stream(events)
        scheme.crash()
        # Corrupt the WAL segment recovery will need (epoch 6).
        key = (STREAM, 6)
        kind_blob = scheme.disk.logs._segments[key]
        corrupted = bytearray(kind_blob)
        corrupted[-3] ^= 0x20
        scheme.disk.logs._segments[key] = bytes(corrupted)
        return scheme, key, kind_blob

    def test_corrupt_log_degrades_to_event_replay(self, gs):
        """Default mode: the fallback ladder quarantines the corrupt
        segment, reprocesses the epoch from the event store, and still
        recovers the exact serial state."""
        events = gs.generate(350, seed=0)
        scheme, key, _blob = self._crashed_wal_with_corrupt_segment(gs, events)
        report = scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(gs, events)
        assert scheme.store.equals(expected)
        assert report.degraded()
        assert report.ladder.get("replay", 0) == 1
        assert [f.epoch_id for f in report.fallbacks] == [6]
        assert report.fallbacks[0].error == "CorruptSegmentError"
        # The bad segment was quarantined, not left to trip a retry.
        assert key not in scheme.disk.logs._segments

    def test_strict_mode_aborts_recovery_without_installing_state(self, gs):
        """allow_degraded_recovery=False restores the fail-loud contract:
        recovery raises, installs nothing, and a repaired disk retries."""
        events = gs.generate(350, seed=0)
        scheme, key, kind_blob = self._crashed_wal_with_corrupt_segment(
            gs, events, allow_degraded_recovery=False
        )
        with pytest.raises(StorageError):
            scheme.recover()
        # The scheme is still in the crashed state, store not installed.
        assert scheme.store is None
        # Repair the disk and retry: recovery succeeds exactly.
        scheme.disk.logs._segments[key] = kind_blob
        report = scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(gs, events)
        assert scheme.store.equals(expected)
        assert not report.degraded()

    def test_second_recover_after_success_is_rejected(self, gs):
        scheme = GlobalCheckpoint(
            gs, num_workers=3, epoch_len=50, snapshot_interval=3
        )
        scheme.process_stream(gs.generate(200, seed=0))
        scheme.crash()
        scheme.recover()
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            scheme.recover()


class _UnpartitionedWorkload(Workload):
    """A workload without registered table sizes (no range partitioning)."""

    name = "UNPART"

    def __init__(self):
        super().__init__(num_partitions=2)
        # Deliberately no _table_sizes entries.

    def initial_state(self) -> StateStore:
        return StateStore({"t": {k: 0.0 for k in range(8)}})

    def generate(self, num_events, seed=0):
        from repro.engine.events import Event

        return [Event(i, "w", (i % 8,)) for i in range(num_events)]

    def build_transaction(self, event, uid_base):
        from repro.engine.operations import Operation
        from repro.engine.transactions import Transaction

        (key,) = event.payload
        op = Operation(
            uid_base, event.seq, event.seq, StateRef("t", key),
            "deposit", (1.0,),
        )
        return Transaction(event.seq, event.seq, event, (op,))

    def output_for(self, txn, committed, op_values):
        return ("w", round(op_values[txn.ops[0].uid], 6))


class TestPlacementFallback:
    def test_hash_placement_when_partitioning_unavailable(self):
        """Workloads without range partitioning fall back to a stable
        hash placement and still process/recover correctly."""
        workload = _UnpartitionedWorkload()
        with pytest.raises(WorkloadError):
            workload.partition_of(StateRef("t", 0))
        scheme = GlobalCheckpoint(
            workload, num_workers=2, epoch_len=20, snapshot_interval=2
        )
        events = workload.generate(100, seed=0)
        scheme.process_stream(events)
        scheme.crash()
        scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(workload, events)
        assert scheme.store.equals(expected)
