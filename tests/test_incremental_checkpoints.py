"""Incremental (delta) checkpoints: less runtime I/O, longer reload."""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.errors import ConfigError, StorageError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.storage.device import StorageDevice
from repro.storage.stores import SnapshotStore
from tests.conftest import serial_ground_truth


class TestSnapshotStoreDeltas:
    def test_delta_load_reconstructs_state(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {"t": {1: 1.0, 2: 2.0}})
        store.put_delta(1, {"t": {2: 9.0}}, base_epoch=0)
        state, seconds = store.load(1)
        assert state == {"t": {1: 1.0, 2: 9.0}}
        assert seconds > 0

    def test_delta_chain_applies_in_order(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {"t": {1: 1.0}})
        store.put_delta(1, {"t": {1: 2.0}}, base_epoch=0)
        store.put_delta(2, {"t": {1: 3.0}}, base_epoch=1)
        state, _s = store.load(2)
        assert state == {"t": {1: 3.0}}
        # Loading a mid-chain epoch reconstructs that point in time.
        assert store.load(1)[0] == {"t": {1: 2.0}}

    def test_delta_may_add_new_tables(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {"a": {1: 1.0}})
        store.put_delta(1, {"b": {5: 5.0}}, base_epoch=0)
        assert store.load(1)[0] == {"a": {1: 1.0}, "b": {5: 5.0}}

    def test_chain_base_and_is_delta(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {})
        store.put_delta(2, {}, base_epoch=0)
        store.put_delta(5, {}, base_epoch=2)
        assert store.chain_base(5) == 0
        assert store.is_delta(5) and not store.is_delta(0)

    def test_delta_requires_existing_base(self):
        store = SnapshotStore(StorageDevice())
        with pytest.raises(StorageError):
            store.put_delta(1, {}, base_epoch=0)

    def test_delta_must_follow_its_base(self):
        store = SnapshotStore(StorageDevice())
        store.put(5, {})
        with pytest.raises(StorageError):
            store.put_delta(3, {}, base_epoch=5)

    def test_truncate_preserves_live_chains(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {"t": {1: 1.0}})
        store.put(1, {"t": {1: 1.5}})  # stale full, safe to drop
        store.put_delta(4, {"t": {1: 2.0}}, base_epoch=0)
        store.truncate_before(4)
        # Epoch 0 anchors the surviving delta and must remain loadable.
        assert store.load(4)[0] == {"t": {1: 2.0}}
        with pytest.raises(StorageError):
            store.load(1)

    def test_chain_load_reads_more_bytes_than_full(self):
        store = SnapshotStore(StorageDevice())
        big = {"t": {k: float(k) for k in range(500)}}
        store.put(0, big)
        store.put_delta(1, {"t": {1: 9.0}}, base_epoch=0)
        _s, full_io = store.load(0)
        _s, chain_io = store.load(1)
        assert chain_io > full_io


class TestIncrementalSchemes:
    RUN = dict(num_workers=3, epoch_len=50, snapshot_interval=2)

    @pytest.mark.parametrize("scheme_cls", [GlobalCheckpoint, MorphStreamR])
    def test_recovery_exact_with_incremental_snapshots(
        self, workload, scheme_cls
    ):
        events = workload.generate(350, seed=0)
        scheme = scheme_cls(
            workload,
            incremental_snapshots=True,
            full_snapshot_every=3,
            **self.RUN,
        )
        scheme.process_stream(events)
        scheme.crash()
        scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(workload, events)
        assert scheme.store.equals(expected)
        assert len(scheme.sink) == 350

    def test_deltas_actually_written(self, gs):
        # 6 epochs -> snapshots at 1, 3, 5; with full_every=4 the run
        # ends on a delta whose chain (and hence the deltas) survives GC.
        scheme = GlobalCheckpoint(
            gs, incremental_snapshots=True, full_snapshot_every=4, **self.RUN
        )
        scheme.process_stream(gs.generate(300, seed=0))
        snapshots = scheme.disk.snapshots
        assert snapshots.is_delta(snapshots.latest_epoch())
        assert snapshots.chain_base(snapshots.latest_epoch()) == -1

    def test_incremental_writes_fewer_snapshot_bytes(self, gs):
        # GS writes touch few records per epoch, so deltas are small.
        full = GlobalCheckpoint(gs, **self.RUN)
        incremental = GlobalCheckpoint(
            gs, incremental_snapshots=True, full_snapshot_every=4, **self.RUN
        )
        events = gs.generate(400, seed=0)
        full.process_stream(events)
        incremental.process_stream(events)
        assert (
            incremental.disk.device.stats.bytes_written
            < full.disk.device.stats.bytes_written
        )

    def test_full_snapshot_every_one_means_no_deltas(self, gs):
        scheme = GlobalCheckpoint(
            gs, incremental_snapshots=True, full_snapshot_every=1, **self.RUN
        )
        scheme.process_stream(gs.generate(300, seed=0))
        snapshots = scheme.disk.snapshots
        assert not any(
            snapshots.is_delta(e) for e in snapshots._snapshots
        )

    def test_invalid_full_every_rejected(self, gs):
        with pytest.raises(ConfigError):
            GlobalCheckpoint(
                gs, incremental_snapshots=True, full_snapshot_every=0,
                **self.RUN,
            )
