"""Chaos layer: every injected failure recovers exactly or fails loud."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.morphstreamr import MorphStreamR
from repro.errors import InjectedCrash, MissingSegmentError
from repro.ft.wal import WriteAheadLog
from repro.harness.chaos import (
    CRASH_POINTS,
    FAULT_KINDS,
    CHAOS_SCHEMA,
    NESTED_CELL,
    ChaosConfig,
    _run_one,
    chaos_payload,
    load_chaos_payload,
    run_chaos,
    smoke_config,
)
from repro.harness.runner import ground_truth
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stores import Disk
from repro.workloads.streaming_ledger import StreamingLedger

DOCUMENTED_OUTCOMES = ("exact", "exact-degraded", "failed-loud")


def chaos_workload():
    return StreamingLedger(
        64,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


class TestChaosProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        scheme=st.sampled_from(("MSR", "WAL", "DL", "LV", "CKPT")),
        fault=st.sampled_from(FAULT_KINDS),
        point=st.sampled_from(CRASH_POINTS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_cell_recovers_exactly_or_fails_loud(
        self, scheme, fault, point, seed
    ):
        """The chaos contract: under any seeded fault × crash-point
        combination, every scheme either recovers bit-exactly (possibly
        via the fallback ladder) or raises a documented StorageError
        subclass without installing state.  No silent divergence, no
        undocumented exceptions."""
        cfg = ChaosConfig(
            schemes=(scheme,),
            fault_kinds=(fault,),
            crash_points=(point,),
            seed=seed,
        )
        run = _run_one(scheme, fault, point, cfg)
        assert run.ok, f"{scheme}/{fault}/{point}: {run.outcome} {run.detail}"
        assert run.outcome in DOCUMENTED_OUTCOMES


class TestMSRTornViewLog:
    def test_torn_view_segment_triggers_ladder_and_recovers_exact(self):
        """The acceptance scenario: a torn tail segment in MSR's view
        log visibly takes the replay rung and still recovers exactly."""
        workload = chaos_workload()
        injector = FaultInjector(
            [FaultSpec("torn", target="log", nth=6, stream="msr")]
        )
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=48,
            snapshot_interval=4,
            disk=Disk(faults=injector),
            gc_keep_checkpoints=2,
        )
        events = workload.generate(48 * 6, seed=7)
        scheme.process_stream(events)
        scheme.crash()
        report = scheme.recover()
        # The ladder stepped down for the torn epoch and says so.
        assert report.ladder.get("replay", 0) >= 1
        assert report.degraded()
        assert any(f.error == "TornSegmentError" for f in report.fallbacks)
        assert any("torn" in f.detail for f in report.fallbacks)
        # ... and exactness still holds.
        expected_state, expected_outputs = ground_truth(workload, events)
        assert scheme.store.equals(expected_state)
        assert scheme.sink.outputs() == expected_outputs

    def test_strict_mode_fails_loud_on_torn_view_segment(self):
        from repro.errors import StorageError

        workload = chaos_workload()
        injector = FaultInjector(
            [FaultSpec("torn", target="log", nth=6, stream="msr")]
        )
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=48,
            snapshot_interval=4,
            disk=Disk(faults=injector),
            allow_degraded_recovery=False,
        )
        scheme.process_stream(workload.generate(48 * 6, seed=7))
        scheme.crash()
        with pytest.raises(StorageError):
            scheme.recover()
        assert scheme.store is None  # nothing installed; retry possible


class TestMidEpochCrash:
    def test_crash_during_group_commit_reprocesses_the_sealed_epoch(self):
        workload = chaos_workload()
        injector = FaultInjector(
            [FaultSpec("crash", target="log", nth=6, stream="msr")]
        )
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=48,
            snapshot_interval=4,
            disk=Disk(faults=injector),
        )
        events = workload.generate(48 * 6, seed=7)
        with pytest.raises(InjectedCrash):
            scheme.process_stream(events)
        assert scheme.crash_epoch == 4  # epoch 5's commit tore mid-flush
        scheme.recover()
        injector.disarm()
        # The sealed-but-unprocessed epoch went back to the ingress
        # tail; an empty push drains it through the ordinary pipeline.
        scheme.process_stream([])
        expected_state, expected_outputs = ground_truth(workload, events)
        assert scheme.store.equals(expected_state)
        assert scheme.sink.outputs() == expected_outputs

    def test_crash_during_checkpoint_falls_back_to_older_checkpoint(self):
        workload = chaos_workload()
        injector = FaultInjector(
            [FaultSpec("crash", target="snapshot", nth=2)]
        )
        scheme = MorphStreamR(
            workload,
            num_workers=4,
            epoch_len=48,
            snapshot_interval=4,
            disk=Disk(faults=injector),
        )
        events = workload.generate(48 * 6, seed=7)
        with pytest.raises(InjectedCrash):
            scheme.process_stream(events)
        assert scheme.crash_epoch == 2  # epoch 3's checkpoint tore
        report = scheme.recover()
        # The torn interval checkpoint was discarded as crash debris;
        # recovery restored from the initial checkpoint.
        assert report.checkpoint_epoch == -1
        injector.disarm()
        scheme.process_stream([])
        expected_state, _outputs = ground_truth(workload, events)
        assert scheme.store.equals(expected_state)


class TestFileDiskTornTail:
    RUN = dict(num_workers=3, epoch_len=50, snapshot_interval=3)

    def test_physically_truncated_tail_segment_recovers_via_ladder(
        self, tmp_path, gs
    ):
        """A real torn flush on a real file: the dying process leaves a
        half-written WAL segment; reopening truncates the torn tail and
        recovery degrades to event replay — still exact."""
        events = gs.generate(350, seed=0)  # epochs 0..6
        disk = FileBackedDisk(tmp_path)
        scheme = WriteAheadLog(gs, disk=disk, **self.RUN)
        scheme.process_stream(events)
        # The "process" dies mid-flush of its newest WAL segment.
        seg = tmp_path / "logs" / "wal" / "6.bin"
        blob = seg.read_bytes()
        seg.write_bytes(blob[: len(blob) // 2])

        reopened = FileBackedDisk(tmp_path)
        assert ("wal", 6) in reopened.logs.truncated_tails
        assert not seg.exists()  # the torn tail was truncated away
        fresh = WriteAheadLog(gs, disk=reopened, **self.RUN)
        fresh.adopt_crash_state()
        report = fresh.recover()
        assert report.ladder.get("replay", 0) == 1
        assert report.fallbacks[0].error == "MissingSegmentError"
        expected, _txns, _outcome = serial_state(gs, events[:350])
        assert fresh.store.equals(expected)

    def test_mid_history_corruption_is_kept_for_the_ladder(self, tmp_path):
        """Only trailing unreadable segments are tail debris; damage
        behind a readable segment is kept and must fail loudly at read
        time (the ladder decides what to do with it)."""
        disk = FileBackedDisk(tmp_path)
        for epoch in (1, 2, 3):
            disk.logs.commit_epoch("wal", epoch, [f"r{epoch}"])
        mid = tmp_path / "logs" / "wal" / "2.bin"
        blob = mid.read_bytes()
        mid.write_bytes(blob[: len(blob) // 2])

        reopened = FileBackedDisk(tmp_path)
        assert reopened.logs.truncated_tails == []
        assert reopened.logs.has_epoch("wal", 2)  # kept, not hidden
        from repro.errors import TornSegmentError

        with pytest.raises(TornSegmentError):
            reopened.logs.read_epoch("wal", 2)
        reopened.logs.read_epoch("wal", 3)  # the readable tail survives


class TestChaosSweep:
    def test_smoke_sweep_passes_with_all_documented_outcomes(self):
        report = run_chaos(smoke_config())
        assert report.passed, [
            (r.scheme, r.fault, r.crash_point, r.detail)
            for r in report.failures
        ]
        counts = report.outcome_counts()
        assert set(counts) <= set(DOCUMENTED_OUTCOMES)
        # The sweep exercises the ladder, not just clean recoveries.
        assert counts.get("exact-degraded", 0) >= 1
        # MSR's torn view log visibly took the replay rung.
        msr_torn = [
            r for r in report.runs if r.scheme == "MSR" and r.fault == "torn"
        ]
        assert msr_torn
        assert all(r.ladder.get("replay", 0) >= 1 for r in msr_torn)
        # Every recovering cell reports a positive MTTR; loud-failure
        # cells (e.g. the cluster overwhelm cell, where an expected
        # data loss IS the pass condition) recover nothing.
        assert all(
            r.mttr_seconds > 0
            for r in report.runs
            if r.ok and r.outcome != "failed-loud"
        )

    def test_config_rejects_nat(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ChaosConfig(schemes=("NAT",))

    def test_config_rejects_unknown_worker_fault_and_recovery_point(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ChaosConfig(worker_faults=("die-eventually",))
        with pytest.raises(ConfigError):
            ChaosConfig(recovery_crash_points=("recovery.coffee-break",))


class TestChaosRecoveryDimensions:
    """The worker-failure and crash-during-recovery sweep families."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(smoke_config())

    def test_smoke_includes_worker_failure_cells(self, report):
        worker_cells = [
            r for r in report.runs if r.fault.startswith("worker:")
        ]
        assert len(worker_cells) >= 2
        assert report.passed
        # At least one death was observed and re-assigned somewhere.
        deaths = [r for r in worker_cells if r.dead_workers]
        assert deaths
        assert all(r.reassign_rounds >= 1 for r in deaths)
        assert all(r.tasks_reassigned > 0 for r in deaths)

    def test_smoke_includes_crash_during_recovery_cells(self, report):
        recovery_cells = [
            r for r in report.runs if r.crash_point.startswith("recovery.")
        ]
        assert recovery_cells
        converged = [r for r in recovery_cells if r.crash_point != NESTED_CELL]
        assert all(r.attempts == 2 for r in converged)
        assert all(r.outcome == "exact" for r in recovery_cells)

    def test_nested_cell_converges_in_three_attempts(self, report):
        nested = [r for r in report.runs if r.crash_point == NESTED_CELL]
        assert nested
        assert all(r.attempts == 3 for r in nested)
        assert all(r.ok for r in nested)
        # Wasted re-execution is measured, not hidden.
        assert all(r.wasted_ratio > 0 for r in nested)

    def test_payload_reports_histogram_and_wasted_work(self, report):
        import json

        payload = chaos_payload(report)
        assert payload["passed"] is True
        assert payload["summary"]["cells"] == len(report.runs)
        assert payload["summary"]["ladder_histogram"].get("fast", 0) > 0
        assert 0 < payload["summary"]["wasted_ratio"] < 1
        cell = payload["cells"][0]
        for key in (
            "ladder",
            "attempts",
            "resumed",
            "reassign_rounds",
            "tasks_reassigned",
            "wasted_ratio",
            "mttr_seconds",
        ):
            assert key in cell
        json.dumps(payload)  # exportable as-is

    def test_payload_is_schema_tagged_and_round_trips(self, report):
        import json

        payload = chaos_payload(report)
        assert payload["schema"] == CHAOS_SCHEMA
        loaded = load_chaos_payload(json.loads(json.dumps(payload)))
        assert loaded["passed"] is payload["passed"]

    def test_loader_tolerates_unknown_fields(self, report):
        payload = chaos_payload(report)
        payload["future_section"] = {"anything": [1, 2, 3]}
        payload["cells"][0]["future_metric"] = 0.5
        assert load_chaos_payload(payload) is payload

    def test_mttr_covers_crashed_attempts(self, report):
        # A cell that needed N attempts spent more virtual time than its
        # final successful pass alone; MTTR must reflect the whole story.
        nested = [r for r in report.runs if r.crash_point == NESTED_CELL]
        single = [
            r
            for r in report.runs
            if r.scheme == nested[0].scheme
            and r.fault == "none"
            and r.crash_point == "boundary"
        ]
        assert nested[0].mttr_seconds > single[0].mttr_seconds


class TestChaosPayloadLoader:
    """Schema gate for ``repro chaos --json`` documents (no sweep needed)."""

    MINIMAL = {"schema": CHAOS_SCHEMA, "passed": True, "cells": [], "summary": {}}

    def test_wrong_schema_rejected(self):
        from repro.errors import ConfigError

        bad = dict(self.MINIMAL, schema="repro.chaos/v999")
        with pytest.raises(ConfigError, match="unsupported chaos schema"):
            load_chaos_payload(bad)
        with pytest.raises(ConfigError):
            load_chaos_payload({"passed": True})  # tag missing entirely

    def test_missing_required_field_rejected(self):
        from repro.errors import ConfigError

        for key in ("passed", "cells", "summary"):
            broken = {k: v for k, v in self.MINIMAL.items() if k != key}
            with pytest.raises(ConfigError, match=key):
                load_chaos_payload(broken)

    def test_non_object_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load_chaos_payload(["not", "a", "dict"])


def serial_state(workload, events):
    from tests.conftest import serial_ground_truth

    return serial_ground_truth(workload, events)
