"""Segment integrity: corrupted durable bytes must never recover silently."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.storage.device import StorageDevice
from repro.storage.integrity import protect, verify
from repro.storage.stores import LogStore, SnapshotStore


class TestFraming:
    def test_round_trip(self):
        payload = b"hello durable world"
        assert verify(protect(payload)) == payload

    def test_empty_payload(self):
        assert verify(protect(b"")) == b""

    def test_bit_flip_detected(self):
        framed = bytearray(protect(b"some snapshot bytes"))
        framed[-1] ^= 0x01
        with pytest.raises(StorageError, match="checksum mismatch"):
            verify(bytes(framed))

    def test_header_corruption_detected(self):
        framed = bytearray(protect(b"payload"))
        framed[0] ^= 0xFF
        with pytest.raises(StorageError, match="checksum mismatch"):
            verify(bytes(framed))

    def test_truncated_frame_detected(self):
        with pytest.raises(StorageError, match="too short"):
            verify(b"\x01\x02")


class TestStoreIntegration:
    def test_snapshot_corruption_detected_on_load(self):
        store = SnapshotStore(StorageDevice())
        store.put(0, {"t": {1: 2.0}})
        kind, blob, base = store._snapshots[0]
        corrupted = bytearray(blob)
        corrupted[10] ^= 0x40
        store._snapshots[0] = (kind, bytes(corrupted), base)
        with pytest.raises(StorageError, match="checksum mismatch"):
            store.load(0)

    def test_log_corruption_detected_on_read(self):
        store = LogStore(StorageDevice())
        store.commit_epoch("wal", 0, [(0, "cmd", (1, 2))])
        blob = bytearray(store._segments[("wal", 0)])
        blob[-2] ^= 0x08
        store._segments[("wal", 0)] = bytes(blob)
        with pytest.raises(StorageError, match="checksum mismatch"):
            store.read_epoch("wal", 0)

    def test_recovery_refuses_corrupt_checkpoint(self, sl):
        scheme = GlobalCheckpoint(
            sl, num_workers=2, epoch_len=50, snapshot_interval=2
        )
        scheme.process_stream(sl.generate(200, seed=0))
        scheme.crash()
        # Corrupt the latest snapshot on "disk".
        latest = scheme.disk.snapshots.latest_epoch()
        kind, blob, base = scheme.disk.snapshots._snapshots[latest]
        corrupted = bytearray(blob)
        corrupted[len(corrupted) // 2] ^= 0x10
        scheme.disk.snapshots._snapshots[latest] = (kind, bytes(corrupted), base)
        with pytest.raises(StorageError, match="checksum mismatch"):
            scheme.recover()
