"""Resumable recovery: watermarks, crash-during-recovery, convergence.

The acceptance contract of the resumable-recovery machinery:

- killing the recovering process at *any* ``recovery.*`` milestone and
  re-running ``recover()`` converges on a state bit-identical to an
  uninterrupted recovery (idempotent re-execution of the in-flight
  chain included);
- nested failures (the retry crashes too) still converge;
- a damaged watermark degrades to a fresh-start recovery, never to a
  wrong state;
- killing any single recovery worker yields the same final state hash
  as a failure-free recovery.
"""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.errors import InjectedCrash, StorageError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.wal import WriteAheadLog
from repro.harness.chaos import RECOVERY_CRASH_POINTS
from repro.harness.runner import ground_truth
from repro.sim.executor import WorkerFault
from repro.storage.codec import encode
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stores import Disk, ProgressStore
from repro.workloads.streaming_ledger import StreamingLedger

RUN = dict(
    num_workers=4, epoch_len=48, snapshot_interval=4, gc_keep_checkpoints=2
)
EPOCHS = 6


def make_workload():
    return StreamingLedger(
        64,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


def run_to_crash(scheme_cls, injector=None, **kwargs):
    workload = make_workload()
    events = workload.generate(48 * EPOCHS, seed=7)
    scheme = scheme_cls(
        workload, disk=Disk(faults=injector), **RUN, **kwargs
    )
    try:
        scheme.process_stream(events)
        scheme.crash()
    except InjectedCrash:
        pass
    return scheme, workload, events


def recover_until_converged(scheme, max_attempts=6):
    for _attempt in range(max_attempts):
        try:
            return scheme.recover()
        except InjectedCrash:
            continue
    raise AssertionError(f"no convergence within {max_attempts} attempts")


def state_hash(scheme):
    return encode(scheme.store.snapshot())


def baseline_hash(scheme_cls):
    scheme, _wl, _events = run_to_crash(scheme_cls)
    scheme.recover()
    return state_hash(scheme)


def crash_at(point, nth=1):
    return FaultSpec("crash_point", target="any", nth=nth, point=point)


class TestProgressStore:
    def test_round_trip(self):
        store = ProgressStore(StorageDevice())
        assert not store.exists
        record = {"scheme": "MSR", "next_epoch": 3, "state": {"t": [1, 2]}}
        store.save(record)
        assert store.exists
        loaded, seconds = store.load()
        assert loaded == record
        assert seconds > 0

    def test_load_when_absent_returns_none(self):
        store = ProgressStore(StorageDevice())
        assert store.load() == (None, 0.0)

    def test_clear_drops_slot_and_mark(self):
        store = ProgressStore(StorageDevice())
        store.save({"next_epoch": 1})
        store.save_chain_mark({"epoch": 1, "chains_done": 2})
        store.clear()
        assert not store.exists
        assert store.load_chain_mark()[0] is None

    def test_save_clears_stale_chain_mark(self):
        # A watermark supersedes the in-flight epoch's chain mark: the
        # mark describes progress *within* the epoch the watermark just
        # sealed past.
        store = ProgressStore(StorageDevice())
        store.save_chain_mark({"epoch": 1, "chains_done": 5})
        store.save({"next_epoch": 2})
        assert store.load_chain_mark()[0] is None

    def test_torn_slot_raises_loudly(self):
        injector = FaultInjector(
            [FaultSpec("torn", target="progress", nth=1)]
        )
        store = ProgressStore(StorageDevice(), injector)
        store.save({"next_epoch": 1})
        with pytest.raises(StorageError):
            store.load()

    def test_damaged_chain_mark_treated_as_absent(self):
        injector = FaultInjector(
            [FaultSpec("bitflip", target="progress", nth=1)]
        )
        store = ProgressStore(StorageDevice(), injector)
        store.save_chain_mark({"epoch": 1, "chains_done": 5})
        mark, _seconds = store.load_chain_mark()
        assert mark is None

    def test_delta_charging_bills_fewer_bytes(self):
        store = ProgressStore(StorageDevice())
        record = {"state": {"t": list(range(500))}, "next_epoch": 1}
        full = store.save(record)
        incremental = store.save(record, charge_bytes=64)
        assert incremental < full


class TestFileProgressStore:
    def test_watermark_survives_process_restart(self, tmp_path):
        disk = FileBackedDisk(tmp_path)
        disk.progress.save({"scheme": "MSR", "next_epoch": 2})
        disk.progress.save_chain_mark({"epoch": 2, "chains_done": 1})
        reopened = FileBackedDisk(tmp_path)
        assert reopened.progress.exists
        assert reopened.progress.load()[0]["next_epoch"] == 2
        assert reopened.progress.load_chain_mark()[0] == {
            "epoch": 2,
            "chains_done": 1,
        }

    def test_clear_removes_files(self, tmp_path):
        disk = FileBackedDisk(tmp_path)
        disk.progress.save({"next_epoch": 2})
        disk.progress.clear()
        assert not (tmp_path / "progress" / "progress.bin").exists()
        assert not FileBackedDisk(tmp_path).progress.exists


class TestCrashDuringRecoveryConverges:
    @pytest.mark.parametrize("point", RECOVERY_CRASH_POINTS)
    def test_every_point_converges_to_uninterrupted_state(self, point):
        expected = baseline_hash(MorphStreamR)
        injector = FaultInjector([crash_at(point)])
        scheme, workload, events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert state_hash(scheme) == expected
        assert report.attempts == 2
        # The slate is clean: a later crash starts recovery afresh.
        assert not scheme.disk.progress.exists

    def test_resume_restores_from_watermark_not_scratch(self):
        injector = FaultInjector([crash_at("recovery.epoch-replayed")])
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert report.resumed
        assert report.resumed_from_epoch is not None
        # One replayed epoch died unwatermarked and was re-executed.
        assert report.wasted_events == 48

    def test_nested_double_crash_converges(self):
        expected = baseline_hash(MorphStreamR)
        injector = FaultInjector(
            [
                crash_at("recovery.epoch-replayed", nth=1),
                crash_at("recovery.epoch-replayed", nth=2),
            ]
        )
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert report.attempts == 3
        assert state_hash(scheme) == expected

    def test_outputs_exactly_once_across_attempts(self):
        injector = FaultInjector([crash_at("recovery.epoch-replayed")])
        scheme, workload, events = run_to_crash(MorphStreamR, injector)
        recover_until_converged(scheme)
        injector.disarm()
        scheme.process_stream([])
        expected_state, expected_outputs = ground_truth(workload, events)
        assert scheme.store.equals(expected_state)
        assert scheme.sink.outputs() == expected_outputs
        # The re-executed epoch re-delivered its outputs; the sink must
        # have deduplicated them.
        assert scheme.sink.duplicates_suppressed > 0

    def test_damaged_watermark_falls_back_to_fresh_start(self):
        expected = baseline_hash(MorphStreamR)
        injector = FaultInjector(
            [
                FaultSpec("torn", target="progress", nth=1),
                crash_at("recovery.epoch-replayed"),
            ]
        )
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        # The torn watermark was rejected; attempt 2 started afresh and
        # still landed on the exact state.
        assert not report.resumed
        assert state_hash(scheme) == expected

    def test_disabled_resumable_recovery_still_converges(self):
        expected = baseline_hash(MorphStreamR)
        injector = FaultInjector([crash_at("recovery.epoch-replayed")])
        scheme, _wl, _events = run_to_crash(
            MorphStreamR, injector, resumable_recovery=False
        )
        report = recover_until_converged(scheme)
        assert not report.resumed
        assert report.watermark_saves == 0
        assert state_hash(scheme) == expected


class TestLadderRungConvergence:
    """Satellite: crash mid-rung, for every rung, equals uninterrupted."""

    def _expected(self, scheme_cls, specs):
        injector = FaultInjector(list(specs))
        scheme, _wl, _events = run_to_crash(scheme_cls, injector)
        report = scheme.recover()
        return state_hash(scheme), report

    def test_fast_rung(self):
        expected, _report = self._expected(MorphStreamR, [])
        injector = FaultInjector([crash_at("recovery.epoch-replayed")])
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert report.ladder.get("fast", 0) >= 1
        assert state_hash(scheme) == expected

    def test_replay_rung(self):
        torn = FaultSpec("torn", target="log", nth=6, stream="msr")
        expected, base = self._expected(MorphStreamR, [torn])
        assert base.ladder.get("replay", 0) >= 1
        injector = FaultInjector(
            [torn, crash_at("recovery.epoch-replayed")]
        )
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert report.ladder.get("replay", 0) >= 1
        assert state_hash(scheme) == expected

    def test_checkpoint_fallback_rung(self):
        torn = FaultSpec("torn", target="snapshot", nth=2)
        expected, base = self._expected(MorphStreamR, [torn])
        assert base.checkpoint_fallbacks >= 1
        injector = FaultInjector(
            [torn, crash_at("recovery.epoch-replayed")]
        )
        scheme, _wl, _events = run_to_crash(MorphStreamR, injector)
        report = recover_until_converged(scheme)
        assert report.checkpoint_fallbacks >= 1
        assert state_hash(scheme) == expected

    def test_fail_loud_rung_stays_loud_across_attempts(self):
        # CKPT with its only checkpoints damaged has no rung to land on;
        # a crash during the attempt must not turn the loud failure into
        # a silent one on retry.
        specs = [
            FaultSpec("torn", target="snapshot", nth=1),
            FaultSpec("torn", target="snapshot", nth=2),
            FaultSpec("torn", target="snapshot", nth=3),
        ]
        scheme, _wl, _events = run_to_crash(GlobalCheckpoint, FaultInjector(specs))
        with pytest.raises(StorageError):
            scheme.recover()
        assert scheme.store is None
        with pytest.raises(StorageError):
            scheme.recover()
        assert scheme.store is None


class TestWorkerDeathExactness:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_killing_any_single_worker_preserves_state_hash(self, victim):
        expected = baseline_hash(MorphStreamR)
        scheme, _wl, _events = run_to_crash(
            MorphStreamR,
            recovery_faults=(WorkerFault(victim, "die", at_seconds=0.0),),
        )
        report = scheme.recover()
        assert report.dead_workers == (victim,)
        assert report.reassign_rounds >= 1
        assert report.tasks_reassigned > 0
        assert state_hash(scheme) == expected

    def test_straggler_changes_timing_not_state(self):
        expected = baseline_hash(MorphStreamR)
        clean, _wl, _ev = run_to_crash(MorphStreamR)
        clean_mttr = clean.recover().elapsed_seconds
        scheme, _wl2, _ev2 = run_to_crash(
            MorphStreamR,
            recovery_faults=(
                WorkerFault(0, "straggle", at_seconds=0.0, slowdown=8.0),
            ),
        )
        report = scheme.recover()
        assert state_hash(scheme) == expected
        assert report.elapsed_seconds > clean_mttr

    def test_death_plus_recovery_crash_converges(self):
        expected = baseline_hash(MorphStreamR)
        injector = FaultInjector([crash_at("recovery.watermark")])
        scheme, _wl, _events = run_to_crash(
            MorphStreamR,
            injector,
            recovery_faults=(WorkerFault(1, "die", at_seconds=0.0),),
        )
        report = recover_until_converged(scheme)
        assert report.attempts == 2
        assert report.reassign_rounds >= 1
        assert state_hash(scheme) == expected

    def test_wal_recovery_with_dead_worker_matches_ground_truth(self):
        scheme, workload, events = run_to_crash(
            WriteAheadLog,
            recovery_faults=(WorkerFault(1, "die", at_seconds=0.0),),
        )
        scheme.recover()
        expected_state, _outputs = ground_truth(workload, events)
        assert scheme.store.equals(expected_state)


class TestFileBackedResume:
    def test_new_process_resumes_from_durable_watermark(self, tmp_path):
        workload = make_workload()
        events = workload.generate(48 * EPOCHS, seed=7)
        injector = FaultInjector([crash_at("recovery.epoch-replayed")])
        disk = FileBackedDisk(tmp_path, faults=injector)
        scheme = MorphStreamR(workload, disk=disk, **RUN)
        scheme.process_stream(events)
        scheme.crash()
        with pytest.raises(InjectedCrash):
            scheme.recover()
        # The watermark reached the real filesystem before the death.
        assert (tmp_path / "progress" / "progress.bin").exists()

        # A brand-new process on the same directory picks it up.
        fresh = MorphStreamR(
            make_workload(), disk=FileBackedDisk(tmp_path), **RUN
        )
        fresh.adopt_crash_state()
        report = fresh.recover()
        assert report.resumed

        # And matches an uninterrupted in-memory recovery of the same run.
        assert state_hash(fresh) == baseline_hash(MorphStreamR)
