"""Systematic fault-schedule explorer: vocabulary, invariants, shrinking.

The checker's own correctness story is the seeded known-bug mutation:
``REPRO_CHECK_MUTATION=skip-ladder-rung`` re-introduces a silent
checkpoint-ladder bug, and these tests assert the explorer finds it
within the default budget, shrinks the counterexample to at most two
fault atoms, and re-triggers it deterministically from the emitted
repro file — while the unmutated tree passes the same exploration with
full crash-point coverage.
"""

from __future__ import annotations

import json

import pytest

from repro.check.explorer import (
    REPRO_SCHEMA,
    build_frontier,
    explore,
    load_repro_payload,
    replay_repro,
    repro_payload,
)
from repro.check.invariants import (
    INVARIANTS,
    check_observation,
    get_invariant,
)
from repro.check.mutations import MUTATION_ENV, active_mutation
from repro.check.runner import (
    OUTCOME_RECOVERED,
    CheckConfig,
    RunObservation,
    run_schedule,
)
from repro.check.schedule import (
    CLUSTER_SCHEME,
    FaultAtom,
    Schedule,
    recovery_point_atoms,
    schedule_fingerprint,
    single_scheme_atoms,
)
from repro.check.shrink import shrink_schedule
from repro.cluster import ClusterFault, ClusterFaultPlan, ClusterTopology
from repro.crashpoints import (
    DOMAIN_RECOVERY,
    get_point,
    registered_points,
    validate_point,
)
from repro.errors import ConfigError
from repro.sim.executor import WorkerFault
from repro.storage.faults import FaultSpec

#: Single-scheme config small enough for unit tests.
FAST = CheckConfig(schemes=("CKPT",), include_cluster=False, max_depth=1)


class TestCrashPointRegistry:
    def test_every_recovery_milestone_is_registered(self):
        names = {p.name for p in registered_points(domain=DOMAIN_RECOVERY)}
        assert names == {
            "recovery.checkpoint-loaded",
            "recovery.epoch-replayed",
            "recovery.watermark",
            "recovery.chain",
            "recovery.finalize",
        }

    def test_progress_file_points_live_in_their_own_domain(self):
        recovery = {p.name for p in registered_points(domain=DOMAIN_RECOVERY)}
        assert "progress.tmp-written" not in recovery
        assert get_point("progress.tmp-written").domain == "storage.progress-file"

    def test_scheme_filter_keeps_chain_for_msr_only(self):
        msr = {p.name for p in registered_points(scheme="MSR")}
        wal = {p.name for p in registered_points(scheme="WAL")}
        assert "recovery.chain" in msr
        assert "recovery.chain" not in wal

    def test_unregistered_point_is_a_config_error(self):
        with pytest.raises(ConfigError, match="bogus"):
            validate_point("recovery.bogus")
        with pytest.raises(ConfigError):
            FaultSpec("crash_point", target="any", point="recovery.bogus")


class TestScheduleVocabulary:
    def test_atoms_are_canonically_ordered(self):
        a = FaultAtom("storage", "torn")
        b = FaultAtom("crash", "mid-commit")
        assert Schedule("CKPT", (a, b)).atoms == Schedule("CKPT", (b, a)).atoms

    def test_duplicate_atoms_rejected(self):
        atom = FaultAtom("storage", "torn")
        with pytest.raises(ConfigError, match="duplicate"):
            Schedule("CKPT", (atom, atom))

    def test_family_caps(self):
        with pytest.raises(ConfigError, match="at most 1 storage"):
            Schedule(
                "CKPT",
                (FaultAtom("storage", "torn"), FaultAtom("storage", "drop")),
            )

    def test_kill_atoms_are_cluster_only(self):
        with pytest.raises(ConfigError, match="CLUSTER"):
            Schedule("MSR", (FaultAtom("kill", "rack:0"),))
        with pytest.raises(ConfigError, match="only kill atoms"):
            Schedule(CLUSTER_SCHEME, (FaultAtom("storage", "torn"),))

    def test_rpoint_atoms_come_from_the_registry(self):
        with pytest.raises(ConfigError):
            FaultAtom("rpoint", "recovery.not-a-point")
        labels = {a.label for a in recovery_point_atoms("WAL")}
        assert "rpoint:recovery.finalize" in labels
        assert "rpoint:recovery.chain" not in labels

    def test_payload_round_trip(self):
        sched = Schedule(
            "MSR",
            (
                FaultAtom("crash", "mid-commit"),
                FaultAtom("rpoint", "recovery.epoch-replayed", 2),
            ),
        )
        assert Schedule.from_payload(sched.to_payload()) == sched

    def test_fingerprint_is_stable_and_scenario_sensitive(self):
        sched = Schedule("CKPT", (FaultAtom("storage", "torn"),))
        fp1 = schedule_fingerprint(sched, {"seed": 7})
        assert fp1 == schedule_fingerprint(sched, {"seed": 7})
        assert fp1 != schedule_fingerprint(sched, {"seed": 8})


class TestRunner:
    def test_baseline_recovers_and_fires_all_scheme_points(self):
        obs = run_schedule(Schedule("MSR", ()), CheckConfig())
        assert obs.outcome == OUTCOME_RECOVERED
        assert obs.state_exact and obs.outputs_exact
        assert not check_observation(obs)
        for point in registered_points(domain=DOMAIN_RECOVERY, scheme="MSR"):
            assert obs.points_passed.get(point.name, 0) > 0

    def test_torn_checkpoint_walks_the_ladder(self):
        obs = run_schedule(
            Schedule("CKPT", (FaultAtom("storage", "torn"),)), FAST
        )
        assert obs.outcome == OUTCOME_RECOVERED
        assert obs.checkpoint_fallbacks == 1
        assert obs.checkpoint_epoch == obs.snapshot_candidates[1]
        assert not check_observation(obs)

    def test_degraded_probe_matches_ground_truth(self):
        obs = run_schedule(Schedule("CKPT", ()), FAST)
        probe = obs.degraded_probe
        assert probe is not None and "error" not in probe
        assert probe["value"] == probe["expected"]
        assert probe["staleness_epochs"] == (
            probe["crash_epoch"] - probe["checkpoint_epoch"]
        )

    def test_watermarks_recorded_and_monotonic(self):
        obs = run_schedule(
            Schedule(
                "MSR", (FaultAtom("rpoint", "recovery.epoch-replayed"),)
            ),
            CheckConfig(schemes=("MSR",), include_cluster=False),
        )
        assert obs.outcome == OUTCOME_RECOVERED
        assert obs.attempts > 1 or obs.resumed
        assert obs.watermarks, "progress watermarks were never persisted"
        assert not check_observation(obs)

    def test_cluster_kill_within_replication_recovers(self):
        obs = run_schedule(
            Schedule(CLUSTER_SCHEME, (FaultAtom("kill", "node:0.0"),)),
            CheckConfig(),
        )
        assert obs.outcome == OUTCOME_RECOVERED
        assert obs.cluster_exact is True
        assert obs.correlation_width == 1
        assert not check_observation(obs)


class TestInvariantRegistry:
    def test_unknown_invariant_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown invariant"):
            get_invariant("no-such-contract")

    def test_ladder_monotonic_catches_a_skipped_rung(self):
        obs = RunObservation(
            schedule=Schedule("CKPT", ()),
            outcome=OUTCOME_RECOVERED,
            state_exact=True,
            outputs_exact=True,
            snapshot_candidates=[3, -1],
            checkpoint_epoch=3,
            checkpoint_fallbacks=1,
        )
        names = [v.invariant for v in check_observation(obs)]
        assert "ladder-monotonic" in names

    def test_watermark_regression_is_a_violation(self):
        obs = RunObservation(
            schedule=Schedule("MSR", ()),
            outcome=OUTCOME_RECOVERED,
            state_exact=True,
            outputs_exact=True,
            watermarks=[(5, 2), (5, 4), (5, 3)],
        )
        names = [v.invariant for v in check_observation(obs)]
        assert "watermark-monotonic" in names

    def test_data_loss_within_replication_budget_is_a_violation(self):
        obs = RunObservation(
            schedule=Schedule(CLUSTER_SCHEME, (FaultAtom("kill", "shard:0"),)),
            outcome="failed-loud",
            data_loss=True,
            correlation_width=0,
            replication=1,
        )
        names = [v.invariant for v in check_observation(obs)]
        assert "no-silent-data-loss" in names

    def test_data_loss_beyond_replication_is_documented(self):
        obs = RunObservation(
            schedule=Schedule(
                CLUSTER_SCHEME,
                (FaultAtom("kill", "node:0.0"), FaultAtom("kill", "node:1.0")),
            ),
            outcome="failed-loud",
            data_loss=True,
            correlation_width=2,
            replication=1,
        )
        assert not check_observation(obs)

    def test_installed_state_after_loud_failure_is_a_violation(self):
        obs = RunObservation(
            schedule=Schedule("CKPT", ()),
            outcome="failed-loud",
            installed_after_failure=True,
        )
        names = [v.invariant for v in check_observation(obs)]
        assert "no-undocumented-failure" in names


class TestCorrelationWidth:
    TOPOLOGY = ClusterTopology(4, 2, 2)

    def width(self, *kills):
        plan = ClusterFaultPlan(
            kills=[ClusterFault(k, after_epoch=1) for k in kills]
        )
        return plan.correlation_width(self.TOPOLOGY)

    def test_shard_kill_destroys_no_node(self):
        assert self.width("shard:0") == 0

    def test_node_kills_count_distinct_nodes(self):
        assert self.width("node:0.0") == 1
        assert self.width("node:0.0", "node:1.0") == 2
        assert self.width("node:0.0", "node:0.0") == 1

    def test_rack_kill_counts_its_nodes(self):
        assert self.width("rack:0") == 2


class TestWorkerFaultPayload:
    def test_round_trip(self):
        fault = WorkerFault(1, "straggle", at_seconds=0.5, slowdown=3.0)
        assert WorkerFault.from_payload(fault.to_payload()) == fault

    def test_unknown_fields_tolerated(self):
        payload = WorkerFault(0, "die").to_payload()
        payload["future_field"] = "ignored"
        assert WorkerFault.from_payload(payload) == WorkerFault(0, "die")

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault.from_payload({"worker": 0})


class TestExplorer:
    def test_clean_exploration_passes_with_full_coverage(self):
        cfg = CheckConfig(
            schemes=("CKPT",), include_cluster=False, max_depth=1, budget=18
        )
        report = explore(cfg)
        assert report.passed
        assert not report.counterexamples
        assert report.coverage_ok
        assert report.budget_spent <= cfg.budget

    def test_frontier_is_deterministic_per_seed(self):
        cfg = CheckConfig()
        labels = [s.label for s in build_frontier(cfg)]
        assert labels == [s.label for s in build_frontier(cfg)]
        other = [s.label for s in build_frontier(CheckConfig(seed=11))]
        assert set(labels) == set(other)
        assert labels != other

    def test_budget_caps_runs(self):
        cfg = CheckConfig(
            schemes=("CKPT",), include_cluster=False, max_depth=2, budget=5
        )
        report = explore(cfg)
        assert report.budget_spent == 5
        assert report.frontier_unexplored > 0


class TestKnownBugMutation:
    """The checker validation: a seeded silent bug must be caught."""

    @pytest.fixture
    def mutated(self, monkeypatch):
        monkeypatch.setenv(MUTATION_ENV, "skip-ladder-rung")
        assert active_mutation() == "skip-ladder-rung"

    def test_unknown_mutation_name_rejected(self, monkeypatch):
        monkeypatch.setenv(MUTATION_ENV, "typo-mutation")
        with pytest.raises(ConfigError, match="typo-mutation"):
            active_mutation()

    def test_explorer_finds_and_shrinks_the_bug(self, mutated):
        report = explore(
            CheckConfig(schemes=("CKPT",), include_cluster=False, max_depth=1)
        )
        assert not report.passed
        assert report.counterexamples
        assert all(
            len(ce.minimal.atoms) <= 2 for ce in report.counterexamples
        )

    def test_repro_file_replays_deterministically(
        self, mutated, monkeypatch
    ):
        cfg = CheckConfig(
            schemes=("CKPT",), include_cluster=False, max_depth=1, budget=12
        )
        report = explore(cfg)
        payload = repro_payload(report.counterexamples[0], cfg)
        blob = json.dumps(payload)  # survives a round trip through disk
        result = replay_repro(json.loads(blob))
        assert result["reproduced"]
        assert result["fingerprint"] == report.counterexamples[0].fingerprint
        # The same repro on the unmutated tree must come back clean.
        monkeypatch.delenv(MUTATION_ENV)
        assert not replay_repro(json.loads(blob))["reproduced"]

    def test_shrink_drops_the_irrelevant_atom(self, mutated):
        sched = Schedule(
            "CKPT",
            (FaultAtom("storage", "torn"), FaultAtom("crash", "mid-commit")),
        )
        obs = run_schedule(sched, FAST)
        violated = check_observation(obs)
        assert violated
        minimal, min_obs, runs = shrink_schedule(
            sched, FAST, violated[0].invariant
        )
        assert len(minimal.atoms) == 1
        assert runs >= 2


class TestReproPayload:
    def _payload(self):
        sched = Schedule("CKPT", (FaultAtom("storage", "torn"),))
        return {
            "schema": REPRO_SCHEMA,
            "invariant": "recovered-state-exact",
            "schedule": sched.to_payload(),
            "scenario": {"seed": 7},
        }

    def test_unknown_fields_tolerated(self):
        payload = self._payload()
        payload["future_field"] = {"anything": True}
        payload["scenario"]["future_knob"] = 3
        loaded = load_repro_payload(payload)
        assert loaded["invariant"] == "recovered-state-exact"

    def test_wrong_schema_rejected(self):
        payload = self._payload()
        payload["schema"] = "repro.check/v999"
        with pytest.raises(ConfigError, match="unsupported repro schema"):
            load_repro_payload(payload)

    def test_unknown_invariant_rejected(self):
        payload = self._payload()
        payload["invariant"] = "not-a-contract"
        with pytest.raises(ConfigError):
            load_repro_payload(payload)


class TestInvariantRegistryShape:
    def test_every_invariant_has_a_unique_name_and_description(self):
        names = [inv.name for inv in INVARIANTS]
        assert len(names) == len(set(names))
        assert all(inv.description for inv in INVARIANTS)
