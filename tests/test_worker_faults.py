"""Worker-level faults: deaths, stragglers and resilient re-assignment."""

from __future__ import annotations

import pytest

from repro import buckets
from repro.errors import ConfigError, ReassignmentError
from repro.sim.clock import Machine
from repro.sim.executor import (
    ParallelExecutor,
    ResilientExecutor,
    SimTask,
    WorkerFault,
    WorkerFaultPlan,
    total_work,
)


def tasks_on(worker: int, count: int, cost: float = 1.0, group=None):
    return [
        SimTask(uid=worker * 100 + i, worker=worker, cost=cost, group=group)
        for i in range(count)
    ]


class TestWorkerFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(0, "explode")

    def test_negative_worker_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(-1, "die")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(0, "die", at_seconds=-1.0)

    def test_speedup_disguised_as_straggle_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(0, "straggle", slowdown=0.5)

    def test_plan_rejects_out_of_range_worker(self):
        with pytest.raises(ConfigError):
            WorkerFaultPlan([WorkerFault(4, "die")], num_workers=4)

    def test_plan_rejects_double_death(self):
        with pytest.raises(ConfigError):
            WorkerFaultPlan(
                [WorkerFault(0, "die"), WorkerFault(0, "die", at_seconds=1.0)],
                num_workers=2,
            )

    def test_plan_exposes_doomed_and_stragglers(self):
        plan = WorkerFaultPlan(
            [
                WorkerFault(1, "die", at_seconds=5.0),
                WorkerFault(0, "straggle", slowdown=3.0),
            ],
            num_workers=4,
        )
        assert plan.doomed_workers == (1,)
        assert plan.stragglers == (0,)
        assert plan.death_of(1) == 5.0
        assert plan.death_of(0) is None


class TestDeathSemantics:
    def test_death_at_zero_loses_every_task_uncharged(self):
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [WorkerFault(1, "die", at_seconds=0.0)], num_workers=2
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        work = tasks_on(0, 2) + tasks_on(1, 3)
        result = executor.run(work)
        assert [t.uid for t in result.lost] == [100, 101, 102]
        assert result.tasks_run == 2
        assert result.wasted_seconds == 0.0
        assert result.dead_workers == (1,)
        # The dead worker burned nothing: makespan is worker 0's alone.
        assert machine.elapsed() == pytest.approx(2.0)

    def test_mid_task_death_charges_partial_work_as_wasted(self):
        machine = Machine(1)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "die", at_seconds=1.5)], num_workers=1
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        result = executor.run(tasks_on(0, 2, cost=1.0))
        # Task 1 finishes at 1.0; task 2 dies at 1.5, half-done.
        assert result.tasks_run == 1
        assert [t.uid for t in result.lost] == [1]
        assert result.wasted_seconds == pytest.approx(0.5)
        assert machine.cores[0].clock == pytest.approx(1.5)

    def test_lost_dependency_cascades_without_error(self):
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "die", at_seconds=0.0)], num_workers=2
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        producer = SimTask(uid=1, worker=0, cost=1.0)
        consumer = SimTask(uid=2, worker=1, cost=1.0, deps=(1,))
        result = executor.run([producer, consumer])
        # The consumer never ran — its producer died with worker 0 — and
        # the executor reports it lost instead of raising.
        assert [t.uid for t in result.lost] == [1, 2]
        assert result.tasks_run == 0

    def test_unobserved_death_reports_no_dead_worker(self):
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [WorkerFault(1, "die", at_seconds=100.0)], num_workers=2
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        result = executor.run(tasks_on(0, 2) + tasks_on(1, 2))
        assert result.lost == []
        assert result.dead_workers == ()


class TestStraggleSemantics:
    def test_straggler_stretches_work_after_onset(self):
        machine = Machine(1)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "straggle", at_seconds=0.0, slowdown=3.0)],
            num_workers=1,
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        executor.run(tasks_on(0, 2, cost=1.0))
        assert machine.cores[0].clock == pytest.approx(6.0)

    def test_span_straddling_onset_stretches_only_the_tail(self):
        machine = Machine(1)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "straggle", at_seconds=0.5, slowdown=4.0)],
            num_workers=1,
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        executor.run(tasks_on(0, 1, cost=1.0))
        # 0.5s at full speed, the remaining 0.5s at quarter speed.
        assert machine.cores[0].clock == pytest.approx(0.5 + 0.5 * 4.0)

    def test_straggler_loses_nothing(self):
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [WorkerFault(1, "straggle", slowdown=8.0)], num_workers=2
        )
        executor = ParallelExecutor(machine, sync_cost=0.0, fault_plan=plan)
        result = executor.run(tasks_on(0, 2) + tasks_on(1, 2))
        assert result.lost == []
        assert result.tasks_run == 4


class TestResilientExecutor:
    def test_reassigns_lost_tasks_to_survivors(self):
        machine = Machine(3)
        plan = WorkerFaultPlan(
            [WorkerFault(2, "die", at_seconds=0.0)], num_workers=3
        )
        executor = ResilientExecutor(machine, sync_cost=0.0, fault_plan=plan)
        work = tasks_on(0, 1) + tasks_on(1, 1) + tasks_on(2, 4)
        result = executor.run(work)
        assert result.tasks_run == 6
        assert result.lost == []
        assert result.dead_workers == (2,)
        assert executor.stats.rounds == 1
        assert executor.stats.tasks_reassigned == 4
        # The dead worker's core never advanced.
        assert machine.cores[2].clock == 0.0

    def test_chains_move_whole_groups(self):
        machine = Machine(3)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "die", at_seconds=0.0)], num_workers=3
        )
        executor = ResilientExecutor(machine, sync_cost=0.0, fault_plan=plan)
        chain_a = [
            SimTask(uid=i, worker=0, cost=1.0, group=7,
                    deps=(i - 1,) if i else ())
            for i in range(3)
        ]
        result = executor.run(chain_a)
        assert result.tasks_run == 3
        assert executor.stats.groups_reassigned == 1
        # An intra-chain dependency stayed intra-worker after the move.
        assert result.cross_worker_edges == 0

    def test_backoff_charged_to_reassign_bucket(self):
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [WorkerFault(1, "die", at_seconds=0.0)], num_workers=2
        )
        executor = ResilientExecutor(
            machine,
            sync_cost=0.0,
            fault_plan=plan,
            reassign_backoff=0.25,
        )
        executor.run(tasks_on(1, 2))
        assert executor.stats.backoff_seconds == pytest.approx(0.25)
        assert machine.cores[0].buckets.get(buckets.REASSIGN, 0.0) == (
            pytest.approx(0.25)
        )

    def test_budget_exhaustion_fails_loudly(self):
        # Both workers are doomed, but worker 1 dies late enough to pick
        # up re-assigned work and lose it again — the budget runs out.
        machine = Machine(2)
        plan = WorkerFaultPlan(
            [
                WorkerFault(0, "die", at_seconds=0.5),
                WorkerFault(1, "die", at_seconds=0.5),
            ],
            num_workers=2,
        )
        executor = ResilientExecutor(
            machine,
            sync_cost=0.0,
            fault_plan=plan,
            reassign_budget=2,
            reassign_backoff=0.0,
        )
        with pytest.raises(ReassignmentError):
            executor.run(tasks_on(0, 3, cost=1.0))

    def test_no_survivors_fails_loudly(self):
        machine = Machine(1)
        plan = WorkerFaultPlan(
            [WorkerFault(0, "die", at_seconds=0.5)], num_workers=1
        )
        executor = ResilientExecutor(machine, sync_cost=0.0, fault_plan=plan)
        with pytest.raises(ReassignmentError):
            executor.run(tasks_on(0, 2, cost=1.0))

    def test_faultless_run_matches_plain_executor(self):
        work = tasks_on(0, 3) + tasks_on(1, 2)
        plain = Machine(2)
        ParallelExecutor(plain, sync_cost=0.0).run(work)
        resilient = Machine(2)
        ResilientExecutor(resilient, sync_cost=0.0).run(work)
        assert resilient.elapsed() == plain.elapsed()

    def test_all_work_conserved_after_reassignment(self):
        machine = Machine(4)
        plan = WorkerFaultPlan(
            [WorkerFault(3, "die", at_seconds=0.0)], num_workers=4
        )
        executor = ResilientExecutor(
            machine, sync_cost=0.0, fault_plan=plan, reassign_backoff=0.0
        )
        work = [
            SimTask(uid=i, worker=i % 4, cost=0.5, group=i % 8)
            for i in range(32)
        ]
        result = executor.run(work)
        assert result.tasks_run == 32
        total = sum(
            sum(core.buckets.values()) for core in machine.cores
        )
        assert total == pytest.approx(total_work(work))
