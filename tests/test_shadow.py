"""Shadow-based exploration (§VI-A2): Fig. 8 scenario and invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shadow import explore_chains
from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.errors import SchedulingError


def op(uid, key):
    """Operation with ts == uid (uids are assigned in ts order)."""
    return Operation(uid, uid, uid, StateRef("t", key), "deposit", (1.0,))


class TestFigure8Scenario:
    """The paper's example: two chains, O1..O5 with PD/LD shadows.

    Chain X: O1(ts1), O2(ts2), O5(ts5); chain Y: O3(ts3), O4(ts4).
    O3 depends on O1 and O2; O5 depends on O3 and O4.
    """

    def _chains(self):
        o1, o2, o5 = op(1, "X"), op(2, "X"), op(5, "X")
        o3, o4 = op(3, "Y"), op(4, "Y")
        chains = [[o1, o2, o5], [o3, o4]]
        local_deps = {3: (1, 2), 5: (3, 4)}
        return chains, local_deps

    def test_execution_order_matches_paper_walkthrough(self):
        chains, deps = self._chains()
        result = explore_chains(chains, deps)
        assert [o.uid for o in result.order] == [1, 2, 3, 4, 5]

    def test_shadow_visits_counted(self):
        chains, deps = self._chains()
        result = explore_chains(chains, deps)
        # O1 and O2 each pass one shadow of O3; O3 and O4 each pass one
        # shadow of O5.
        assert result.shadows_passed[1] == 1
        assert result.shadows_passed[2] == 1
        assert result.shadows_passed[3] == 1
        assert result.shadows_passed[4] == 1
        assert result.total_shadow_visits == 4

    def test_chain_switch_recorded_when_blocked(self):
        chains, deps = self._chains()
        result = explore_chains(chains, deps)
        # The worker blocks at O5 and switches to the (O3, O4) chain
        # (step 4 of Fig. 8).
        assert result.switches_for.get(5, 0) >= 1
        assert result.total_chain_switches >= 1


class TestInvariants:
    def test_every_operation_executed_exactly_once(self):
        chains = [[op(1, "A"), op(4, "A")], [op(2, "B")], [op(3, "C")]]
        deps = {4: (2, 3), 2: (1,)}
        result = explore_chains(chains, deps)
        assert sorted(o.uid for o in result.order) == [1, 2, 3, 4]

    def test_order_respects_chain_positions(self):
        chains = [[op(1, "A"), op(3, "A"), op(5, "A")], [op(2, "B"), op(4, "B")]]
        result = explore_chains(chains, {})
        position = {o.uid: i for i, o in enumerate(result.order)}
        assert position[1] < position[3] < position[5]
        assert position[2] < position[4]

    def test_order_respects_local_dependencies(self):
        chains = [[op(2, "A")], [op(1, "B")]]
        result = explore_chains(chains, {2: (1,)})
        assert [o.uid for o in result.order] == [1, 2]

    def test_no_dependencies_runs_chains_in_listed_order(self):
        chains = [[op(1, "A"), op(2, "A")], [op(3, "B")]]
        result = explore_chains(chains, {})
        assert [o.uid for o in result.order] == [1, 2, 3]
        assert result.total_chain_switches == 0
        assert result.total_shadow_visits == 0

    def test_empty_input(self):
        result = explore_chains([], {})
        assert result.order == []

    def test_dependency_outside_partition_rejected(self):
        chains = [[op(2, "A")]]
        with pytest.raises(SchedulingError):
            explore_chains(chains, {2: (1,)})

    def test_duplicate_operation_rejected(self):
        duplicated = op(1, "A")
        with pytest.raises(SchedulingError):
            explore_chains([[duplicated], [duplicated]], {})

    def test_deep_dependency_cascade_terminates(self):
        # Chain i's op depends on chain i+1's op, forcing a maximal
        # switch cascade.
        chains = [[op(i, f"K{i}")] for i in range(50)]
        deps = {i: (i + 1,) for i in range(49)}
        result = explore_chains(chains, deps)
        assert [o.uid for o in result.order] == list(range(49, -1, -1))
        assert result.total_chain_switches == 49


@given(data=st.data(), num_chains=st.integers(2, 6), ops_total=st.integers(1, 40))
@settings(max_examples=100, deadline=None)
def test_property_exploration_is_topological(data, num_chains, ops_total):
    """Random chains + random earlier-ts local deps always explore into
    a valid topological order covering every operation once."""
    rng_seed = data.draw(st.integers(0, 2**20))
    rng = random.Random(rng_seed)
    chains = [[] for _ in range(num_chains)]
    all_ops = []
    for uid in range(ops_total):
        chain_id = rng.randrange(num_chains)
        operation = op(uid, f"K{chain_id}")
        chains[chain_id].append(operation)
        all_ops.append((operation, chain_id))
    chains = [c for c in chains if c]

    local_deps = {}
    for operation, chain_id in all_ops:
        candidates = [
            o.uid
            for o, cid in all_ops
            if o.uid < operation.uid and cid != chain_id
        ]
        if candidates and rng.random() < 0.5:
            local_deps[operation.uid] = tuple(
                sorted(rng.sample(candidates, k=min(2, len(candidates))))
            )

    result = explore_chains(chains, local_deps)
    assert sorted(o.uid for o in result.order) == sorted(
        o.uid for o, _c in all_ops
    )
    position = {o.uid: i for i, o in enumerate(result.order)}
    for chain in chains:
        for earlier, later in zip(chain, chain[1:]):
            assert position[earlier.uid] < position[later.uid]
    for uid, deps in local_deps.items():
        for dep in deps:
            assert position[dep] < position[uid]
