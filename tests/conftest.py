"""Shared fixtures: small, fast workload/scheme configurations.

Tests run the full runtime → crash → recovery cycle on reduced sizes
(QUICK-scale: tens of events per epoch) so the entire suite stays fast
while still exercising every code path the benchmarks use.
"""

from __future__ import annotations

import pytest

from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.workloads.grep_sum import GrepSum
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.toll_processing import TollProcessing


@pytest.fixture
def sl():
    """Small Streaming Ledger with natural and forced aborts."""
    return StreamingLedger(
        64,
        transfer_ratio=0.6,
        multi_partition_ratio=0.5,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


@pytest.fixture
def gs():
    """Small skewed Grep&Sum with aborts."""
    return GrepSum(
        128,
        list_len=4,
        skew=0.8,
        multi_partition_ratio=0.5,
        abort_ratio=0.1,
        num_partitions=4,
    )


@pytest.fixture
def tp():
    """Small Toll Processing with capacity-driven aborts."""
    return TollProcessing(32, skew=0.4, capacity=10.0, num_partitions=4)


@pytest.fixture(params=["sl", "gs", "tp"])
def workload(request, sl, gs, tp):
    """Parametrized over all three benchmark applications."""
    return {"sl": sl, "gs": gs, "tp": tp}[request.param]


def serial_ground_truth(workload, events):
    """(final store, outcome) of the reference serial execution."""
    store = workload.initial_state()
    txns = preprocess(events, workload, 0)
    outcome = execute_serial(store, txns)
    return store, txns, outcome
