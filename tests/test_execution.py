"""Edge-local parallel execution vs serial ground truth, and the
translation of executed operations into costed simulator tasks."""

from __future__ import annotations

import pytest

from repro.engine.execution import (
    build_op_tasks,
    execute_tpg,
    hash_worker_of,
    op_cost,
    preprocess,
    stable_hash,
)
from repro.engine.refs import StateRef
from repro.engine.serial import execute_serial
from repro.engine.tpg import build_tpg
from repro.sim.costs import DEFAULT_COSTS
from tests.conftest import serial_ground_truth


class TestExecuteTpgEquivalence:
    """The conflict-equivalence criterion: edge-local == serial."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial_on_every_workload(self, workload, seed):
        events = workload.generate(300, seed=seed)
        serial_store, txns, serial_outcome = serial_ground_truth(
            workload, events
        )
        parallel_store = workload.initial_state()
        tpg = build_tpg(preprocess(events, workload, 0))
        outcome = execute_tpg(parallel_store, tpg)

        assert parallel_store.equals(serial_store)
        assert outcome.aborted == serial_outcome.aborted
        assert outcome.op_values == serial_outcome.op_values
        assert outcome.read_values == serial_outcome.read_values
        assert outcome.cond_values == serial_outcome.cond_values

    def test_multi_epoch_split_equivalent_to_single_batch(self, gs):
        events = gs.generate(200, seed=3)
        serial_store, _txns, _outcome = serial_ground_truth(gs, events)
        split_store = gs.initial_state()
        for start in range(0, 200, 50):
            tpg = build_tpg(preprocess(events[start : start + 50], gs, 0))
            execute_tpg(split_store, tpg)
        assert split_store.equals(serial_store)


class TestPreprocess:
    def test_uids_contiguous_and_timestamp_ordered(self, sl):
        events = sl.generate(50, seed=1)
        txns = preprocess(events, sl, uid_base=10)
        uids = [op.uid for txn in txns for op in txn.ops]
        assert uids == list(range(10, 10 + len(uids)))

    def test_events_sorted_by_seq(self, sl):
        events = sl.generate(20, seed=1)
        txns = preprocess(list(reversed(events)), sl, 0)
        assert [t.ts for t in txns] == sorted(t.ts for t in txns)

    def test_deterministic(self, workload):
        events = workload.generate(40, seed=5)
        assert preprocess(events, workload, 0) == preprocess(events, workload, 0)


class TestStableHash:
    def test_deterministic_across_calls(self):
        ref = StateRef("accounts", 42)
        assert stable_hash(ref) == stable_hash(StateRef("accounts", 42))

    def test_known_value_pinned(self):
        # Guards against accidental use of the salted built-in hash:
        # this value must be identical in every process.
        assert stable_hash(StateRef("t", 0)) == stable_hash(StateRef("t", 0))
        values = {stable_hash(StateRef("t", k)) % 8 for k in range(100)}
        assert len(values) > 1  # spreads across workers

    def test_worker_of_within_range(self):
        worker_of = hash_worker_of(4)
        for key in range(50):
            assert 0 <= worker_of(StateRef("x", key)) < 4


class TestOpCostAndTasks:
    def _setup(self, workload, n=200, seed=2):
        events = workload.generate(n, seed=seed)
        tpg = build_tpg(preprocess(events, workload, 0))
        outcome = execute_tpg(workload.initial_state(), tpg)
        return tpg, outcome

    def test_committed_op_costs_more_than_aborted(self, tp):
        tpg, outcome = self._setup(tp, n=400)
        assert outcome.aborted, "fixture must produce aborts"
        committed_op = next(
            op for op in tpg.ops if op.txn_id not in outcome.aborted
        )
        aborted_op = next(
            op
            for op in tpg.ops
            if op.txn_id in outcome.aborted
            and op.uid != tpg.validator_uid[op.txn_id]
        )
        assert op_cost(committed_op, tpg, outcome, DEFAULT_COSTS) > op_cost(
            aborted_op, tpg, outcome, DEFAULT_COSTS
        )

    def test_tasks_one_per_op_plus_abort_tasks(self, tp):
        tpg, outcome = self._setup(tp, n=400)
        tasks = build_op_tasks(
            tpg, outcome, DEFAULT_COSTS, hash_worker_of(4)
        )
        assert len(tasks) == len(tpg.ops) + len(outcome.aborted)

    def test_abort_tasks_use_negative_uids_and_abort_bucket(self, tp):
        tpg, outcome = self._setup(tp, n=400)
        tasks = build_op_tasks(tpg, outcome, DEFAULT_COSTS, hash_worker_of(4))
        abort_tasks = [t for t in tasks if t.uid < 0]
        assert len(abort_tasks) == len(outcome.aborted)
        assert all(t.bucket == "abort" for t in abort_tasks)

    def test_charge_aborts_off_emits_no_abort_tasks(self, tp):
        tpg, outcome = self._setup(tp, n=400)
        tasks = build_op_tasks(
            tpg, outcome, DEFAULT_COSTS, hash_worker_of(4), charge_aborts=False
        )
        assert all(t.uid >= 0 for t in tasks)

    def test_tasks_in_topological_order(self, sl):
        tpg, outcome = self._setup(sl)
        tasks = build_op_tasks(tpg, outcome, DEFAULT_COSTS, hash_worker_of(4))
        seen = set()
        for task in tasks:
            assert all(d in seen for d in task.deps), task
            seen.add(task.uid)

    def test_dropping_pd_and_ld_removes_cross_txn_edges(self, sl):
        tpg, outcome = self._setup(sl)
        tasks = build_op_tasks(
            tpg,
            outcome,
            DEFAULT_COSTS,
            hash_worker_of(4),
            include_pd=False,
            include_ld=False,
            charge_aborts=False,
        )
        td_edges = set(tpg.td_prev.items())
        for task in tasks:
            for dep in task.deps:
                assert (task.uid, dep) in td_edges

    def test_aborted_ops_have_no_pd_deps(self, tp):
        tpg, outcome = self._setup(tp, n=400)
        tasks = build_op_tasks(tpg, outcome, DEFAULT_COSTS, hash_worker_of(4))
        by_uid = {t.uid: t for t in tasks if t.uid >= 0}
        for op in tpg.ops:
            if op.txn_id not in outcome.aborted:
                continue
            if op.uid == tpg.validator_uid[op.txn_id]:
                continue
            allowed = {tpg.validator_uid[op.txn_id]}
            prev = tpg.td_prev.get(op.uid)
            if prev is not None:
                allowed.add(prev)
            assert set(by_uid[op.uid].deps) <= allowed

    def test_explore_extra_added_per_dependency(self, sl):
        tpg, outcome = self._setup(sl)
        tasks = build_op_tasks(
            tpg,
            outcome,
            DEFAULT_COSTS,
            hash_worker_of(4),
            explore_per_dep=1e-6,
            charge_aborts=False,
        )
        for task in tasks:
            explore = sum(s for b, s in task.extra if b == "explore")
            assert explore == pytest.approx(1e-6 * len(task.deps))
