"""Per-scheme recovery: state equivalence plus scheme-specific traits."""

from __future__ import annotations

import pytest

from repro import buckets
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.dlog import STREAM as DL_STREAM
from repro.ft.lsnvector import LSNVector
from repro.ft.lsnvector import STREAM as LV_STREAM
from repro.ft.wal import STREAM as WAL_STREAM
from repro.ft.wal import WriteAheadLog
from tests.conftest import serial_ground_truth

SCHEMES = [GlobalCheckpoint, WriteAheadLog, DependencyLogging, LSNVector]
#: epoch_len 50, snapshot every 3, 7 epochs -> snapshot at 5, replay 6.
RUN = dict(num_workers=4, epoch_len=50, snapshot_interval=3)
N_EVENTS = 350


def run_cycle(scheme_cls, workload, seed=0, **kwargs):
    events = workload.generate(N_EVENTS, seed=seed)
    scheme = scheme_cls(workload, **{**RUN, **kwargs})
    runtime = scheme.process_stream(events)
    scheme.crash()
    recovery = scheme.recover()
    expected, _txns, outcome = serial_ground_truth(workload, events)
    return scheme, runtime, recovery, expected, outcome


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_state_recovered_exactly(self, workload, scheme_cls):
        scheme, _rt, recovery, expected, _outcome = run_cycle(
            scheme_cls, workload
        )
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert recovery.events_replayed == 50

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_outputs_exactly_once(self, workload, scheme_cls):
        scheme, _rt, _rec, _expected, outcome = run_cycle(scheme_cls, workload)
        delivered = scheme.sink.outputs()
        assert len(delivered) == N_EVENTS
        expected_outputs = {
            seq: scheme.workload.output_for(
                txn, txn.txn_id not in outcome.aborted, outcome.op_values
            )
            for seq, txn in (
                (t.event.seq, t)
                for t in serial_ground_truth(
                    scheme.workload, scheme.workload.generate(N_EVENTS, seed=0)
                )[1]
            )
        }
        assert delivered == expected_outputs

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_repeatable_across_runs(self, gs, scheme_cls):
        _s1, rt1, rec1, _e1, _o1 = run_cycle(scheme_cls, gs)
        _s2, rt2, rec2, _e2, _o2 = run_cycle(scheme_cls, gs)
        assert rt1.elapsed_seconds == rt2.elapsed_seconds
        assert rec1.elapsed_seconds == rec2.elapsed_seconds


class TestWAL:
    def test_logs_committed_commands_only(self, tp):
        events = tp.generate(N_EVENTS, seed=0)
        scheme = WriteAheadLog(tp, **RUN)
        scheme.process_stream(events)
        _expected, _txns, outcome = serial_ground_truth(tp, events)
        assert outcome.aborted, "fixture must produce aborts"
        # Older epochs were garbage-collected at the last checkpoint;
        # inspect the surviving segment (epoch 6).
        records, _io = scheme.disk.logs.read_epoch(WAL_STREAM, 6)
        epoch6_seqs = {e.seq for e in events[300:350]}
        committed6 = epoch6_seqs - outcome.aborted
        assert {raw[0] for raw in records} == committed6

    def test_redo_is_sequential(self, sl):
        scheme, _rt, recovery, _expected, _outcome = run_cycle(
            WriteAheadLog, sl
        )
        # All redo execution happens on core 0; the others only wait,
        # so per-core average wait dominates execute.
        assert recovery.buckets[buckets.WAIT] > recovery.buckets[buckets.EXECUTE]

    def test_reload_includes_global_sort(self, sl):
        _s, _rt, recovery, _e, _o = run_cycle(WriteAheadLog, sl)
        ckpt_recovery = run_cycle(GlobalCheckpoint, sl)[2]
        assert recovery.buckets[buckets.RELOAD] > ckpt_recovery.buckets[buckets.RELOAD]


class TestDL:
    def test_log_records_carry_operation_edges(self, sl):
        events = sl.generate(N_EVENTS, seed=0)
        scheme = DependencyLogging(sl, **RUN)
        scheme.process_stream(events)
        records, _io = scheme.disk.logs.read_epoch(DL_STREAM, 6)
        assert records
        total_edges = sum(
            len(ins) + len(outs)
            for _cmd, op_records in records
            for ins, outs in op_records
        )
        assert total_edges > 0

    def test_recovery_pays_graph_reconstruction(self, sl):
        _s, _rt, recovery, _e, _o = run_cycle(DependencyLogging, sl)
        ckpt_recovery = run_cycle(GlobalCheckpoint, sl)[2]
        assert (
            recovery.buckets[buckets.CONSTRUCT]
            > ckpt_recovery.buckets[buckets.CONSTRUCT]
        )

    def test_runtime_tracks_dependencies(self, sl):
        events = sl.generate(N_EVENTS, seed=0)
        scheme = DependencyLogging(sl, **RUN)
        report = scheme.process_stream(events)
        assert report.buckets.get(buckets.TRACK, 0.0) > 0


class TestLV:
    def test_vectors_have_one_entry_per_stream(self, sl):
        events = sl.generate(N_EVENTS, seed=0)
        scheme = LSNVector(sl, **RUN)
        scheme.process_stream(events)
        records, _io = scheme.disk.logs.read_epoch(LV_STREAM, 6)
        for _cmd, vector in records:
            assert len(vector) == RUN["num_workers"]

    def test_vector_entries_point_to_earlier_positions(self, sl):
        events = sl.generate(N_EVENTS, seed=0)
        scheme = LSNVector(sl, **RUN)
        scheme.process_stream(events)
        records, _io = scheme.disk.logs.read_epoch(LV_STREAM, 6)
        # Positions referenced never exceed the stream lengths.
        stream_len = [0] * RUN["num_workers"]
        from repro.engine.events import Event
        from repro.engine.execution import preprocess

        for cmd, vector in records:
            event = Event.from_encoded(cmd)
            txn = preprocess([event], scheme.workload, 0)[0]
            stream = scheme.worker_of_txn(txn)
            for entry in vector:
                assert entry < N_EVENTS
            stream_len[stream] += 1

    def test_recovery_explore_dominated_by_vector_checks(self, sl):
        _s, _rt, recovery, _e, _o = run_cycle(LSNVector, sl)
        assert recovery.buckets.get(buckets.EXPLORE, 0.0) > 0


class TestCKPT:
    def test_no_log_records_at_runtime(self, sl):
        events = sl.generate(N_EVENTS, seed=0)
        scheme = GlobalCheckpoint(sl, **RUN)
        report = scheme.process_stream(events)
        assert report.bytes_logged == 0
        assert report.buckets.get(buckets.TRACK, 0.0) == 0.0

    def test_recovery_reprocesses_aborts(self, tp):
        _s, _rt, recovery, _e, outcome = run_cycle(GlobalCheckpoint, tp)
        assert outcome.aborted
        assert recovery.buckets.get(buckets.ABORT, 0.0) > 0
