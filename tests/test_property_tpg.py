"""Property tests: TPG structural invariants over arbitrary shapes."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.execution import preprocess
from repro.engine.tpg import build_tpg
from repro.workloads.synthetic import SyntheticWorkload


def _tpg(seed, max_ops, num_tables, condition_ratio, skew):
    workload = SyntheticWorkload(
        64,
        num_tables=num_tables,
        max_ops=max_ops,
        condition_ratio=condition_ratio,
        skew=skew,
        num_partitions=3,
    )
    events = workload.generate(120, seed=seed)
    return build_tpg(preprocess(events, workload, 0))


TPG_PARAMS = dict(
    seed=st.integers(0, 5000),
    max_ops=st.integers(1, 5),
    num_tables=st.integers(1, 3),
    condition_ratio=st.floats(0.0, 1.0),
    skew=st.floats(0.0, 0.95),
)


@given(**TPG_PARAMS)
@settings(max_examples=60, deadline=None)
def test_property_chains_partition_operations(seed, max_ops, num_tables, condition_ratio, skew):
    tpg = _tpg(seed, max_ops, num_tables, condition_ratio, skew)
    chained = [op.uid for chain in tpg.chains.values() for op in chain]
    assert sorted(chained) == sorted(op.uid for op in tpg.ops)
    for ref, chain in tpg.chains.items():
        assert all(op.ref == ref for op in chain)
        timestamps = [op.ts for op in chain]
        assert timestamps == sorted(timestamps)


@given(**TPG_PARAMS)
@settings(max_examples=60, deadline=None)
def test_property_all_edges_point_strictly_backwards(seed, max_ops, num_tables, condition_ratio, skew):
    tpg = _tpg(seed, max_ops, num_tables, condition_ratio, skew)
    for op in tpg.ops:
        prev = tpg.td_prev.get(op.uid)
        if prev is not None:
            assert tpg.op_by_uid[prev].ts < op.ts
        for _ref, src in tpg.pd_sources[op.uid]:
            if src is not None:
                assert tpg.op_by_uid[src].ts < op.ts
    for txn_id, sources in tpg.cond_sources.items():
        txn = tpg.txn_by_id[txn_id]
        for _ref, src in sources:
            if src is not None:
                assert tpg.op_by_uid[src].ts < txn.ts


@given(**TPG_PARAMS)
@settings(max_examples=60, deadline=None)
def test_property_pd_source_is_latest_earlier_writer(seed, max_ops, num_tables, condition_ratio, skew):
    tpg = _tpg(seed, max_ops, num_tables, condition_ratio, skew)
    for op in tpg.ops:
        for ref, src in tpg.pd_sources[op.uid]:
            earlier_writers = [
                candidate.uid
                for candidate in tpg.chains.get(ref, [])
                if candidate.ts < op.ts
            ]
            expected = earlier_writers[-1] if earlier_writers else None
            assert src == expected


@given(**TPG_PARAMS)
@settings(max_examples=40, deadline=None)
def test_property_edge_counts_match_structure(seed, max_ops, num_tables, condition_ratio, skew):
    tpg = _tpg(seed, max_ops, num_tables, condition_ratio, skew)
    counts = tpg.edge_counts()
    assert counts["td"] == sum(
        len(chain) - 1 for chain in tpg.chains.values()
    )
    assert counts["ld"] == sum(len(t.ops) - 1 for t in tpg.txns)
    pd = sum(
        1
        for op in tpg.ops
        for _ref, src in tpg.pd_sources[op.uid]
        if src is not None
    ) + sum(
        1
        for sources in tpg.cond_sources.values()
        for _ref, src in sources
        if src is not None
    )
    assert counts["pd"] == pd


@given(**TPG_PARAMS)
@settings(max_examples=40, deadline=None)
def test_property_dependencies_are_self_free_and_unique(seed, max_ops, num_tables, condition_ratio, skew):
    tpg = _tpg(seed, max_ops, num_tables, condition_ratio, skew)
    for op in tpg.ops:
        deps = tpg.dependencies(op)
        assert op.uid not in deps
        assert len(deps) == len(set(deps))
