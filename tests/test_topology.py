"""Multi-operator topology: group commit and cross-stage recovery."""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.errors import ConfigError, RecoveryError, WorkloadError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector
from repro.ft.native import Native
from repro.ft.wal import WriteAheadLog
from repro.topology import (
    FeeAccountingStage,
    LedgerStage,
    TopologyEngine,
    topology_ground_truth,
    verify_topology,
)

SCHEMES = [GlobalCheckpoint, WriteAheadLog, DependencyLogging, LSNVector, MorphStreamR]
RUN = dict(num_workers=4, epoch_len=100, snapshot_interval=3)


def make_stages():
    return [
        LedgerStage(
            128,
            transfer_ratio=0.7,
            multi_partition_ratio=0.4,
            skew=0.5,
            num_partitions=4,
        ),
        FeeAccountingStage(32, num_partitions=4),
    ]


class TestRuntime:
    def test_events_flow_through_both_stages(self):
        stages = make_stages()
        topo = TopologyEngine(stages, GlobalCheckpoint, **RUN)
        events = stages[0].generate(500, seed=1)
        report = topo.process_stream(events)
        assert report.events_processed == 500
        assert report.stage_event_counts[0] == 500
        # Deposits and aborted transfers are filtered out upstream.
        assert 0 < report.stage_event_counts[1] < 500

    def test_stage_states_match_chained_serial_execution(self):
        stages = make_stages()
        topo = TopologyEngine(stages, GlobalCheckpoint, **RUN)
        events = stages[0].generate(500, seed=1)
        topo.process_stream(events)
        gt_stores, _outputs = topology_ground_truth(make_stages(), events)
        assert topo.stage_store(0).equals(gt_stores[0])
        assert topo.stage_store(1).equals(gt_stores[1])

    def test_only_ingress_persists_events(self):
        stages = make_stages()
        topo = TopologyEngine(stages, WriteAheadLog, **RUN)
        topo.process_stream(stages[0].generate(300, seed=0))
        assert topo.ingress.events.bytes_stored >= 0
        for scheme in topo.schemes:
            assert scheme.disk.events.bytes_stored == 0

    def test_forwarded_events_must_preserve_sequence(self):
        class BadStage(FeeAccountingStage):
            def emit_from_output(self, seq, output):
                return Event(seq + 1, "invoice", (1.0,))

        stages = [make_stages()[0], BadStage(32, num_partitions=4)]
        # BadStage is terminal here, so wire it first to trigger a
        # forward: use it as stage 1 feeding the fee stage.
        topo = TopologyEngine(
            [stages[0], BadStage(32, num_partitions=4), FeeAccountingStage(32, num_partitions=4)],
            GlobalCheckpoint,
            **RUN,
        )
        with pytest.raises((ConfigError, WorkloadError)):
            topo.process_stream(stages[0].generate(100, seed=0))

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigError):
            TopologyEngine([], GlobalCheckpoint, **RUN)

    def test_fee_stage_cannot_generate(self):
        with pytest.raises(WorkloadError):
            FeeAccountingStage(8).generate(10)


class TestRecovery:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_chain_recovers_exactly(self, scheme_cls):
        stages = make_stages()
        topo = TopologyEngine(stages, scheme_cls, **RUN)
        events = stages[0].generate(700, seed=5)
        topo.process_stream(events)
        topo.crash()
        report = topo.recover()
        assert report.events_replayed == 100  # epochs 6 of 7; snap at 5
        gt_stores, gt_outputs = topology_ground_truth(make_stages(), events)
        assert topo.stage_store(0).equals(gt_stores[0])
        assert topo.stage_store(1).equals(gt_stores[1])
        assert topo.sink.outputs() == gt_outputs[1]
        assert topo.stage_sink(0).outputs() == gt_outputs[0]

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_processing_resumes_after_recovery(self, scheme_cls):
        stages = make_stages()
        topo = TopologyEngine(stages, scheme_cls, **RUN)
        events = stages[0].generate(800, seed=2)
        topo.process_stream(events[:500])
        topo.crash()
        topo.recover()
        topo.process_stream(events[500:])
        gt_stores, gt_outputs = topology_ground_truth(make_stages(), events)
        assert topo.stage_store(0).equals(gt_stores[0])
        assert topo.stage_store(1).equals(gt_stores[1])
        assert topo.sink.outputs() == gt_outputs[1]

    def test_pending_tail_survives_topology_crash(self):
        stages = make_stages()
        topo = TopologyEngine(stages, GlobalCheckpoint, **RUN)
        events = stages[0].generate(350, seed=3)  # 3 epochs + 50 pending
        topo.process_stream(events)
        topo.crash()
        topo.recover()
        assert len(topo._pending_events) == 50

    def test_native_topology_cannot_recover(self):
        stages = make_stages()
        topo = TopologyEngine(stages, Native, **RUN)
        topo.process_stream(stages[0].generate(300, seed=0))
        topo.crash()
        with pytest.raises(RecoveryError):
            topo.recover()

    def test_crash_before_processing_rejected(self):
        topo = TopologyEngine(make_stages(), GlobalCheckpoint, **RUN)
        with pytest.raises(RecoveryError):
            topo.crash()

    def test_recover_without_crash_rejected(self):
        topo = TopologyEngine(make_stages(), GlobalCheckpoint, **RUN)
        topo.process_stream(make_stages()[0].generate(300, seed=0))
        with pytest.raises(RecoveryError):
            topo.recover()

    def test_msr_topology_recovers_faster_than_ckpt(self):
        results = {}
        for scheme_cls in (GlobalCheckpoint, MorphStreamR):
            stages = make_stages()
            topo = TopologyEngine(stages, scheme_cls, **RUN)
            topo.process_stream(stages[0].generate(700, seed=5))
            topo.crash()
            results[scheme_cls.__name__] = topo.recover().elapsed_seconds
        assert results["MorphStreamR"] < results["GlobalCheckpoint"]
