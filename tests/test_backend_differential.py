"""Differential suite: sim vs real backend, bit-for-bit.

Every FT scheme × three workloads × seeded crash points runs the same
crash-recovery cycle on both execution backends; the recovered state
must be identical to the serial ground truth (and hence to each other),
outputs must be delivered exactly once, and the real backend's chain
assignment must be deterministic given the same seed.
"""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector, LSNVectorCompressed
from repro.ft.pacman import WALPacman
from repro.ft.wal import WriteAheadLog
from repro.harness.runner import ground_truth
from repro.sim.executor import WorkerFault
from repro.workloads.grep_sum import GrepSum
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.toll_processing import TollProcessing

SCHEMES = {
    "CKPT": GlobalCheckpoint,
    "WAL": WriteAheadLog,
    "PACMAN": WALPacman,
    "DL": DependencyLogging,
    "LV": LSNVector,
    "LVC": LSNVectorCompressed,
    "MSR": MorphStreamR,
}

WORKLOADS = {
    "SL": lambda: StreamingLedger(
        128,
        transfer_ratio=0.5,
        multi_partition_ratio=0.3,
        skew=0.6,
        forced_abort_ratio=0.05,
        num_partitions=4,
    ),
    "GS": lambda: GrepSum(
        128,
        list_len=4,
        skew=0.9,
        multi_partition_ratio=0.5,
        abort_ratio=0.1,
        num_partitions=4,
    ),
    "TP": lambda: TollProcessing(64, skew=0.6, num_partitions=4),
}

#: seeded crash points: epochs lost past the last checkpoint.
CRASH_POINTS = (1, 2)

EPOCH_LEN = 32
SNAPSHOT_INTERVAL = 3
NUM_WORKERS = 2


def run_cycle(
    scheme_name,
    workload_name,
    *,
    backend,
    recover_epochs,
    seed=7,
    faults=(),
):
    """One process → crash → recover cycle; returns (scheme, report, truth)."""
    workload = WORKLOADS[workload_name]()
    events = workload.generate(
        EPOCH_LEN * (SNAPSHOT_INTERVAL + recover_epochs), seed
    )
    scheme = SCHEMES[scheme_name](
        workload,
        num_workers=NUM_WORKERS,
        epoch_len=EPOCH_LEN,
        snapshot_interval=SNAPSHOT_INTERVAL,
        backend=backend,
        recovery_faults=list(faults),
    )
    scheme.process_stream(events)
    scheme.crash()
    report = scheme.recover()
    truth_state, truth_outputs = ground_truth(workload, events)
    return scheme, report, truth_state, truth_outputs


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("recover_epochs", CRASH_POINTS)
def test_real_matches_sim_and_ground_truth(
    scheme_name, workload_name, recover_epochs
):
    """The full matrix: both backends land on the serial ground truth."""
    sim_scheme, sim_report, truth_state, truth_outputs = run_cycle(
        scheme_name, workload_name, backend="sim",
        recover_epochs=recover_epochs,
    )
    real_scheme, real_report, _, _ = run_cycle(
        scheme_name, workload_name, backend="real",
        recover_epochs=recover_epochs,
    )
    # Bit-identical final state: real == sim == serial ground truth.
    assert sim_scheme.store.equals(truth_state), sim_scheme.store.diff(
        truth_state
    )
    assert real_scheme.store.equals(truth_state), real_scheme.store.diff(
        truth_state
    )
    assert real_scheme.store.equals(sim_scheme.store)
    # Exactly-once outputs on both backends.
    assert sim_scheme.sink.outputs() == truth_outputs
    assert real_scheme.sink.outputs() == truth_outputs
    # Virtual accounting is backend-independent (the real backend rides
    # on the same virtual replay), so reports stay comparable.
    assert real_report.elapsed_seconds == pytest.approx(
        sim_report.elapsed_seconds
    )
    assert real_report.epochs_replayed == sim_report.epochs_replayed
    # The real report carries its own execution evidence.
    assert real_report.backend == "real"
    assert sim_report.backend == "sim"
    assert real_report.real_groups > 0
    assert real_report.real_wall_seconds > 0.0
    assert real_report.real_assignments


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_chain_assignment_deterministic_across_runs(scheme_name):
    """Same seed ⇒ identical (round, group, worker) assignment log."""
    first_scheme, first_report, truth_state, _ = run_cycle(
        scheme_name, "GS", backend="real", recover_epochs=2
    )
    second_scheme, second_report, _, _ = run_cycle(
        scheme_name, "GS", backend="real", recover_epochs=2
    )
    assert first_report.real_assignments == second_report.real_assignments
    assert first_report.real_groups == second_report.real_groups
    assert first_scheme.store.equals(second_scheme.store)
    assert first_scheme.store.equals(truth_state)


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_worker_death_differential(scheme_name):
    """A real worker death re-assigns chains and still recovers exactly.

    Worker 0 always holds work on every scheme (WAL's sequential-redo
    plan is a single group, LPT-assigned to the lowest worker), so its
    death is guaranteed observable.
    """
    faults = [WorkerFault(worker=0, kind="die", at_seconds=0.0)]
    scheme, report, truth_state, truth_outputs = run_cycle(
        scheme_name, "GS", backend="real", recover_epochs=2, faults=faults
    )
    assert scheme.store.equals(truth_state), scheme.store.diff(truth_state)
    assert scheme.sink.outputs() == truth_outputs
    assert report.dead_workers == (0,)
    assert report.reassign_rounds >= 1
    assert report.tasks_reassigned > 0


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_worker_straggle_differential(scheme_name):
    """A straggler slows the real executor but never changes the result."""
    faults = [
        WorkerFault(worker=0, kind="straggle", at_seconds=0.0, slowdown=4.0)
    ]
    scheme, report, truth_state, _ = run_cycle(
        scheme_name, "GS", backend="real", recover_epochs=1, faults=faults
    )
    assert scheme.store.equals(truth_state)
    assert report.dead_workers == ()
    assert report.reassign_rounds == 0


def test_fault_assignment_log_deterministic():
    """Death handling is deterministic too: identical reassignment log."""
    faults = [WorkerFault(worker=0, kind="die", at_seconds=0.0)]
    _, first, _, _ = run_cycle(
        "CKPT", "GS", backend="real", recover_epochs=2, faults=faults
    )
    _, second, _, _ = run_cycle(
        "CKPT", "GS", backend="real", recover_epochs=2, faults=faults
    )
    assert first.real_assignments == second.real_assignments
    assert first.dead_workers == second.dead_workers == (0,)
