"""Command-line interface: every subcommand, every figure renderer."""

from __future__ import annotations

import json

import pytest

from repro.cli import FIGURES, main

#: A soak cell small enough for unit tests, with targets the tiny run
#: can meet (short runs spend a large fraction of their virtual time in
#: outage, so the default 99.5% availability target would always trip).
TINY_SOAK = [
    "soak",
    "--keys", "128",
    "--epoch-len", "32",
    "--epochs", "8",
    "--crashes", "1",
    "--workers", "2",
    "--snapshot-interval", "3",
    "--seed", "11",
    "--slo-availability", "0.2",
    "--slo-p99", "10",
    "--slo-p999", "60",
    "--slo-mttr", "60",
]


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("SL", "GS", "TP", "NAT", "CKPT", "WAL", "DL", "LV", "MSR"):
            assert name in out
        for figure in FIGURES:
            assert figure in out


class TestRun:
    def test_run_default_experiment(self, capsys):
        code = main(
            [
                "run",
                "--workload", "GS",
                "--scheme", "MSR",
                "--workers", "3",
                "--epoch-len", "50",
                "--snapshot-interval", "3",
                "--recover-epochs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime phase" in out
        assert "recovery phase" in out
        assert "state verified against serial ground truth: OK" in out

    def test_run_native_has_no_recovery(self, capsys):
        code = main(
            [
                "run",
                "--scheme", "NAT",
                "--workers", "2",
                "--epoch-len", "50",
                "--snapshot-interval", "3",
                "--recover-epochs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "does not support recovery" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "NOPE"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "XX"])


class TestFigure:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_every_figure_renders_quick(self, name, capsys):
        assert main(["figure", name, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "reproducing" in out
        assert any(
            header in out for header in ("scheme", "regime", "app", "ratio")
        )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    @pytest.mark.parametrize("name", ["fig2", "fig12c", "fig14c"])
    def test_plot_renders_chart(self, name, capsys):
        assert main(["figure", name, "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "█" in out or "+----" in out or "|" in out


class TestSoak:
    def test_tiny_soak_meets_slo_and_exits_zero(self, capsys):
        assert main(TINY_SOAK) == 0
        out = capsys.readouterr().out
        assert "SLO met" in out
        assert "verified, met their" in out

    def test_slo_breach_exits_nonzero(self, capsys):
        args = [a for a in TINY_SOAK]
        args[args.index("--slo-p99") + 1] = "0.000000001"
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "SLO BREACH" in out
        assert "soak: FAILURE" in out

    def test_json_export_to_stdout(self, capsys):
        assert main(TINY_SOAK + ["--json", "-"]) == 0
        out = capsys.readouterr().out
        doc, _trailing = json.JSONDecoder().raw_decode(out[out.index("{"):])
        assert doc["schema"] == "repro.soak/v1"
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert run["ok"] is True
        assert run["metrics"]["rpo_events"] == 0
        assert run["verification"]["degraded_reads"] is True

    def test_bench_gate_seeds_then_catches_regression(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_soak.json"
        args = TINY_SOAK + ["--bench", str(bench)]
        assert main(args + ["--update-bench"]) == 0
        out = capsys.readouterr().out
        assert "no committed baseline" in out
        assert bench.exists()
        # Re-run against its own record: bit-identical, gate OK.
        assert main(args) == 0
        assert "gate OK" in capsys.readouterr().out
        # Tamper the baseline to claim 10x the throughput: the same run
        # now reads as a regression and the exit code goes red.
        doc = json.loads(bench.read_text())
        doc["records"][-1]["metrics"]["throughput_eps"] *= 10
        bench.write_text(json.dumps(doc))
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        assert "soak: FAILURE" in out

    def test_update_bench_requires_bench(self, capsys):
        assert main(["soak", "--smoke", "--update-bench"]) == 2
        assert "--update-bench requires --bench" in capsys.readouterr().out


class TestRecover:
    QUICK = [
        "recover",
        "--workload", "GS",
        "--scheme", "MSR",
        "--workers", "2",
        "--epoch-len", "32",
        "--snapshot-interval", "3",
        "--recover-epochs", "2",
    ]

    def test_sim_backend_happy_path(self, capsys):
        assert main(self.QUICK + ["--backend", "sim"]) == 0
        out = capsys.readouterr().out
        assert "sim backend" in out
        assert "state verified against serial ground truth: OK" in out
        assert "chain groups shipped" not in out

    def test_real_backend_happy_path(self, capsys):
        assert main(self.QUICK + ["--backend", "real"]) == 0
        out = capsys.readouterr().out
        assert "real backend" in out
        assert "chain groups shipped" in out
        assert "wall-clock group execution" in out
        assert "state verified against serial ground truth: OK" in out

    def test_zero_workers_fails_with_backend_exit_code(self, capsys):
        code = main(self.QUICK[:3] + ["--backend", "real", "--workers", "0"])
        assert code == 3
        out = capsys.readouterr().out
        assert "backend error" in out
        assert "worker count must be >= 1" in out

    def test_unsupported_platform_fails_loudly(self, capsys, monkeypatch):
        # The CLI resolves the probe via the package namespace at call
        # time, so patching it there simulates an unsupported host.
        import repro.real

        monkeypatch.setattr(
            repro.real,
            "real_backend_unavailable_reason",
            lambda: "no multiprocessing on this platform",
        )
        code = main(self.QUICK + ["--backend", "real"])
        assert code == 3
        out = capsys.readouterr().out
        assert "real execution backend unsupported" in out
        assert "no multiprocessing on this platform" in out

    def test_sim_backend_ignores_platform_support(self, capsys, monkeypatch):
        import repro.real

        monkeypatch.setattr(
            repro.real,
            "real_backend_unavailable_reason",
            lambda: "no multiprocessing on this platform",
        )
        assert main(self.QUICK + ["--backend", "sim"]) == 0

    def test_bad_bench_workers_is_usage_error(self, tmp_path, capsys):
        code = main(
            self.QUICK
            + ["--bench", str(tmp_path / "b.json"), "--bench-workers", "1,x"]
        )
        assert code == 2
        assert "CSV of ints" in capsys.readouterr().out

    def test_zero_bench_workers_is_backend_error(self, tmp_path, capsys):
        code = main(
            self.QUICK
            + ["--bench", str(tmp_path / "b.json"), "--bench-workers", "0,2"]
        )
        assert code == 3
        assert "must all be >= 1" in capsys.readouterr().out


class TestChaosGates:
    def test_scheme_subset_and_mttr_slo(self, capsys):
        code = main(
            ["chaos", "--smoke", "--schemes", "MSR", "--no-cluster",
             "--max-mttr", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTR digest" in out
        assert "within --max-mttr" in out
        assert " WAL " not in out
        assert "0 cluster-kill cells" in out

    def test_mttr_breach_exits_nonzero(self, capsys):
        code = main(
            ["chaos", "--smoke", "--schemes", "MSR", "--no-cluster",
             "--max-mttr", "0.000001"]
        )
        assert code == 1
        assert "MTTR SLO BREACH" in capsys.readouterr().out

    def test_unknown_scheme_subset_rejected(self, capsys):
        assert main(["chaos", "--smoke", "--schemes", "MSR,BOGUS"]) == 2
        assert "unknown scheme(s): BOGUS" in capsys.readouterr().out


TINY_CHECK = [
    "check", "--schemes", "CKPT", "--no-cluster",
    "--budget", "12", "--max-depth", "1",
]


class TestCheckCommand:
    def test_clean_exploration_exits_zero(self, capsys, tmp_path):
        code = main(TINY_CHECK + ["--repro-dir", str(tmp_path / "repros")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "satisfy all" in out
        assert "registered recovery crash points fired" in out
        assert not list((tmp_path / "repros").glob("*.json")) \
            if (tmp_path / "repros").exists() else True

    def test_json_export_is_schema_tagged(self, capsys):
        assert main(TINY_CHECK + ["--json", "-"]) == 0
        out = capsys.readouterr().out
        payload, _end = json.JSONDecoder().raw_decode(out[out.index("{"):])
        assert payload["schema"] == "repro.check.report/v1"
        assert payload["passed"] is True
        assert payload["coverage"]

    def test_unknown_scheme_is_usage_error(self, capsys):
        assert main(["check", "--schemes", "CKPT,BOGUS"]) == 2
        assert "unknown scheme(s): BOGUS" in capsys.readouterr().out

    def test_unreadable_replay_file_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["check", "--replay", str(missing)]) == 2
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert main(["check", "--replay", str(garbled)]) == 2

    def test_mutation_found_shrunk_and_replayed(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHECK_MUTATION", "skip-ladder-rung")
        repro_dir = tmp_path / "repros"
        code = main(TINY_CHECK + ["--repro-dir", str(repro_dir)])
        out = capsys.readouterr().out
        assert code == 4, out
        assert "invariant violation(s) found" in out
        assert "Counterexamples (minimized)" in out
        assert "schedule fingerprint" in out
        assert "frontier seed" in out
        repros = sorted(repro_dir.glob("repro-*.json"))
        assert repros, "no repro files written"
        payload = json.loads(repros[0].read_text())
        assert payload["schema"] == "repro.check/v1"
        assert len(payload["schedule"]["atoms"]) <= 2

        # The emitted file re-triggers the same violation...
        assert main(["check", "--replay", str(repros[0])]) == 4
        replay_out = capsys.readouterr().out
        assert payload["fingerprint"] in replay_out

        # ...and comes back clean once the seeded bug is gone.
        monkeypatch.delenv("REPRO_CHECK_MUTATION")
        assert main(["check", "--replay", str(repros[0])]) == 0
        assert "did not reproduce" in capsys.readouterr().out
