"""Command-line interface: every subcommand, every figure renderer."""

from __future__ import annotations

import pytest

from repro.cli import FIGURES, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("SL", "GS", "TP", "NAT", "CKPT", "WAL", "DL", "LV", "MSR"):
            assert name in out
        for figure in FIGURES:
            assert figure in out


class TestRun:
    def test_run_default_experiment(self, capsys):
        code = main(
            [
                "run",
                "--workload", "GS",
                "--scheme", "MSR",
                "--workers", "3",
                "--epoch-len", "50",
                "--snapshot-interval", "3",
                "--recover-epochs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime phase" in out
        assert "recovery phase" in out
        assert "state verified against serial ground truth: OK" in out

    def test_run_native_has_no_recovery(self, capsys):
        code = main(
            [
                "run",
                "--scheme", "NAT",
                "--workers", "2",
                "--epoch-len", "50",
                "--snapshot-interval", "3",
                "--recover-epochs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "does not support recovery" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "NOPE"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "XX"])


class TestFigure:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_every_figure_renders_quick(self, name, capsys):
        assert main(["figure", name, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "reproducing" in out
        assert any(
            header in out for header in ("scheme", "regime", "app", "ratio")
        )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    @pytest.mark.parametrize("name", ["fig2", "fig12c", "fig14c"])
    def test_plot_renders_chart(self, name, capsys):
        assert main(["figure", name, "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "█" in out or "+----" in out or "|" in out
