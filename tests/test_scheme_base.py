"""FTScheme framework: epochs, crash semantics, sink, GC, NAT."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, RecoveryError
from repro.ft.base import OutputSink
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.native import Native


class TestOutputSink:
    def test_exactly_once_dedupe(self):
        sink = OutputSink()
        sink.deliver(1, ("a",))
        sink.deliver(1, ("a",))
        assert len(sink) == 1
        assert sink.duplicates_suppressed == 1

    def test_conflicting_regeneration_raises(self):
        sink = OutputSink()
        sink.deliver(1, ("a",))
        with pytest.raises(RecoveryError):
            sink.deliver(1, ("b",))

    def test_outputs_snapshot_is_a_copy(self):
        sink = OutputSink()
        sink.deliver(1, ("a",))
        out = sink.outputs()
        out[2] = ("b",)
        assert len(sink) == 1


class TestConstruction:
    def test_invalid_parameters_rejected(self, sl):
        with pytest.raises(ConfigError):
            GlobalCheckpoint(sl, num_workers=0)
        with pytest.raises(ConfigError):
            GlobalCheckpoint(sl, epoch_len=0)
        with pytest.raises(ConfigError):
            GlobalCheckpoint(sl, snapshot_interval=0)

    def test_initial_snapshot_taken(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=16)
        assert scheme.disk.snapshots.latest_epoch() == -1


class TestEpochBatching:
    def test_partial_epoch_buffered_until_full(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=100)
        events = sl.generate(200, seed=0)
        report = scheme.process_stream(events[:150])
        assert report.events_processed == 100
        assert report.epochs == 1
        # Feeding the remaining half epoch completes epoch 2.
        report = scheme.process_stream(events[150:])
        assert report.epochs == 2

    def test_event_counters_accumulate(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=50)
        events = sl.generate(200, seed=0)
        scheme.process_stream(events[:100])
        report = scheme.process_stream(events[100:])
        assert report.epochs == 4

    def test_throughput_positive(self, workload):
        scheme = GlobalCheckpoint(workload, num_workers=2, epoch_len=50)
        report = scheme.process_stream(workload.generate(100, seed=0))
        assert report.throughput_eps > 0
        assert report.elapsed_seconds > 0


class TestCrashSemantics:
    def test_crash_before_any_epoch_rejected(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=50)
        with pytest.raises(RecoveryError):
            scheme.crash()

    def test_crash_drops_volatile_state(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=50)
        scheme.process_stream(sl.generate(100, seed=0))
        scheme.crash()
        assert scheme.store is None
        assert scheme.crash_epoch == 1

    def test_processing_after_crash_rejected(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=50)
        scheme.process_stream(sl.generate(100, seed=0))
        scheme.crash()
        with pytest.raises(RecoveryError):
            scheme.process_stream(sl.generate(50, seed=1))

    def test_recover_without_crash_rejected(self, sl):
        scheme = GlobalCheckpoint(sl, num_workers=2, epoch_len=50)
        scheme.process_stream(sl.generate(100, seed=0))
        with pytest.raises(RecoveryError):
            scheme.recover()

    def test_recovery_restores_store_and_clears_crash(self, sl):
        scheme = GlobalCheckpoint(
            sl, num_workers=2, epoch_len=50, snapshot_interval=3
        )
        scheme.process_stream(sl.generate(200, seed=0))
        scheme.crash()
        report = scheme.recover()
        assert scheme.store is not None
        assert report.events_replayed == 50  # epochs 3 (snapshot at 2)
        # Processing can resume after recovery.
        scheme.process_stream(sl.generate(250, seed=0)[200:250])


class TestGarbageCollection:
    def test_old_segments_reclaimed_at_snapshot(self, sl):
        scheme = GlobalCheckpoint(
            sl, num_workers=2, epoch_len=50, snapshot_interval=2
        )
        scheme.process_stream(sl.generate(400, seed=0))
        # Snapshot at epoch 7 reclaimed everything before epoch 8.
        assert scheme.disk.snapshots.latest_epoch() == 7
        assert scheme.disk.events.bytes_stored == 0


class TestNative:
    def test_persists_nothing(self, sl):
        scheme = Native(sl, num_workers=2, epoch_len=50)
        scheme.process_stream(sl.generate(100, seed=0))
        assert scheme.disk.bytes_stored == 0

    def test_recover_unsupported(self, sl):
        scheme = Native(sl, num_workers=2, epoch_len=50)
        scheme.process_stream(sl.generate(100, seed=0))
        scheme.crash()
        with pytest.raises(RecoveryError):
            scheme.recover()

    def test_runtime_is_upper_bound(self, workload):
        native = Native(workload, num_workers=4, epoch_len=50)
        ckpt = GlobalCheckpoint(workload, num_workers=4, epoch_len=50)
        events = workload.generate(200, seed=0)
        nat_report = native.process_stream(events)
        ckpt_report = ckpt.process_stream(events)
        assert nat_report.throughput_eps >= ckpt_report.throughput_eps
