"""Synthetic workload: differential stress of every recovery scheme."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.engine.execution import execute_tpg, preprocess
from repro.engine.tpg import build_tpg
from repro.errors import WorkloadError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector
from repro.ft.wal import WriteAheadLog
from repro.workloads.synthetic import SyntheticWorkload
from tests.conftest import serial_ground_truth

SCHEMES = [
    GlobalCheckpoint,
    WriteAheadLog,
    DependencyLogging,
    LSNVector,
    MorphStreamR,
]


class TestGeneration:
    def test_deterministic(self):
        workload = SyntheticWorkload(64)
        assert workload.generate(50, seed=9) == workload.generate(50, seed=9)

    def test_transactions_are_well_formed(self):
        workload = SyntheticWorkload(
            64, max_ops=4, condition_ratio=0.8, forced_abort_ratio=0.2
        )
        events = workload.generate(200, seed=1)
        txns = preprocess(events, workload, 0)
        shapes = {len(t.ops) for t in txns}
        assert len(shapes) > 1, "shape variety expected"
        assert any(t.conditions for t in txns)
        assert any(len(t.ops) >= 3 for t in txns)

    def test_mixed_outcomes(self):
        workload = SyntheticWorkload(64, condition_ratio=0.8)
        events = workload.generate(400, seed=2)
        _store, txns, outcome = serial_ground_truth(workload, events)
        assert 0 < len(outcome.aborted) < len(txns)

    def test_parallel_execution_matches_serial(self):
        workload = SyntheticWorkload(64, condition_ratio=0.7)
        events = workload.generate(300, seed=3)
        serial_store, _txns, serial_outcome = serial_ground_truth(
            workload, events
        )
        parallel_store = workload.initial_state()
        outcome = execute_tpg(
            parallel_store, build_tpg(preprocess(events, workload, 0))
        )
        assert parallel_store.equals(serial_store)
        assert outcome.aborted == serial_outcome.aborted

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload(4, max_ops=4)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(64, num_tables=0)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(64, condition_ratio=1.5)


@pytest.mark.parametrize("scheme_cls", SCHEMES)
def test_every_scheme_survives_synthetic_shapes(scheme_cls):
    workload = SyntheticWorkload(
        96,
        num_tables=3,
        max_ops=4,
        condition_ratio=0.6,
        forced_abort_ratio=0.1,
        num_partitions=3,
    )
    events = workload.generate(350, seed=4)
    scheme = scheme_cls(
        workload, num_workers=3, epoch_len=50, snapshot_interval=3
    )
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    expected, _txns, _outcome = serial_ground_truth(workload, events)
    assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
    assert len(scheme.sink) == 350


@given(
    seed=st.integers(0, 10_000),
    max_ops=st.integers(1, 5),
    num_tables=st.integers(1, 4),
    condition_ratio=st.floats(0.0, 1.0),
    skew=st.floats(0.0, 0.95),
    scheme_index=st.integers(0, len(SCHEMES) - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_synthetic_recovery(
    seed, max_ops, num_tables, condition_ratio, skew, scheme_index
):
    """Arbitrary transaction shapes: recovery still exact for all schemes."""
    workload = SyntheticWorkload(
        72,
        num_tables=num_tables,
        max_ops=max_ops,
        condition_ratio=condition_ratio,
        skew=skew,
        forced_abort_ratio=0.05,
        num_partitions=3,
    )
    events = workload.generate(220, seed=seed)
    scheme = SCHEMES[scheme_index](
        workload, num_workers=3, epoch_len=40, snapshot_interval=3
    )
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    # 5 epochs of 40 sealed; the last 20 events stay pending.
    expected, _txns, _outcome = serial_ground_truth(workload, events[:200])
    assert scheme.store.equals(expected)
    assert len(scheme.sink) == 200


@given(
    seed=st.integers(0, 10_000),
    selective=st.booleans(),
    pushdown=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_property_msr_options_on_synthetic(seed, selective, pushdown):
    workload = SyntheticWorkload(
        72, max_ops=3, condition_ratio=0.7, forced_abort_ratio=0.15,
        num_partitions=3,
    )
    events = workload.generate(220, seed=seed)
    scheme = MorphStreamR(
        workload,
        num_workers=3,
        epoch_len=40,
        snapshot_interval=3,
        options=MSROptions(
            selective_logging=selective, abort_pushdown=pushdown
        ),
    )
    scheme.process_stream(events)
    scheme.crash()
    scheme.recover()
    # 5 epochs of 40 sealed; the tail stays pending.
    expected, _txns, _outcome = serial_ground_truth(workload, events[:200])
    assert scheme.store.equals(expected)
