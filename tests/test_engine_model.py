"""Engine data model: refs, events, operations, transactions, state."""

from __future__ import annotations

import pytest

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import ConfigError, TransactionError


def _op(uid, txn_id, ts, ref, func="deposit", params=(1.0,), reads=()):
    return Operation(uid, txn_id, ts, ref, func, params, reads)


class TestStateRef:
    def test_encode_round_trip(self):
        ref = StateRef("accounts", 42)
        assert StateRef.from_encoded(ref.encoded()) == ref

    def test_refs_are_hashable_and_ordered(self):
        a, b = StateRef("a", 1), StateRef("a", 2)
        assert len({a, b, StateRef("a", 1)}) == 2
        assert a < b


class TestEvent:
    def test_encode_round_trip(self):
        event = Event(7, "transfer", (1, 2, 3.5, True))
        assert Event.from_encoded(event.encoded()) == event

    def test_payload_normalized_to_tuple(self):
        assert Event.from_encoded((0, "k", [1, 2])).payload == (1, 2)


class TestOperationCondition:
    def test_operation_encode_round_trip(self):
        op = _op(3, 9, 9, StateRef("t", 1), reads=(StateRef("t", 2),))
        assert Operation.from_encoded(op.encoded()) == op

    def test_condition_encode_round_trip(self):
        cond = Condition("ge", (StateRef("t", 1),), (5.0,))
        assert Condition.from_encoded(cond.encoded()) == cond


class TestTransaction:
    def _txn(self, ops, conditions=()):
        return Transaction(0, 0, Event(0, "k", ()), tuple(ops), tuple(conditions))

    def test_validator_is_first_operation(self):
        ops = [_op(0, 0, 0, StateRef("t", 1)), _op(1, 0, 0, StateRef("t", 2))]
        assert self._txn(ops).validator.uid == 0

    def test_empty_transaction_rejected(self):
        with pytest.raises(TransactionError):
            self._txn([])

    def test_duplicate_write_ref_rejected(self):
        ops = [_op(0, 0, 0, StateRef("t", 1)), _op(1, 0, 0, StateRef("t", 1))]
        with pytest.raises(TransactionError):
            self._txn(ops)

    def test_mismatched_timestamp_rejected(self):
        with pytest.raises(TransactionError):
            self._txn([_op(0, 0, 5, StateRef("t", 1))])

    def test_read_set_includes_condition_refs(self):
        cond_ref = StateRef("t", 9)
        ops = [_op(0, 0, 0, StateRef("t", 1), reads=(StateRef("t", 2),))]
        txn = self._txn(ops, [Condition("ge", (cond_ref,), (0.0,))])
        assert txn.read_set() == frozenset({StateRef("t", 2), cond_ref})

    def test_num_state_accesses_counts_reads_writes_and_conditions(self):
        ops = [_op(0, 0, 0, StateRef("t", 1), reads=(StateRef("t", 2),))]
        txn = self._txn(ops, [Condition("ge", (StateRef("t", 3),), (0.0,))])
        assert txn.num_state_accesses() == 3


class TestStateStore:
    def test_get_set(self):
        store = StateStore({"t": {1: 5.0}})
        ref = StateRef("t", 1)
        assert store.get(ref) == 5.0
        store.set(ref, 7.0)
        assert store.get(ref) == 7.0

    def test_missing_record_rejected(self):
        store = StateStore({"t": {1: 5.0}})
        with pytest.raises(TransactionError):
            store.get(StateRef("t", 2))
        with pytest.raises(TransactionError):
            store.set(StateRef("x", 1), 0.0)

    def test_set_cannot_create_records(self):
        store = StateStore({"t": {1: 5.0}})
        with pytest.raises(TransactionError):
            store.set(StateRef("t", 99), 1.0)

    def test_duplicate_table_rejected(self):
        store = StateStore({"t": {}})
        with pytest.raises(ConfigError):
            store.create_table("t")

    def test_snapshot_restore_round_trip(self):
        store = StateStore({"t": {1: 5.0, 2: 6.0}})
        snap = store.snapshot()
        store.set(StateRef("t", 1), 99.0)
        store.restore(snap)
        assert store.get(StateRef("t", 1)) == 5.0

    def test_snapshot_is_deep(self):
        store = StateStore({"t": {1: 5.0}})
        snap = store.snapshot()
        store.set(StateRef("t", 1), 99.0)
        assert snap["t"][1] == 5.0

    def test_copy_is_independent(self):
        store = StateStore({"t": {1: 5.0}})
        other = store.copy()
        other.set(StateRef("t", 1), 0.0)
        assert store.get(StateRef("t", 1)) == 5.0

    def test_equals_exact_and_toleranced(self):
        a = StateStore({"t": {1: 1.0}})
        b = StateStore({"t": {1: 1.0 + 1e-12}})
        assert not a.equals(b)
        assert a.equals(b, tolerance=1e-9)

    def test_equals_detects_structural_differences(self):
        a = StateStore({"t": {1: 1.0}})
        assert not a.equals(StateStore({"t": {1: 1.0, 2: 2.0}}))
        assert not a.equals(StateStore({"u": {1: 1.0}}))

    def test_diff_reports_differing_records(self):
        a = StateStore({"t": {1: 1.0, 2: 2.0}})
        b = StateStore({"t": {1: 1.0, 2: 3.0}})
        differences = a.diff(b)
        assert differences == [(StateRef("t", 2), 2.0, 3.0)]

    def test_num_records_and_refs(self):
        store = StateStore({"a": {1: 0.0}, "b": {1: 0.0, 2: 0.0}})
        assert store.num_records() == 3
        assert len(list(store.refs())) == 3
