"""Calibration battery: the shipped cost model satisfies every claim.

This is the single test that would catch a future miscalibration: it
runs the same claim battery as ``repro calibrate`` at a mid scale large
enough for every claim to manifest.
"""

from __future__ import annotations

import pytest

from repro.harness.calibration import CalibrationCheck, all_hold, run_calibration
from repro.harness.figures import FigureScale

#: Large enough for every claim; small enough for CI.
SCALE = FigureScale(epoch_len=192, snapshot_interval=4, recover_epochs=3)


@pytest.fixture(scope="module")
def checks():
    return run_calibration(SCALE)


def test_battery_covers_the_claim_surface(checks):
    claims = {c.claim for c in checks}
    assert len(claims) == len(checks)  # no duplicate ids
    assert len(claims) >= 15
    # Every evaluation theme is represented.
    for fragment in (
        "msr-fastest-recovery",
        "wal-slowest",
        "ckpt-least-runtime",
        "msr-scales",
        "lv-best-at-uniform",
        "selective-logging",
    ):
        assert any(fragment in claim for claim in claims), fragment


def test_every_check_carries_a_reference_and_detail(checks):
    for check in checks:
        assert isinstance(check, CalibrationCheck)
        assert check.reference
        assert check.detail


def test_shipped_cost_model_satisfies_all_claims(checks):
    failing = [c for c in checks if not c.holds]
    assert all_hold(checks), [
        (c.claim, c.detail) for c in failing
    ]
