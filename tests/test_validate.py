"""Schedule validator: exact diagnoses and end-to-end certification."""

from __future__ import annotations

import pytest

from repro.core.restructure import restructure_operations
from repro.core.shadow import explore_chains
from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.serial import execute_serial
from repro.engine.tpg import build_tpg
from repro.engine.transactions import Transaction
from repro.engine.validate import assert_schedule_valid, is_schedule_valid
from repro.errors import SchedulingError

A, B = StateRef("t", "A"), StateRef("t", "B")


def _two_txn_tpg():
    t0 = Transaction(
        0, 0, Event(0, "w", ()),
        (Operation(0, 0, 0, A, "deposit", (1.0,)),),
    )
    t1 = Transaction(
        1, 1, Event(1, "r", ()),
        (
            Operation(1, 1, 1, B, "credit_from", (1.0,), (A,)),
            Operation(2, 1, 1, A, "deposit", (1.0,)),
        ),
    )
    return build_tpg([t0, t1])


class TestViolations:
    def test_timestamp_order_is_always_valid(self):
        tpg = _two_txn_tpg()
        assert_schedule_valid(list(tpg.ops), tpg)

    def test_td_violation_detected(self):
        tpg = _two_txn_tpg()
        by_uid = tpg.op_by_uid
        order = [by_uid[2], by_uid[0], by_uid[1]]  # op2 before chain prev 0
        with pytest.raises(SchedulingError, match="TD violation"):
            assert_schedule_valid(order, tpg)

    def test_pd_violation_detected(self):
        tpg = _two_txn_tpg()
        by_uid = tpg.op_by_uid
        order = [by_uid[1], by_uid[0], by_uid[2]]  # reader before writer
        with pytest.raises(SchedulingError, match="PD violation"):
            assert_schedule_valid(order, tpg)

    def test_pd_violation_forgiven_when_eliminated(self):
        tpg = _two_txn_tpg()
        by_uid = tpg.op_by_uid
        order = [by_uid[1], by_uid[0], by_uid[2]]
        # TD: op2 after op0 holds; PD ignored (view-resolved).
        assert is_schedule_valid(order, tpg, ignore_pd=True)

    def test_ld_violation_detected(self):
        tpg = _two_txn_tpg()
        by_uid = tpg.op_by_uid
        order = [by_uid[0], by_uid[2], by_uid[1]]  # op2 before validator 1
        with pytest.raises(SchedulingError, match="LD violation"):
            assert_schedule_valid(order, tpg)
        assert is_schedule_valid(order, tpg, ignore_ld=True, ignore_pd=True)

    def test_missing_operation_detected(self):
        tpg = _two_txn_tpg()
        with pytest.raises(SchedulingError, match="never scheduled"):
            assert_schedule_valid(list(tpg.ops)[:-1], tpg)

    def test_duplicate_operation_detected(self):
        tpg = _two_txn_tpg()
        order = list(tpg.ops) + [tpg.ops[0]]
        with pytest.raises(SchedulingError, match="twice"):
            assert_schedule_valid(order, tpg)

    def test_unknown_operation_detected(self):
        tpg = _two_txn_tpg()
        alien = Operation(99, 99, 99, B, "deposit", (1.0,))
        with pytest.raises(SchedulingError):
            assert_schedule_valid(list(tpg.ops) + [alien], tpg)


class TestEndToEnd:
    def test_shadow_exploration_orders_are_certified(self, sl):
        """The order shadow exploration produces is a valid linearization
        of the committed sub-TPG (with PD/LD edges eliminated by views
        and abort pushdown)."""
        events = sl.generate(300, seed=6)
        txns = preprocess(events, sl, 0)
        outcome = execute_serial(sl.initial_state(), txns)
        committed = [t for t in txns if t.txn_id not in outcome.aborted]
        refs = sorted(set().union(*[t.write_set() for t in committed]))
        pmap = {ref: i % 3 for i, ref in enumerate(refs)}
        restructured = restructure_operations(committed, pmap)

        from repro.core.restructure import chains_by_partition

        bundles = chains_by_partition(restructured, pmap, 3)
        order = []
        for bundle in bundles:
            local = {
                op.uid: restructured.local_deps[op.uid]
                for chain in bundle
                for op in chain
                if op.uid in restructured.local_deps
            }
            order.extend(explore_chains(bundle, local).order)
        # Bundle-concatenation order: TDs hold globally; PDs across
        # bundles are view-resolved, LDs eliminated by pushdown.
        assert_schedule_valid(
            order, restructured.tpg, ignore_pd=True, ignore_ld=True
        )
        # And within each bundle, even the local PDs were respected.
        for bundle in bundles:
            bundle_uids = {op.uid for chain in bundle for op in chain}
            position = {op.uid: i for i, op in enumerate(order)}
            for uid in bundle_uids:
                for dep in restructured.local_deps.get(uid, ()):
                    assert position[dep] < position[uid]
