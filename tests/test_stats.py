"""Sweep statistics: speedups, crossovers, scaling efficiency."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.stats import (
    crossover,
    latency_summary,
    monotonic_fraction,
    p50,
    p99,
    p999,
    percentile,
    relative_overhead,
    scaling_efficiency,
    speedup_vs_suboptimal,
    summarize_sweep,
)


class TestPercentile:
    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_exact_on_dense_grid(self):
        values = [float(v) for v in range(101)]
        for p in (0.0, 25.0, 50.0, 99.0, 100.0):
            assert percentile(values, p) == pytest.approx(p)

    def test_order_independent(self):
        shuffled = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert percentile(shuffled, 100.0) == 9.0
        assert percentile(shuffled, 0.0) == 1.0

    def test_single_sample(self):
        assert percentile([7.0], 99.9) == 7.0

    def test_tail_quantiles_distinguish(self):
        # 999 fast samples and one slow one: p99 interpolates near the
        # fast cluster while p999 reaches toward the outlier.
        values = [1.0] * 999 + [100.0]
        assert p50(values) == 1.0
        assert p99(values) == pytest.approx(1.0)
        assert p999(values) > 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            percentile([], 50.0)
        with pytest.raises(ConfigError):
            percentile([1.0], 101.0)
        with pytest.raises(ConfigError):
            percentile([1.0], -0.1)


class TestLatencySummary:
    def test_keys_and_values(self):
        summary = latency_summary([2.0, 4.0])
        assert summary == {
            "count": 2,
            "p50": pytest.approx(3.0),
            "p99": pytest.approx(3.98),
            "p999": pytest.approx(3.998),
            "mean": pytest.approx(3.0),
            "max": 4.0,
        }

    def test_empty_sample_is_zeros(self):
        summary = latency_summary([])
        assert summary["count"] == 0
        assert all(summary[k] == 0.0 for k in ("p50", "p99", "p999", "mean", "max"))


class TestSpeedup:
    def test_against_best_of_the_rest(self):
        totals = {"MSR": 1.0, "CKPT": 3.0, "WAL": 10.0}
        assert speedup_vs_suboptimal(totals, "MSR") == pytest.approx(3.0)

    def test_best_can_actually_be_worse(self):
        totals = {"MSR": 4.0, "CKPT": 2.0}
        assert speedup_vs_suboptimal(totals, "MSR") == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            speedup_vs_suboptimal({"MSR": 1.0}, "MSR")
        with pytest.raises(ConfigError):
            speedup_vs_suboptimal({"A": 1.0, "B": 2.0}, "C")
        with pytest.raises(ConfigError):
            speedup_vs_suboptimal({"A": 0.0, "B": 2.0}, "A")


class TestCrossover:
    def test_interpolated_crossing(self):
        a = [(0.0, 0.0), (1.0, 2.0)]
        b = [(0.0, 1.0), (1.0, 1.0)]
        assert crossover(a, b) == pytest.approx(0.5)

    def test_exact_touch_returns_that_x(self):
        a = [(0.0, 1.0), (1.0, 2.0)]
        b = [(0.0, 1.0), (1.0, 0.0)]
        assert crossover(a, b) == pytest.approx(0.0)

    def test_no_crossover(self):
        a = [(0.0, 2.0), (1.0, 3.0)]
        b = [(0.0, 1.0), (1.0, 1.5)]
        assert crossover(a, b) is None

    def test_crossing_at_final_point(self):
        a = [(0.0, 0.0), (1.0, 1.0)]
        b = [(0.0, 1.0), (1.0, 1.0)]
        assert crossover(a, b) == pytest.approx(1.0)

    def test_mismatched_grids_rejected(self):
        with pytest.raises(ConfigError):
            crossover([(0.0, 1.0)], [(1.0, 1.0)])

    def test_empty_series(self):
        assert crossover([], []) is None


class TestScalingEfficiency:
    def test_perfect_scaling(self):
        points = [(1, 100.0), (8, 800.0)]
        assert scaling_efficiency(points) == pytest.approx(1.0)

    def test_flat_is_inverse_of_cores(self):
        points = [(1, 100.0), (4, 100.0)]
        assert scaling_efficiency(points) == pytest.approx(0.25)

    def test_order_independent(self):
        assert scaling_efficiency([(8, 400.0), (1, 100.0)]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            scaling_efficiency([(1, 100.0)])
        with pytest.raises(ConfigError):
            scaling_efficiency([(1, 0.0), (2, 10.0)])


class TestMonotonicFraction:
    def test_strictly_increasing(self):
        points = [(0, 1.0), (1, 2.0), (2, 3.0)]
        assert monotonic_fraction(points, increasing=True) == 1.0

    def test_direction_flag(self):
        points = [(0, 3.0), (1, 2.0), (2, 1.0)]
        assert monotonic_fraction(points, increasing=False) == 1.0
        assert monotonic_fraction(points, increasing=True) == 0.0

    def test_partial(self):
        points = [(0, 1.0), (1, 3.0), (2, 2.0), (3, 4.0)]
        assert monotonic_fraction(points, increasing=True) == pytest.approx(2 / 3)

    def test_needs_two_points(self):
        with pytest.raises(ConfigError):
            monotonic_fraction([(0, 1.0)])


class TestMisc:
    def test_relative_overhead(self):
        assert relative_overhead(120.0, 100.0) == pytest.approx(0.2)
        with pytest.raises(ConfigError):
            relative_overhead(1.0, 0.0)

    def test_summarize_sweep(self):
        summary = summarize_sweep({"a": [(0, 2.0), (1, 4.0)], "b": []})
        assert summary == [("a", 2.0, 4.0, 2.0)]
