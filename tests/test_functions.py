"""State-function registry and the built-in TSP functions/conditions."""

from __future__ import annotations

import pytest

from repro.engine.functions import (
    apply_state_function,
    condition_function,
    evaluate_condition,
    register_condition,
    register_state_function,
    state_function,
)
from repro.errors import ConfigError, TransactionError


class TestRegistry:
    def test_unknown_function_rejected(self):
        with pytest.raises(TransactionError):
            state_function("no-such-fn")
        with pytest.raises(TransactionError):
            condition_function("no-such-cond")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_state_function("deposit", lambda own, reads, params: own)
        with pytest.raises(ConfigError):
            register_condition("ge", lambda values, params: True)

    def test_custom_registration(self):
        register_state_function(
            "test_double", lambda own, reads, params: own * 2
        )
        assert apply_state_function("test_double", 3.0, (), ()) == 6.0


class TestBuiltinFunctions:
    def test_deposit(self):
        assert apply_state_function("deposit", 10.0, (), (5.0,)) == 15.0

    def test_debit(self):
        assert apply_state_function("debit", 10.0, (), (4.0,)) == 6.0

    def test_credit(self):
        assert apply_state_function("credit", 10.0, (), (4.0,)) == 14.0

    def test_credit_from_caps_at_source_balance(self):
        assert apply_state_function("credit_from", 10.0, (100.0,), (4.0,)) == 14.0
        assert apply_state_function("credit_from", 10.0, (2.0,), (4.0,)) == 12.0

    def test_write_sum(self):
        assert apply_state_function("write_sum", 1.0, (2.0, 3.0), ()) == 6.0

    def test_grep_sum_is_contractive(self):
        # Iterating from a large value converges instead of diverging.
        value = 1e6
        for _ in range(200):
            value = apply_state_function("grep_sum", value, (1.0, 1.0), (0.05,))
        assert abs(value) < 10.0

    def test_grep_sum_without_reads(self):
        assert apply_state_function("grep_sum", 4.0, (), (0.5,)) == 2.5

    def test_ewma_moves_toward_report(self):
        out = apply_state_function("ewma", 60.0, (), (100.0, 0.5))
        assert out == 80.0

    def test_ewma_alpha_one_replaces(self):
        assert apply_state_function("ewma", 60.0, (), (30.0, 1.0)) == 30.0

    def test_increment(self):
        assert apply_state_function("increment", 3.0, (), ()) == 4.0

    def test_set_value(self):
        assert apply_state_function("set_value", 3.0, (), (9,)) == 9.0

    def test_scale_add(self):
        assert apply_state_function("scale_add", 2.0, (), (3.0, 1.0)) == 7.0


class TestBuiltinConditions:
    def test_ge(self):
        assert evaluate_condition("ge", [5.0], (5.0,))
        assert not evaluate_condition("ge", [4.9], (5.0,))

    def test_gt_lt(self):
        assert evaluate_condition("gt", [5.1], (5.0,))
        assert evaluate_condition("lt", [4.9], (5.0,))
        assert not evaluate_condition("lt", [5.0], (5.0,))

    def test_always_never(self):
        assert evaluate_condition("always", [], ())
        assert not evaluate_condition("never", [], ())

    def test_lt_minus_infinity_never_holds(self):
        # The deterministic forced-abort predicate used by workloads.
        assert not evaluate_condition("lt", [-1e308], (float("-inf"),))
