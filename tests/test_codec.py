"""Binary codec: round trips, determinism, and corruption handling."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.codec import decode, encode


class TestScalars:
    def test_none_round_trip(self):
        assert decode(encode(None)) is None

    def test_booleans_preserved_as_bool(self):
        assert decode(encode(True)) is True
        assert decode(encode(False)) is False

    def test_bool_not_confused_with_int(self):
        # bool is a subclass of int; the codec must keep the types apart.
        assert decode(encode(1)) == 1
        assert not isinstance(decode(encode(1)), bool)
        assert isinstance(decode(encode(True)), bool)

    @pytest.mark.parametrize(
        "value", [0, 1, -1, 127, 128, -128, 2**31, -(2**31), 2**80, -(2**80)]
    )
    def test_int_round_trip(self, value):
        assert decode(encode(value)) == value

    @pytest.mark.parametrize("value", [0.0, -0.0, 1.5, -2.25, 1e300, 5e-324])
    def test_float_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_float_nan(self):
        assert math.isnan(decode(encode(float("nan"))))

    def test_float_infinities(self):
        assert decode(encode(float("inf"))) == float("inf")
        assert decode(encode(float("-inf"))) == float("-inf")

    def test_str_round_trip(self):
        assert decode(encode("hello")) == "hello"
        assert decode(encode("")) == ""
        assert decode(encode("accounts[Ω]∆")) == "accounts[Ω]∆"

    def test_bytes_round_trip(self):
        assert decode(encode(b"\x00\xff\x80")) == b"\x00\xff\x80"


class TestContainers:
    def test_tuple_stays_tuple(self):
        assert decode(encode((1, "a", 2.0))) == (1, "a", 2.0)
        assert isinstance(decode(encode((1,))), tuple)

    def test_list_stays_list(self):
        assert decode(encode([1, 2, 3])) == [1, 2, 3]
        assert isinstance(decode(encode([1])), list)

    def test_nested_structures(self):
        value = {"a": [1, (2, None)], "b": {"c": (True, "x")}}
        assert decode(encode(value)) == value

    def test_empty_containers(self):
        assert decode(encode(())) == ()
        assert decode(encode([])) == []
        assert decode(encode({})) == {}

    def test_dict_encoding_is_insertion_order_independent(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert encode(a) == encode(b)

    def test_dict_int_keys(self):
        value = {3: 1.0, 1: 2.0, 2: 3.0}
        assert decode(encode(value)) == value


class TestErrors:
    def test_unsupported_type_raises(self):
        with pytest.raises(StorageError):
            encode(object())

    def test_truncated_record_raises(self):
        blob = encode((1, "payload", 2.5))
        with pytest.raises(StorageError):
            decode(blob[:-1])

    def test_trailing_bytes_raise(self):
        blob = encode(42)
        with pytest.raises(StorageError):
            decode(blob + b"\x00")

    def test_empty_input_raises(self):
        with pytest.raises(StorageError):
            decode(b"")

    def test_unknown_tag_raises(self):
        with pytest.raises(StorageError):
            decode(b"\x7f")


# A recursive strategy over everything the codec supports.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.dictionaries(st.integers(), children, max_size=5),
    ),
    max_leaves=25,
)


@given(_values)
@settings(max_examples=200, deadline=None)
def test_property_round_trip(value):
    assert decode(encode(value)) == value


@given(_values)
@settings(max_examples=100, deadline=None)
def test_property_encoding_deterministic(value):
    assert encode(value) == encode(value)
