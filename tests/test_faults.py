"""Fault injector + store plumbing: deterministic storage chaos."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    CorruptSegmentError,
    InjectedCrash,
    MissingSegmentError,
    ReadFaultError,
    StorageError,
    TornSegmentError,
)
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.integrity import protect, verify
from repro.storage.stores import Disk


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("melt")

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("torn", target="ram")

    def test_needs_trigger(self):
        with pytest.raises(ConfigError):
            FaultSpec("torn")  # neither nth nor probability

    def test_nth_is_one_based(self):
        with pytest.raises(ConfigError):
            FaultSpec("torn", nth=0)


class TestInjectorTriggers:
    def test_nth_fault_fires_once_on_exactly_that_operation(self):
        inj = FaultInjector([FaultSpec("torn", target="log", nth=2)])
        blob = b"x" * 100
        assert inj.on_write("log", "seg 1", blob) == blob
        assert len(inj.on_write("log", "seg 2", blob)) == 50
        assert inj.on_write("log", "seg 3", blob) == blob  # one-shot
        assert [f.op_index for f in inj.injected] == [2]

    def test_stream_filter_restricts_log_faults(self):
        inj = FaultInjector(
            [FaultSpec("torn", target="log", nth=1, stream="wal")]
        )
        blob = b"x" * 100
        # First log write is another stream: counted, but not damaged.
        assert inj.on_write("log", "dlog 0", blob, stream="dlog") == blob
        assert inj.on_write("log", "wal 0", blob, stream="wal") == blob
        assert not inj.injected

    def test_target_any_counts_across_categories(self):
        inj = FaultInjector([FaultSpec("drop", target="any", nth=3)])
        blob = b"x" * 10
        assert inj.on_write("log", "a", blob) == blob
        assert inj.on_write("snapshot", "b", blob) == blob
        assert inj.on_write("events", "c", blob) is None

    def test_probability_faults_are_seed_deterministic(self):
        def fire_pattern(seed):
            inj = FaultInjector(
                [FaultSpec("torn", target="log", probability=0.5)], seed=seed
            )
            return [
                len(inj.on_write("log", f"s{i}", b"x" * 8)) < 8
                for i in range(32)
            ]

        assert fire_pattern(3) == fire_pattern(3)
        assert fire_pattern(3) != fire_pattern(4)

    def test_disarm_stops_injection(self):
        inj = FaultInjector([FaultSpec("torn", target="log", probability=1.0)])
        inj.disarm()
        blob = b"x" * 100
        assert inj.on_write("log", "seg", blob) == blob
        inj.arm()
        assert len(inj.on_write("log", "seg", blob)) < 100


class TestCrashFaults:
    def test_crash_tears_the_flush_and_arms_the_gate(self):
        inj = FaultInjector([FaultSpec("crash", target="log", nth=1)])
        out = inj.on_write("log", "seg", b"x" * 100)
        assert len(out) == 50
        assert inj.crash_pending
        with pytest.raises(InjectedCrash):
            inj.maybe_crash()
        inj.maybe_crash()  # the pending flag resets after raising
        assert inj.crashes_fired == 1


class TestStorePlumbing:
    def _disk(self, *specs, seed=0):
        return Disk(faults=FaultInjector(list(specs), seed=seed))

    def test_torn_log_segment_raises_torn_error_with_context(self):
        disk = self._disk(FaultSpec("torn", target="log", nth=1))
        disk.logs.commit_epoch("wal", 3, ["record"])
        with pytest.raises(TornSegmentError) as err:
            disk.logs.read_epoch("wal", 3)
        assert "'wal'" in str(err.value)
        assert "epoch 3" in str(err.value)

    def test_bitflipped_log_segment_raises_corrupt_error(self):
        disk = self._disk(FaultSpec("bitflip", target="log", nth=1))
        disk.logs.commit_epoch("wal", 3, ["record"])
        with pytest.raises(CorruptSegmentError) as err:
            disk.logs.read_epoch("wal", 3)
        assert "checksum mismatch" in str(err.value)

    def test_dropped_log_flush_never_lands_but_is_charged(self):
        disk = self._disk(FaultSpec("drop", target="log", nth=1))
        seconds = disk.logs.commit_epoch("wal", 3, ["record"])
        assert seconds > 0  # the device still billed the write
        assert not disk.logs.has_epoch("wal", 3)
        with pytest.raises(MissingSegmentError):
            disk.logs.read_epoch("wal", 3)

    def test_dropped_snapshot_flush_never_lands(self):
        disk = self._disk(FaultSpec("drop", target="snapshot", nth=1))
        disk.snapshots.put(0, {"t": {1: 1.0}})
        assert disk.snapshots.latest_epoch() is None

    def test_read_error_on_event_store(self):
        disk = self._disk(FaultSpec("read_error", target="events", nth=1))
        disk.events.append_events(["e1", "e2"])
        disk.events.seal_epoch(0, 2)
        with pytest.raises(ReadFaultError) as err:
            disk.events.read_epochs(0, 0)
        assert "EIO" in str(err.value)

    def test_torn_snapshot_detected_at_load(self):
        disk = self._disk(FaultSpec("torn", target="snapshot", nth=1))
        disk.snapshots.put(4, {"t": {1: 1.0}})
        with pytest.raises(TornSegmentError) as err:
            disk.snapshots.load(4)
        assert "snapshot epoch 4" in str(err.value)


class TestIntegrityFrame:
    def test_torn_prefix_vs_bitflip_are_distinguished(self):
        framed = protect(b"payload-bytes-here")
        with pytest.raises(TornSegmentError):
            verify(framed[: len(framed) - 4])
        flipped = bytearray(framed)
        flipped[-1] ^= 0x01
        with pytest.raises(CorruptSegmentError):
            verify(bytes(flipped))

    def test_context_names_the_segment(self):
        framed = protect(b"payload")
        with pytest.raises(TornSegmentError) as err:
            verify(framed[:10], "log stream 'msr' epoch 7")
        assert "log stream 'msr' epoch 7" in str(err.value)

    def test_trailing_garbage_is_corruption(self):
        framed = protect(b"payload")
        with pytest.raises(CorruptSegmentError):
            verify(framed + b"JUNK")


class TestEventStoreReopen:
    def test_reopen_returns_newest_epoch_to_pending(self):
        disk = Disk()
        disk.events.append_events(["a", "b", "c", "d"])
        disk.events.seal_epoch(0, 2)
        disk.events.seal_epoch(1, 1)
        assert disk.events.pending_count == 1
        assert disk.events.reopen_epoch(1) == 1
        assert disk.events.pending_count == 2
        assert disk.events.last_sealed_epoch() == 0
        raw, _io = disk.events.read_pending()
        assert raw == ["c", "d"]

    def test_only_the_tail_epoch_may_reopen(self):
        disk = Disk()
        disk.events.append_events(["a", "b"])
        disk.events.seal_epoch(0, 1)
        disk.events.seal_epoch(1, 1)
        with pytest.raises(StorageError):
            disk.events.reopen_epoch(0)

    def test_reopen_missing_epoch_raises(self):
        disk = Disk()
        with pytest.raises(MissingSegmentError):
            disk.events.reopen_epoch(5)


class TestDiscardAndQuarantine:
    def test_log_discard_from_drops_partial_commits(self):
        disk = Disk()
        disk.logs.commit_epoch("wal", 1, ["a"])
        disk.logs.commit_epoch("wal", 2, ["b"])
        disk.logs.commit_epoch("msr", 2, ["c"])
        assert disk.logs.discard_from(2) > 0
        assert disk.logs.has_epoch("wal", 1)
        assert not disk.logs.has_epoch("wal", 2)
        assert not disk.logs.has_epoch("msr", 2)

    def test_quarantine_is_idempotent(self):
        disk = Disk()
        disk.logs.commit_epoch("wal", 1, ["a"])
        assert disk.logs.quarantine("wal", 1) > 0
        assert disk.logs.quarantine("wal", 1) == 0

    def test_snapshot_discard_from(self):
        disk = Disk()
        disk.snapshots.put(-1, {"t": {}})
        disk.snapshots.put(3, {"t": {1: 1.0}})
        disk.snapshots.discard_from(3)
        assert disk.snapshots.epochs_desc() == [-1]


class TestGCRetention:
    def test_keep_two_checkpoints_preserves_replay_sources(self, gs):
        from repro.ft.wal import WriteAheadLog

        scheme = WriteAheadLog(
            gs,
            num_workers=3,
            epoch_len=50,
            snapshot_interval=2,
            gc_keep_checkpoints=2,
        )
        scheme.process_stream(gs.generate(300, seed=0))  # epochs 0..5
        # Checkpoints at epochs 1, 3, 5; retention keeps the 2 newest
        # and every replay source back to the older one.
        assert scheme.disk.snapshots.epochs_desc()[:2] == [5, 3]
        scheme.disk.events.count_epoch(4)  # retained, does not raise
        assert scheme.disk.logs.has_epoch("wal", 4)

    def test_default_retention_matches_previous_behavior(self, gs):
        from repro.ft.wal import WriteAheadLog

        scheme = WriteAheadLog(
            gs, num_workers=3, epoch_len=50, snapshot_interval=2
        )
        scheme.process_stream(gs.generate(300, seed=0))
        assert scheme.disk.snapshots.epochs_desc() == [5]
        with pytest.raises(MissingSegmentError):
            scheme.disk.events.count_epoch(4)

    def test_keep_must_be_positive(self, gs):
        from repro.ft.wal import WriteAheadLog

        with pytest.raises(ConfigError):
            WriteAheadLog(gs, gc_keep_checkpoints=0)
