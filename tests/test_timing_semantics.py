"""Hand-computed virtual-time checks for tiny crafted scenarios.

These tests pin the accounting semantics: for a scenario small enough
to compute by hand, the simulator must produce exactly the predicted
numbers.  They protect the cost model's *meaning* (what gets charged
where) against accidental refactors, independently of calibration.
"""

from __future__ import annotations

import pytest

from repro.engine.events import Event
from repro.engine.execution import build_op_tasks, execute_tpg
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.tpg import build_tpg
from repro.engine.transactions import Transaction
from repro.ft.common import build_txn_tasks, txn_level_deps
from repro.sim.clock import Machine
from repro.sim.costs import CostModel
from repro.sim.executor import ParallelExecutor

A = StateRef("t", "A")
B = StateRef("t", "B")

#: Round numbers make hand computation trivial.
COSTS = CostModel(
    state_access=1.0,
    udf=0.5,
    condition_check=0.25,
    sync_handoff=10.0,
    remote_fetch=0.0,
    explore_dependency=0.0,
    abort_transaction=2.0,
)


def deposit_txn(txn_id, ref, uid):
    op = Operation(uid, txn_id, txn_id, ref, "deposit", (1.0,))
    return Transaction(txn_id, txn_id, Event(txn_id, "d", ()), (op,))


def reader_txn(txn_id, ref, read_ref, uid):
    op = Operation(
        uid, txn_id, txn_id, ref, "credit_from", (1.0,), (read_ref,)
    )
    return Transaction(txn_id, txn_id, Event(txn_id, "r", ()), (op,))


class TestOpTaskTiming:
    def _run(self, txns, worker_of):
        store = StateStore({"t": {"A": 5.0, "B": 5.0}})
        tpg = build_tpg(txns)
        outcome = execute_tpg(store, tpg)
        tasks = build_op_tasks(tpg, outcome, COSTS, worker_of)
        machine = Machine(2)
        executor = ParallelExecutor(machine, COSTS.sync_handoff)
        result = executor.run(tasks)
        return machine, result

    def test_independent_deposits_on_two_workers(self):
        # Each deposit: 1 write access (1.0) + udf (0.5) = 1.5.
        txns = [deposit_txn(0, A, 0), deposit_txn(1, B, 1)]
        machine, result = self._run(
            txns, lambda ref: 0 if ref.key == "A" else 1
        )
        assert result.makespan == pytest.approx(1.5)
        assert machine.cores[0].spent("execute") == pytest.approx(1.5)
        assert machine.cores[1].spent("execute") == pytest.approx(1.5)

    def test_td_chain_serializes_on_one_worker(self):
        txns = [deposit_txn(0, A, 0), deposit_txn(1, A, 1)]
        machine, result = self._run(txns, lambda ref: 0)
        # Two ops in sequence on worker 0: 3.0 total; no sync.
        assert result.makespan == pytest.approx(3.0)
        assert result.cross_worker_edges == 0

    def test_cross_worker_pd_pays_latency(self):
        # txn1 writes A on worker 0; txn2 on worker 1 reads A.
        txns = [deposit_txn(0, A, 0), reader_txn(1, B, A, 1)]
        machine, result = self._run(
            txns, lambda ref: 0 if ref.key == "A" else 1
        )
        # Reader: own write + one read = 2 accesses (2.0) + udf (0.5),
        # starting at 1.5 (producer) + 10.0 (sync) = 11.5; ends 14.0.
        assert result.finish[1] == pytest.approx(14.0)
        assert machine.cores[1].spent("wait") == pytest.approx(11.5)

    def test_same_worker_pd_is_free(self):
        txns = [deposit_txn(0, A, 0), reader_txn(1, B, A, 1)]
        _machine, result = self._run(txns, lambda ref: 0)
        # 1.5 (producer) + 2.5 (reader) with no sync.
        assert result.makespan == pytest.approx(4.0)

    def test_condition_charges_validator(self):
        cond = Condition("ge", (A,), (0.0,))
        op = Operation(0, 0, 0, B, "deposit", (1.0,))
        txn = Transaction(0, 0, Event(0, "c", ()), (op,), (cond,))
        store = StateStore({"t": {"A": 5.0, "B": 5.0}})
        tpg = build_tpg([txn])
        outcome = execute_tpg(store, tpg)
        tasks = build_op_tasks(tpg, outcome, COSTS, lambda ref: 0)
        # write (1.0) + udf (0.5) + cond-ref access (1.0) + check (0.25).
        assert tasks[0].cost == pytest.approx(2.75)

    def test_aborted_transaction_charges_visit_plus_rollback(self):
        cond = Condition("never", (), ())
        op = Operation(0, 0, 0, B, "deposit", (1.0,))
        txn = Transaction(0, 0, Event(0, "x", ()), (op,), (cond,))
        store = StateStore({"t": {"A": 5.0, "B": 5.0}})
        tpg = build_tpg([txn])
        outcome = execute_tpg(store, tpg)
        tasks = build_op_tasks(tpg, outcome, COSTS, lambda ref: 0)
        op_task = next(t for t in tasks if t.uid == 0)
        abort_task = next(t for t in tasks if t.uid < 0)
        # Visit (1.0, no udf) + condition check (0.25); rollback 2.0.
        assert op_task.cost == pytest.approx(1.25)
        assert abort_task.cost == pytest.approx(2.0)
        assert abort_task.bucket == "abort"


class TestTxnTaskTiming:
    def test_txn_cost_is_sum_of_op_costs(self):
        txns = [deposit_txn(0, A, 0), reader_txn(1, B, A, 1)]
        store = StateStore({"t": {"A": 5.0, "B": 5.0}})
        tpg = build_tpg(txns)
        outcome = execute_tpg(store, tpg)
        tasks = build_txn_tasks(tpg, outcome, COSTS, lambda txn_id: 0)
        by_uid = {t.uid: t for t in tasks}
        assert by_uid[0].cost == pytest.approx(1.5)
        assert by_uid[1].cost == pytest.approx(2.5)

    def test_txn_level_deps_lift_op_edges(self):
        txns = [
            deposit_txn(0, A, 0),
            deposit_txn(1, B, 1),
            reader_txn(2, B, A, 2),  # PD on txn 0, TD on txn 1
        ]
        tpg = build_tpg(txns)
        deps = txn_level_deps(tpg)
        assert deps[0] == ()
        assert deps[1] == ()
        assert deps[2] == (0, 1)

    def test_ld_edges_vanish_at_txn_granularity(self):
        ops = (
            Operation(0, 0, 0, A, "deposit", (1.0,)),
            Operation(1, 0, 0, B, "deposit", (1.0,)),
        )
        txn = Transaction(0, 0, Event(0, "m", ()), ops)
        deps = txn_level_deps(build_tpg([txn]))
        assert deps[0] == ()


class TestBarrierAccounting:
    def test_epoch_barrier_charges_stragglers(self):
        machine = Machine(3)
        machine.cores[0].spend("execute", 9.0)
        machine.cores[1].spend("execute", 3.0)
        machine.barrier("wait")
        assert machine.cores[1].spent("wait") == pytest.approx(6.0)
        assert machine.cores[2].spent("wait") == pytest.approx(9.0)
        # Per-core breakdown sums to the makespan.
        breakdown = machine.bucket_breakdown()
        assert sum(breakdown.values()) == pytest.approx(machine.elapsed())
