"""Task precedence graph: TD/PD/LD edge derivation (§II-A, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.tpg import build_tpg
from repro.engine.transactions import Transaction

A = StateRef("t", "A")
B = StateRef("t", "B")
C = StateRef("t", "C")


def txn(txn_id, ops_spec, conditions=()):
    """ops_spec: list of (uid, ref, reads)."""
    ops = tuple(
        Operation(uid, txn_id, txn_id, ref, "deposit", (1.0,), tuple(reads))
        for uid, ref, reads in ops_spec
    )
    return Transaction(
        txn_id, txn_id, Event(txn_id, "e", ()), ops, tuple(conditions)
    )


class TestTemporalDependencies:
    def test_same_key_ops_chain_in_timestamp_order(self):
        tpg = build_tpg([txn(0, [(0, A, ())]), txn(1, [(1, A, ())])])
        assert [op.uid for op in tpg.chains[A]] == [0, 1]
        assert tpg.td_prev == {1: 0}

    def test_different_keys_have_no_td(self):
        tpg = build_tpg([txn(0, [(0, A, ())]), txn(1, [(1, B, ())])])
        assert tpg.td_prev == {}

    def test_chains_partition_all_operations(self):
        txns = [txn(i, [(i, A if i % 2 else B, ())]) for i in range(6)]
        tpg = build_tpg(txns)
        assert sum(len(c) for c in tpg.chains.values()) == 6


class TestParametricDependencies:
    def test_read_resolves_to_latest_earlier_writer(self):
        tpg = build_tpg(
            [
                txn(0, [(0, A, ())]),
                txn(1, [(1, A, ())]),
                txn(2, [(2, B, (A,))]),
            ]
        )
        assert tpg.pd_sources[2] == ((A, 1),)

    def test_read_without_writer_has_no_source(self):
        tpg = build_tpg([txn(0, [(0, B, (A,))])])
        assert tpg.pd_sources[0] == ((A, None),)

    def test_same_transaction_writer_excluded(self):
        # Snapshot semantics: an op never PD-depends on a sibling.
        tpg = build_tpg([txn(0, [(0, A, ()), (1, B, (A,))])])
        assert tpg.pd_sources[1] == ((A, None),)

    def test_condition_refs_resolve_like_reads(self):
        cond = Condition("ge", (A,), (0.0,))
        tpg = build_tpg(
            [txn(0, [(0, A, ())]), txn(1, [(1, B, ())], [cond])]
        )
        assert tpg.cond_sources[1] == ((A, 0),)

    def test_duplicate_condition_refs_deduplicated(self):
        conds = [Condition("ge", (A,), (0.0,)), Condition("lt", (A,), (9.0,))]
        tpg = build_tpg([txn(0, [(0, A, ())]), txn(1, [(1, B, ())], conds)])
        assert tpg.cond_sources[1] == ((A, 0),)


class TestLogicalDependencies:
    def test_non_validator_depends_on_validator(self):
        tpg = build_tpg([txn(0, [(0, A, ()), (1, B, ()), (2, C, ())])])
        assert tpg.validator_uid[0] == 0
        assert 0 in tpg.dependencies(tpg.op_by_uid[1])
        assert 0 in tpg.dependencies(tpg.op_by_uid[2])

    def test_validator_does_not_depend_on_itself(self):
        tpg = build_tpg([txn(0, [(0, A, ()), (1, B, ())])])
        assert 0 not in tpg.dependencies(tpg.op_by_uid[0])


class TestGraphShape:
    def test_timestamp_order_is_topological(self):
        txns = [
            txn(0, [(0, A, ())]),
            txn(1, [(1, B, (A,)), (2, C, ())]),
            txn(2, [(3, A, (B, C))]),
        ]
        tpg = build_tpg(txns)
        for op in tpg.ops:
            for dep in tpg.dependencies(op):
                assert dep < op.uid

    def test_edge_counts(self):
        cond = Condition("ge", (A,), (0.0,))
        txns = [
            txn(0, [(0, A, ())]),
            txn(1, [(1, A, ()), (2, B, (A,))], [cond]),
        ]
        tpg = build_tpg(txns)
        counts = tpg.edge_counts()
        assert counts["td"] == 1  # A chain: 0 -> 1
        assert counts["pd"] == 2  # read A (src=0) + cond A (src=0)
        assert counts["ld"] == 1  # op 2 depends on validator 1

    def test_out_of_order_input_sorted_by_timestamp(self):
        txns = [txn(1, [(1, A, ())]), txn(0, [(0, A, ())])]
        tpg = build_tpg(txns)
        assert [t.txn_id for t in tpg.txns] == [0, 1]
        assert tpg.td_prev == {1: 0}

    def test_dependencies_deduplicated(self):
        # op reads A twice through read set and condition on the
        # validator: the dependency list contains the source once.
        cond = Condition("ge", (A,), (0.0,))
        txns = [
            txn(0, [(0, A, ())]),
            txn(1, [(1, B, (A,))], [cond]),
        ]
        tpg = build_tpg(txns)
        deps = tpg.dependencies(tpg.op_by_uid[1])
        assert deps.count(0) == 1
