"""AbortView / ParametricView: record, lookup, serialization."""

from __future__ import annotations

import pytest

from repro.core.views import CONDITION_INDEX, AbortView, ParametricView
from repro.engine.refs import StateRef
from repro.errors import RecoveryError
from repro.storage.codec import decode, encode

A = StateRef("t", "A")
B = StateRef("t", "B")


class TestAbortView:
    def test_membership(self):
        view = AbortView(3, frozenset({1, 5}))
        assert 1 in view and 5 in view
        assert 2 not in view
        assert len(view) == 2

    def test_encode_round_trip(self):
        view = AbortView(3, frozenset({9, 2, 7}))
        restored = AbortView.from_encoded(decode(encode(view.encoded())))
        assert restored == view

    def test_empty_view(self):
        view = AbortView(0)
        assert len(view) == 0
        assert AbortView.from_encoded(view.encoded()) == view


class TestParametricView:
    def test_record_then_lookup(self):
        view = ParametricView(0)
        view.record(7, 1, A, B, 42.5)
        assert view.lookup(7, 1, A) == 42.5
        assert view.has(7, 1, A)

    def test_missing_entry_is_a_recovery_error(self):
        view = ParametricView(0)
        with pytest.raises(RecoveryError):
            view.lookup(7, 1, A)

    def test_condition_index_separate_from_op_indices(self):
        view = ParametricView(0)
        view.record(7, CONDITION_INDEX, A, B, 1.0)
        view.record(7, 0, A, B, 2.0)
        assert view.lookup(7, CONDITION_INDEX, A) == 1.0
        assert view.lookup(7, 0, A) == 2.0

    def test_same_key_overwrites(self):
        view = ParametricView(0)
        view.record(7, 0, A, B, 1.0)
        view.record(7, 0, A, B, 3.0)
        assert view.lookup(7, 0, A) == 3.0
        assert len(view) == 1

    def test_encode_round_trip(self):
        view = ParametricView(4)
        view.record(1, 0, A, B, 1.5)
        view.record(2, CONDITION_INDEX, B, A, -2.5)
        restored = ParametricView.from_encoded(decode(encode(view.encoded())))
        assert restored.epoch_id == 4
        assert len(restored) == 2
        assert restored.lookup(1, 0, A) == 1.5
        assert restored.lookup(2, CONDITION_INDEX, B) == -2.5

    def test_encoding_deterministic(self):
        first = ParametricView(0)
        first.record(2, 0, B, A, 2.0)
        first.record(1, 0, A, B, 1.0)
        second = ParametricView(0)
        second.record(1, 0, A, B, 1.0)
        second.record(2, 0, B, A, 2.0)
        assert encode(first.encoded()) == encode(second.encoded())
