"""Zipfian generator: bounds, determinism, skew behaviour."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfianGenerator


def _draw(n, theta, count, seed=0):
    gen = ZipfianGenerator(n, theta, random.Random(seed))
    return [gen.next() for _ in range(count)]


class TestBasics:
    def test_samples_within_range(self):
        for value in _draw(100, 0.9, 2000):
            assert 0 <= value < 100

    def test_deterministic_for_same_seed(self):
        assert _draw(50, 0.7, 500, seed=3) == _draw(50, 0.7, 500, seed=3)

    def test_different_seeds_differ(self):
        assert _draw(50, 0.7, 500, seed=1) != _draw(50, 0.7, 500, seed=2)

    def test_single_item_space(self):
        assert set(_draw(1, 0.9, 50)) == {0}

    def test_invalid_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0, 0.5, rng)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, -0.1, rng)


class TestSkew:
    def test_zero_theta_is_roughly_uniform(self):
        counts = Counter(_draw(10, 0.0, 20_000))
        for key in range(10):
            assert counts[key] == pytest.approx(2000, rel=0.25)

    def test_higher_theta_concentrates_on_hot_keys(self):
        def hottest_share(theta):
            counts = Counter(_draw(100, theta, 20_000))
            return counts.most_common(1)[0][1] / 20_000

        assert hottest_share(0.0) < hottest_share(0.5) < hottest_share(0.99)

    def test_hot_key_is_item_zero_under_high_skew(self):
        counts = Counter(_draw(100, 0.99, 20_000))
        assert counts.most_common(1)[0][0] == 0

    def test_theta_clamped_below_one(self):
        # theta >= 1 must not blow up; it behaves like extreme skew.
        values = _draw(50, 1.5, 1000)
        assert all(0 <= v < 50 for v in values)


class TestNextExcluding:
    def test_avoids_excluded_values(self):
        gen = ZipfianGenerator(10, 0.9, random.Random(1))
        for _ in range(500):
            assert gen.next_excluding(0, 1, 2) not in {0, 1, 2}

    def test_tiny_space_falls_back_deterministically(self):
        gen = ZipfianGenerator(2, 0.99, random.Random(1))
        for _ in range(100):
            assert gen.next_excluding(0) == 1

    def test_impossible_exclusion_rejected(self):
        gen = ZipfianGenerator(2, 0.5, random.Random(1))
        with pytest.raises(WorkloadError):
            gen.next_excluding(0, 1)


@given(
    n=st.integers(min_value=1, max_value=500),
    theta=st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=100, deadline=None)
def test_property_samples_always_in_range(n, theta, seed):
    gen = ZipfianGenerator(n, theta, random.Random(seed))
    for _ in range(50):
        assert 0 <= gen.next() < n
