"""Sustained-traffic soak: determinism, degraded serving, SLO grading."""

from __future__ import annotations

import json

import pytest

from repro import SCHEMES
from repro.engine.refs import StateRef
from repro.errors import ConfigError, RecoveryError
from repro.harness.slo import REQUIRED_METRICS, SLOTargets
from repro.harness.soak import (
    SOAK_SCHEMA,
    SoakConfig,
    TokenBucketAdmission,
    bench_record,
    run_soak,
    smoke_configs,
    soak_payload,
)
from repro.workloads.grep_sum import TABLE, GrepSum

#: Generous targets so the tiny test cells grade on mechanism, not speed.
LOOSE_SLO = SLOTargets(
    p99_latency_seconds=10.0,
    p999_latency_seconds=60.0,
    availability=0.2,
    max_mttr_seconds=60.0,
    max_rpo_events=0,
)

SINGLE = SoakConfig(
    mode="single",
    num_keys=128,
    epoch_len=32,
    epochs=8,
    crashes=2,
    num_workers=2,
    snapshot_interval=3,
    detection_seconds=0.0001,
    seed=11,
    slo=LOOSE_SLO,
)

CLUSTER = SoakConfig(
    mode="cluster",
    num_keys=128,
    epoch_len=32,
    epochs=8,
    crashes=1,
    num_workers=2,
    snapshot_interval=3,
    shards=4,
    racks=2,
    nodes_per_rack=2,
    replication=1,
    detection_seconds=0.0001,
    seed=11,
    slo=LOOSE_SLO,
)


@pytest.fixture(scope="module")
def single_result():
    return run_soak(SINGLE)


@pytest.fixture(scope="module")
def cluster_result():
    return run_soak(CLUSTER)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SoakConfig(mode="galaxy")
        with pytest.raises(ConfigError):
            SoakConfig(scheme="NAT")
        with pytest.raises(ConfigError):
            SoakConfig(epochs=4, snapshot_interval=4)
        with pytest.raises(ConfigError):
            SoakConfig(epochs=6, snapshot_interval=4, crashes=5)
        with pytest.raises(ConfigError):
            SoakConfig(admission_headroom=1.0)
        with pytest.raises(ConfigError):
            SoakConfig(mode="cluster", chaos=True)

    def test_crash_schedule_is_seeded_and_eligible(self):
        first = SINGLE.crash_schedule()
        assert first == SINGLE.crash_schedule()
        assert len(first) == SINGLE.crashes
        assert all(
            SINGLE.snapshot_interval <= e < SINGLE.epochs for e in first
        )
        other = SoakConfig(
            mode="single",
            num_keys=128,
            epoch_len=32,
            epochs=8,
            crashes=2,
            snapshot_interval=3,
            seed=12,
            slo=LOOSE_SLO,
        )
        # Different seed, different schedule (for these two seeds).
        assert other.crash_schedule() != first

    def test_cell_fingerprint(self):
        cell = SINGLE.cell()
        assert cell.startswith("single/MSR/")
        assert "k128" in cell and "E8" in cell and "s11" in cell
        assert "sh" not in cell
        cluster_cell = CLUSTER.cell()
        assert "sh4x2x2r1-checkpoint_spread" in cluster_cell
        chaos_cell = SoakConfig(
            num_keys=128, epoch_len=32, epochs=8, snapshot_interval=3,
            chaos=True, slo=LOOSE_SLO,
        ).cell()
        assert chaos_cell.endswith("/chaos")


class TestTokenBucket:
    def test_conformant_arrivals_pass_through(self):
        bucket = TokenBucketAdmission(rate_eps=10.0, burst=1)
        for i in range(5):
            arrival = i * 0.2  # half the admitted rate
            assert bucket.admit(arrival) == arrival
        assert bucket.deferred == 0

    def test_burst_tolerated_then_deferred(self):
        bucket = TokenBucketAdmission(rate_eps=10.0, burst=3)
        admits = [bucket.admit(0.0) for _ in range(6)]
        # burst+1 conformant at t=0 (the boundary event still conforms),
        # then the queue spaces out at the admitted rate.
        assert admits[:4] == [0.0, 0.0, 0.0, 0.0]
        assert admits[4:] == pytest.approx([0.1, 0.2])
        assert bucket.deferred == 2
        assert bucket.max_delay_seconds == pytest.approx(0.2)

    def test_gate_backs_arrivals_off(self):
        bucket = TokenBucketAdmission(rate_eps=10.0, burst=1)
        bucket.gate = 5.0  # recovery completes at t=5
        # Backlogged arrivals drain from the gate onward at the bounded
        # admitted rate (one burst slot, then rate-spaced).
        assert bucket.admit(1.0) == 5.0
        assert bucket.admit(1.1) == pytest.approx(5.0)
        assert bucket.admit(1.2) == pytest.approx(5.1)
        assert bucket.deferred == 3

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            TokenBucketAdmission(rate_eps=0.0, burst=1)


class TestSingleSoak:
    def test_verified_and_slo(self, single_result):
        r = single_result
        assert r.verified
        assert r.state_verified and r.outputs_verified and r.degraded_verified
        assert r.rpo_events == 0
        assert r.slo.passed
        assert r.ok

    def test_metrics_shape(self, single_result):
        r = single_result
        assert r.events_total == SINGLE.num_events
        assert r.throughput_eps > 0
        assert 0.0 < r.availability <= 1.0
        assert r.latency["count"] == r.events_total
        assert 0 < r.latency["p50"] <= r.latency["p99"] <= r.latency["p999"]
        assert len(r.epoch_series) == SINGLE.epochs
        assert r.capacity_eps > r.offered_eps > 0

    def test_outages_follow_the_seeded_schedule(self, single_result):
        r = single_result
        assert [o.epoch for o in r.outages] == SINGLE.crash_schedule()
        flagged = [e["epoch"] for e in r.epoch_series if e["outage_after"]]
        assert flagged == SINGLE.crash_schedule()
        for outage in r.outages:
            assert outage.mttr_seconds > 0
            assert outage.rto_seconds >= outage.mttr_seconds
            assert outage.rpo_events == 0

    def test_every_degraded_read_is_stale_tagged(self, single_result):
        r = single_result
        expected = SINGLE.crashes * SINGLE.degraded_reads_per_outage
        assert r.degraded_reads == expected
        assert r.stale_reads == expected  # single node: never fresh
        assert len(r.degraded_samples) == expected
        for _table, _key, value, ckpt, staleness, stale in r.degraded_samples:
            assert stale is True
            assert staleness >= 0
            assert ckpt >= 0
            assert value is not None

    def test_outage_backlog_defers_admissions(self, single_result):
        r = single_result
        assert r.deferred_events > 0
        assert r.max_admission_delay_seconds > 0

    def test_deterministic_rerun_is_bit_identical(self, single_result):
        again = run_soak(SINGLE)
        assert again.degraded_samples == single_result.degraded_samples
        assert again.throughput_eps == single_result.throughput_eps
        assert again.latency == single_result.latency
        assert again.mttr == single_result.mttr
        assert again.epoch_series == single_result.epoch_series
        assert bench_record(again) == bench_record(single_result)

    def test_degraded_read_requires_a_crash(self):
        workload = GrepSum(64, list_len=2, skew=0.5)
        scheme = SCHEMES["MSR"](workload, num_workers=2, epoch_len=16)
        scheme.process_stream(workload.generate(16, seed=3))
        with pytest.raises(RecoveryError):
            scheme.degraded_read(StateRef(TABLE, 0))


class TestClusterSoak:
    def test_verified_and_slo(self, cluster_result):
        r = cluster_result
        assert r.verified
        assert r.state_verified and r.outputs_verified and r.degraded_verified
        assert r.rpo_events == 0
        assert r.slo.passed
        assert r.ok

    def test_outages_and_serving_mix(self, cluster_result):
        r = cluster_result
        assert len(r.outages) == CLUSTER.crashes
        for outage in r.outages:
            assert outage.kind.startswith("kill:")
            assert outage.rto_seconds > 0
        # Reads routed to dead shards are stale-tagged; reads landing on
        # survivors are fresh with a zero staleness bound.
        assert r.degraded_reads == r.stale_reads + r.fresh_reads
        assert r.degraded_reads == (
            CLUSTER.crashes * CLUSTER.degraded_reads_per_outage
        )
        for _t, _k, _v, _ckpt, staleness, stale in r.degraded_samples:
            if stale:
                assert staleness >= 0
            else:
                assert staleness == 0


class TestPayloads:
    def test_soak_payload_schema(self, single_result):
        payload = soak_payload(single_result)
        assert payload["schema"] == SOAK_SCHEMA
        assert payload["cell"] == single_result.cell
        assert payload["ok"] is True
        assert payload["verification"]["state"] is True
        assert len(payload["outages"]) == SINGLE.crashes
        assert len(payload["epoch_series"]) == SINGLE.epochs
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_bench_record_contract(self, single_result):
        record = bench_record(single_result, label="unit")
        assert record["cell"] == single_result.cell
        assert set(REQUIRED_METRICS) <= set(record["metrics"])
        assert record["slo_passed"] is True
        assert record["label"] == "unit"
        # The trajectory must be reproducible: no wall-clock anywhere.
        flat = json.dumps(record)
        assert "timestamp" not in flat and "time_utc" not in flat

    def test_smoke_configs_cover_both_modes(self):
        modes = [cfg.mode for cfg in smoke_configs()]
        assert modes == ["single", "cluster"]
        for cfg in smoke_configs(seed=5):
            assert cfg.seed == 5
            assert cfg.crashes >= 1
