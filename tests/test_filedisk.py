"""File-backed durability: recovery from real files in a fresh 'process'."""

from __future__ import annotations

import pytest

from repro.core.morphstreamr import MorphStreamR
from repro.errors import RecoveryError
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.wal import WriteAheadLog
from repro.storage.filedisk import FileBackedDisk
from tests.conftest import serial_ground_truth

RUN = dict(num_workers=3, epoch_len=50, snapshot_interval=3)
SCHEMES = [GlobalCheckpoint, WriteAheadLog, MorphStreamR]


def run_phase_one(tmp_path, workload, events, scheme_cls):
    """Simulates the dying process: runtime only, objects dropped."""
    disk = FileBackedDisk(tmp_path)
    scheme = scheme_cls(workload, disk=disk, **RUN)
    scheme.process_stream(events)
    # No crash() call: the "process" simply vanishes; only files remain.


class TestCrossProcessRecovery:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_fresh_process_recovers_from_files_alone(
        self, tmp_path, gs, scheme_cls
    ):
        events = gs.generate(330, seed=0)  # 6 epochs + 30 pending
        run_phase_one(tmp_path, gs, events, scheme_cls)

        disk = FileBackedDisk(tmp_path)
        scheme = scheme_cls(gs, disk=disk, **RUN)
        scheme.adopt_crash_state()
        scheme.recover()
        expected, _txns, _outcome = serial_ground_truth(gs, events[:300])
        assert scheme.store.equals(expected), scheme.store.diff(expected, 5)
        assert len(scheme._pending_events) == 30

    def test_processing_continues_in_the_new_process(self, tmp_path, gs):
        events = gs.generate(400, seed=1)
        run_phase_one(tmp_path, gs, events[:330], GlobalCheckpoint)

        scheme = GlobalCheckpoint(gs, disk=FileBackedDisk(tmp_path), **RUN)
        scheme.adopt_crash_state()
        scheme.recover()
        scheme.process_stream(events[330:])
        expected, _txns, _outcome = serial_ground_truth(gs, events)
        assert scheme.store.equals(expected)

    def test_adopt_on_virgin_disk_recovers_initial_state(self, tmp_path, gs):
        # A fresh scheme writes the epoch -1 checkpoint at construction,
        # so adopting a virgin disk recovers the initial state.
        scheme = GlobalCheckpoint(gs, disk=FileBackedDisk(tmp_path), **RUN)
        scheme.adopt_crash_state()
        scheme.recover()
        assert scheme.store.equals(gs.initial_state())

    def test_adopt_requires_some_durable_state(self, tmp_path, gs):
        from repro.ft.native import Native

        scheme = Native(gs, disk=FileBackedDisk(tmp_path), **RUN)
        with pytest.raises(RecoveryError):
            scheme.adopt_crash_state()

    def test_reopened_disk_reflects_gc(self, tmp_path, gs):
        events = gs.generate(350, seed=2)
        run_phase_one(tmp_path, gs, events, GlobalCheckpoint)
        disk = FileBackedDisk(tmp_path)
        # Snapshot at epoch 5 reclaimed everything before epoch 6.
        assert disk.snapshots.latest_epoch() == 5
        assert disk.last_sealed_epoch() == 6
        with pytest.raises(Exception):
            disk.events.read_epochs(0, 0)

    def test_msr_views_survive_on_disk(self, tmp_path, gs):
        from repro.core.logmanager import STREAM

        events = gs.generate(350, seed=3)
        run_phase_one(tmp_path, gs, events, MorphStreamR)
        disk = FileBackedDisk(tmp_path)
        assert disk.logs.has_epoch(STREAM, 6)
        files = list((tmp_path / "logs" / STREAM).glob("*.bin"))
        assert files


class TestFileStoreFidelity:
    def test_reopened_store_equals_original(self, tmp_path, sl):
        events = sl.generate(200, seed=4)
        disk = FileBackedDisk(tmp_path)
        scheme = GlobalCheckpoint(sl, disk=disk, **RUN)
        scheme.process_stream(events)

        reopened = FileBackedDisk(tmp_path)
        assert reopened.snapshots.latest_epoch() == disk.snapshots.latest_epoch()
        assert reopened.last_sealed_epoch() == disk.last_sealed_epoch()
        assert reopened.events.pending_count == disk.events.pending_count
        original, _io = disk.snapshots.load(disk.snapshots.latest_epoch())
        restored, _io2 = reopened.snapshots.load(
            reopened.snapshots.latest_epoch()
        )
        assert original == restored

    def test_delta_chains_survive_reopen(self, tmp_path, gs):
        disk = FileBackedDisk(tmp_path)
        scheme = GlobalCheckpoint(
            gs, disk=disk, incremental_snapshots=True,
            full_snapshot_every=4, **RUN,
        )
        scheme.process_stream(gs.generate(300, seed=5))
        reopened = FileBackedDisk(tmp_path)
        latest = reopened.snapshots.latest_epoch()
        assert reopened.snapshots.is_delta(latest)
        state, _io = reopened.snapshots.load(latest)
        original, _io2 = disk.snapshots.load(latest)
        assert state == original


class TestProgressStoreAtomicWrite:
    """Crash-point faults around the temp-write / ``os.replace`` window.

    The registered points ``progress.tmp-written`` and
    ``progress.replaced`` bracket the publish: whichever side the crash
    lands on, a reopened store must sweep stale ``*.tmp`` debris and
    serve exactly one consistent watermark — the previous record before
    the rename, the new record after it — never a torn slot.
    """

    FIRST = {"crash_epoch": 5, "next_epoch": 2, "attempt": 1}
    SECOND = {"crash_epoch": 5, "next_epoch": 4, "attempt": 1}

    def _store(self, tmp_path, point):
        from repro.storage.device import StorageDevice
        from repro.storage.faults import FaultInjector, FaultSpec
        from repro.storage.filedisk import FileProgressStore

        faults = FaultInjector(
            [FaultSpec("crash_point", target="any", nth=2, point=point)]
        )
        return FileProgressStore(StorageDevice(), tmp_path, faults=faults)

    def _reopen(self, tmp_path):
        from repro.storage.device import StorageDevice
        from repro.storage.filedisk import FileProgressStore

        return FileProgressStore(StorageDevice(), tmp_path)

    def test_crash_before_rename_keeps_previous_watermark(self, tmp_path):
        from repro.errors import InjectedCrash

        store = self._store(tmp_path, "progress.tmp-written")
        store.save(self.FIRST)
        with pytest.raises(InjectedCrash):
            store.save(self.SECOND)
        # The crash left the unpublished temp sibling behind.
        assert list(tmp_path.glob("*.tmp"))

        reopened = self._reopen(tmp_path)
        assert not list(tmp_path.glob("*.tmp")), "stale tmp not swept"
        record, _io = reopened.load()
        assert record == self.FIRST

    def test_crash_after_rename_serves_new_watermark(self, tmp_path):
        from repro.errors import InjectedCrash

        store = self._store(tmp_path, "progress.replaced")
        store.save(self.FIRST)
        with pytest.raises(InjectedCrash):
            store.save(self.SECOND)

        reopened = self._reopen(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        record, _io = reopened.load()
        assert record == self.SECOND

    def test_resume_after_crash_is_idempotent(self, tmp_path):
        from repro.errors import InjectedCrash

        store = self._store(tmp_path, "progress.tmp-written")
        store.save(self.FIRST)
        with pytest.raises(InjectedCrash):
            store.save(self.SECOND)

        # The resumed process re-runs the same save; the watermark it
        # publishes and the one a further reopen serves agree.
        resumed = self._reopen(tmp_path)
        resumed.save(self.SECOND)
        record, _io = resumed.load()
        assert record == self.SECOND
        final, _io2 = self._reopen(tmp_path).load()
        assert final == self.SECOND

    def test_no_torn_watermark_at_either_point(self, tmp_path):
        from repro.errors import InjectedCrash

        for point in ("progress.tmp-written", "progress.replaced"):
            root = tmp_path / point.replace(".", "-")
            store = self._store(root, point)
            store.save(self.FIRST)
            with pytest.raises(InjectedCrash):
                store.save(self.SECOND)
            record, _io = self._reopen(root).load()
            # Framing verification inside load() would raise on a torn
            # slot; both crash sides must yield one of the two records.
            assert record in (self.FIRST, self.SECOND)
