"""Quickstart: run MorphStreamR through a crash and a fast recovery.

Builds a Streaming Ledger application, processes a stream of
deposit/transfer events with MorphStreamR's fault tolerance enabled,
injects a failure, recovers, and verifies the recovered state against a
serial reference execution.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MorphStreamR, StreamingLedger
from repro.harness.report import format_seconds, format_throughput
from repro.harness.runner import ground_truth


def main() -> None:
    # A ledger with 1024 accounts; half of the events transfer money
    # between accounts (guarded by sufficient-balance conditions), half
    # deposit into them.
    workload = StreamingLedger(
        1024,
        transfer_ratio=0.5,
        multi_partition_ratio=0.3,
        skew=0.4,
        num_partitions=8,
    )

    engine = MorphStreamR(
        workload,
        num_workers=8,        # simulated cores
        epoch_len=512,        # events per punctuation/commit epoch
        snapshot_interval=5,  # checkpoints every 5 epochs
    )

    events = workload.generate(4096, seed=42)
    runtime = engine.process_stream(events)
    print("runtime phase")
    print(f"  events processed : {runtime.events_processed}")
    print(f"  throughput       : {format_throughput(runtime.throughput_eps)}")
    print(f"  view log bytes   : {runtime.bytes_logged}")

    # Power outage: everything volatile is gone.  Only the durable
    # snapshots, persisted input events and committed views remain.
    engine.crash()
    print("\n*** crash injected after epoch", engine.crash_epoch, "***\n")

    recovery = engine.recover()
    print("recovery phase")
    print(f"  events replayed  : {recovery.events_replayed}")
    print(f"  recovery time    : {format_seconds(recovery.elapsed_seconds)}")
    print(f"  throughput       : {format_throughput(recovery.throughput_eps)}")
    print("  breakdown        :")
    for bucket, seconds in sorted(recovery.buckets.items()):
        print(f"    {bucket:10s} {format_seconds(seconds)}")

    # Verify against an ideal serial execution of the same stream.
    expected_state, expected_outputs = ground_truth(workload, events)
    assert engine.store.equals(expected_state), "state mismatch!"
    assert engine.sink.outputs() == expected_outputs, "output mismatch!"
    print("\nrecovered state matches the serial ground truth,")
    print(f"and all {len(engine.sink)} outputs were delivered exactly once.")


if __name__ == "__main__":
    main()
