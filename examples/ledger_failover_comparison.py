"""Compare fault-tolerance schemes on Streaming Ledger (Fig. 2 style).

Runs NAT, CKPT, WAL, DL, LV and MSR through the same stream, crashes
each one at the same point, and prints runtime throughput against
recovery time plus the recovery-time breakdown — a miniature of the
paper's motivation experiment.

Run::

    python examples/ledger_failover_comparison.py
"""

from __future__ import annotations

from repro import SCHEMES
from repro.buckets import RECOVERY_BUCKETS
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.workloads.streaming_ledger import StreamingLedger


def make_workload() -> StreamingLedger:
    return StreamingLedger(
        512,
        transfer_ratio=0.5,
        multi_partition_ratio=0.2,
        skew=0.6,
        num_partitions=8,
    )


def main() -> None:
    summary_rows = []
    breakdown_rows = []
    for name, scheme in SCHEMES.items():
        result = run_experiment(
            ExperimentConfig(
                workload_factory=make_workload,
                scheme=scheme,
                num_workers=8,
                epoch_len=256,
                snapshot_interval=5,
                recover_epochs=4,
            )
        )
        recovery = result.recovery
        summary_rows.append(
            [
                name,
                format_throughput(result.runtime.throughput_eps),
                format_seconds(recovery.elapsed_seconds) if recovery else "n/a",
                "ok" if result.state_verified else "FAILED",
            ]
        )
        if recovery:
            breakdown_rows.append(
                [name]
                + [
                    format_seconds(recovery.buckets.get(b, 0.0))
                    for b in RECOVERY_BUCKETS
                ]
            )

    print_figure(
        "Streaming Ledger: runtime vs recovery per scheme",
        render_table(
            ["scheme", "runtime", "recovery time", "state"], summary_rows
        ),
    )
    print_figure(
        "Recovery time breakdown",
        render_table(["scheme", *RECOVERY_BUCKETS], breakdown_rows),
    )
    print(
        "\nMSR recovers fastest because abort pushdown, operation\n"
        "restructuring and LPT assignment eliminate the dependency\n"
        "resolution the other schemes must redo."
    )


if __name__ == "__main__":
    main()
