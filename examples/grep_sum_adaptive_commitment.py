"""Grep&Sum: workload-aware log commitment in action (§VI-B).

Profiles the four contention regimes of Fig. 9 (LSFD/LSMD/HSFD/HSMD),
shows what epoch length the adaptive controller recommends for each,
and then runs MorphStreamR with the controller attached so the
punctuation/commit epoch adapts to the live stream.

Run::

    python examples/grep_sum_adaptive_commitment.py
"""

from __future__ import annotations

from repro import AdaptiveCommitController, GrepSum, MorphStreamR
from repro.core.commitment import profile_epoch
from repro.engine.execution import execute_tpg, preprocess
from repro.engine.tpg import build_tpg
from repro.harness.report import format_throughput, print_figure, render_table

REGIMES = {
    "LSFD": dict(skew=0.0, multi_partition_ratio=0.1, list_len=2),
    "LSMD": dict(skew=0.0, multi_partition_ratio=0.8, list_len=8),
    "HSFD": dict(skew=0.9, multi_partition_ratio=0.1, list_len=2),
    "HSMD": dict(skew=0.9, multi_partition_ratio=0.8, list_len=8),
}


def profile_regime(name: str, params: dict):
    workload = GrepSum(1024, abort_ratio=0.0, num_partitions=8, **params)
    events = workload.generate(1024, seed=1)
    tpg = build_tpg(preprocess(events, workload, 0))
    outcome = execute_tpg(workload.initial_state(), tpg)
    return profile_epoch(tpg, outcome)


def main() -> None:
    controller = AdaptiveCommitController(
        min_epoch=128, max_epoch=2048, recovery_weight=0.5
    )

    rows = []
    for name, params in REGIMES.items():
        profile = profile_regime(name, params)
        rows.append(
            [
                name,
                f"{profile.skew:.3f}",
                f"{profile.dependencies_per_op:.2f}",
                profile.regime,
                controller.recommend(profile),
            ]
        )
    print_figure(
        "Workload profiles and recommended commitment epochs",
        render_table(
            ["regime", "skew", "deps/op", "classified", "epoch"], rows
        ),
    )

    # Attach the controller to a live engine: the punctuation epoch
    # adapts after each processed epoch.
    workload = GrepSum(
        1024, skew=0.0, multi_partition_ratio=0.1, list_len=2,
        abort_ratio=0.0, num_partitions=8,
    )
    engine = MorphStreamR(
        workload,
        num_workers=8,
        epoch_len=128,
        snapshot_interval=4,
        controller=controller,
    )
    report = engine.process_stream(workload.generate(6000, seed=3))
    print("\nadaptive run on a low-contention stream (LSFD):")
    print(f"  starting epoch length : 128 events")
    print(f"  adapted epoch length  : {engine.epoch_len} events")
    print(f"  runtime throughput    : {format_throughput(report.throughput_eps)}")

    engine.crash()
    recovery = engine.recover()
    print(f"  recovery throughput   : {format_throughput(recovery.throughput_eps)}")
    print("\nlarger commit epochs batched more operations per flush —")
    print("exactly the LSFD trade-off of Fig. 9.")


if __name__ == "__main__":
    main()
