"""Soak: repeated failures across mixed workloads, MTTR accounting.

Drives every recoverable scheme through a long stream punctuated by
repeated crashes, verifying exactness after each recovery, and reports
mean-time-to-recover statistics — the operational view of the paper's
recovery-time results.

With ``--chaos`` the soak additionally arms a seeded
:class:`~repro.storage.faults.FaultInjector` that randomly tears log
flushes throughout the run, so recoveries exercise the fallback ladder
(degraded cycles are counted in the report) while exactness must still
hold on every cycle.

Run::

    python examples/soak_failover.py [crashes] [--chaos]
"""

from __future__ import annotations

import sys

from repro import SCHEMES
from repro.harness.report import format_seconds, print_figure, render_table
from repro.harness.runner import ground_truth
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stores import Disk
from repro.workloads.streaming_ledger import StreamingLedger


def soak(scheme_cls, crashes: int, chaos: bool = False):
    workload = StreamingLedger(
        256,
        transfer_ratio=0.6,
        multi_partition_ratio=0.3,
        skew=0.5,
        query_ratio=0.1,
        num_partitions=8,
    )
    kwargs = {}
    if chaos:
        stream = scheme_cls.log_streams[0] if scheme_cls.log_streams else None
        specs = (
            [FaultSpec("torn", target="log", probability=0.25, stream=stream)]
            if stream is not None
            else [FaultSpec("torn", target="snapshot", probability=0.25)]
        )
        kwargs["disk"] = Disk(faults=FaultInjector(specs, seed=42))
        # Keep an older checkpoint around so a torn one is survivable.
        kwargs["gc_keep_checkpoints"] = 2
    scheme = scheme_cls(
        workload, num_workers=8, epoch_len=128, snapshot_interval=4, **kwargs
    )
    segment = 128 * 7  # crash lands 2 epochs past a checkpoint
    events = workload.generate(segment * crashes, seed=99)
    recovery_times = []
    degraded_cycles = 0
    for i in range(crashes):
        scheme.process_stream(events[i * segment : (i + 1) * segment])
        scheme.crash()
        report = scheme.recover()
        recovery_times.append(report.elapsed_seconds)
        if report.degraded():
            degraded_cycles += 1
        expected, _outputs = ground_truth(workload, events[: (i + 1) * segment])
        assert scheme.store.equals(expected), f"divergence after crash {i}"
    assert len(scheme.sink) == segment * crashes
    return recovery_times, degraded_cycles


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--chaos"]
    chaos = "--chaos" in sys.argv[1:]
    crashes = int(args[0]) if args else 5
    rows = []
    for name, scheme_cls in SCHEMES.items():
        if name == "NAT":
            continue
        times, degraded = soak(scheme_cls, crashes, chaos=chaos)
        rows.append(
            [
                name,
                crashes,
                format_seconds(sum(times) / len(times)),
                format_seconds(max(times)),
                degraded if chaos else "-",
                "ok",
            ]
        )
    title = f"Soak — {crashes} crash/recover cycles on Streaming Ledger"
    if chaos:
        title += " (chaos: seeded torn flushes)"
    print_figure(
        title,
        render_table(
            [
                "scheme",
                "crashes",
                "mean recovery",
                "worst recovery",
                "degraded",
                "state",
            ],
            rows,
        ),
    )
    print(
        "\nevery cycle re-verified the full stream against the serial\n"
        "ground truth; exactly-once delivery held throughout."
    )
    if chaos:
        print(
            "chaos mode: torn flushes were injected throughout; degraded\n"
            "counts cycles the recovery fallback ladder had to step down."
        )


if __name__ == "__main__":
    main()
