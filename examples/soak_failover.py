"""Soak: sustained traffic with seeded failovers, graded against SLOs.

This example is a thin wrapper over the real harness — it runs exactly
what ``repro soak`` runs.  The soak drives a Zipf-skewed Grep&Sum
stream through the recovery scheme at a calibrated offered rate,
crashes and recovers it on a seeded schedule, serves bounded-staleness
degraded reads from the last durable checkpoint while the engine is
down, meters admission through a token bucket during catch-up, and
grades the whole run against declarative SLO targets (p99/p999
latency, availability error budget, MTTR, RPO).

Run::

    python examples/soak_failover.py             # bounded smoke pair
    python examples/soak_failover.py --cluster   # cluster cell only
    python examples/soak_failover.py --chaos     # + torn log flushes

Anything beyond the flags above is passed straight through to the
``repro soak`` CLI, e.g.::

    python examples/soak_failover.py --epochs 32 --crashes 4 --json -
"""

from __future__ import annotations

import sys

from repro.cli import main as repro_main


def main() -> int:
    passthrough = list(sys.argv[1:])
    args = ["soak"]
    if "--cluster" in passthrough:
        passthrough.remove("--cluster")
        args += ["--smoke", "--mode", "cluster"]
    elif any(a.startswith("--epochs") or a.startswith("--keys")
             for a in passthrough):
        # Caller is sizing the run explicitly; don't force smoke scale.
        args += ["--mode", "single"]
    else:
        args += ["--smoke", "--mode", "both"]
    return repro_main(args + passthrough)


if __name__ == "__main__":
    sys.exit(main())
