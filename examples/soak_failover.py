"""Soak: repeated failures across mixed workloads, MTTR accounting.

Drives every recoverable scheme through a long stream punctuated by
repeated crashes, verifying exactness after each recovery, and reports
mean-time-to-recover statistics — the operational view of the paper's
recovery-time results.

Run::

    python examples/soak_failover.py [crashes]
"""

from __future__ import annotations

import sys

from repro import SCHEMES
from repro.harness.report import format_seconds, format_throughput, print_figure, render_table
from repro.harness.runner import ground_truth
from repro.workloads.streaming_ledger import StreamingLedger


def soak(scheme_cls, crashes: int):
    workload = StreamingLedger(
        256,
        transfer_ratio=0.6,
        multi_partition_ratio=0.3,
        skew=0.5,
        query_ratio=0.1,
        num_partitions=8,
    )
    scheme = scheme_cls(
        workload, num_workers=8, epoch_len=128, snapshot_interval=4
    )
    segment = 128 * 7  # crash lands 2 epochs past a checkpoint
    events = workload.generate(segment * crashes, seed=99)
    recovery_times = []
    for i in range(crashes):
        scheme.process_stream(events[i * segment : (i + 1) * segment])
        scheme.crash()
        report = scheme.recover()
        recovery_times.append(report.elapsed_seconds)
        expected, _outputs = ground_truth(workload, events[: (i + 1) * segment])
        assert scheme.store.equals(expected), f"divergence after crash {i}"
    assert len(scheme.sink) == segment * crashes
    return recovery_times


def main() -> None:
    crashes = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    rows = []
    for name, scheme_cls in SCHEMES.items():
        if name == "NAT":
            continue
        times = soak(scheme_cls, crashes)
        rows.append(
            [
                name,
                crashes,
                format_seconds(sum(times) / len(times)),
                format_seconds(max(times)),
                "ok",
            ]
        )
    print_figure(
        f"Soak — {crashes} crash/recover cycles on Streaming Ledger",
        render_table(
            ["scheme", "crashes", "mean recovery", "worst recovery", "state"],
            rows,
        ),
    )
    print(
        "\nevery cycle re-verified the full stream against the serial\n"
        "ground truth; exactly-once delivery held throughout."
    )


if __name__ == "__main__":
    main()
