"""Literal durability: kill the process, restart, recover from files.

Most of this repository simulates crashes inside one process.  This
example makes it literal: a child process runs MorphStreamR with a
file-backed disk and dies via ``os._exit`` mid-stream (no cleanup, no
atexit — as close to a power cut as a process can get).  The parent
then recovers *in this process* from nothing but the files the child
left behind, and verifies the result against the serial ground truth.

Run::

    python examples/process_restart_recovery.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

from repro import MorphStreamR, StreamingLedger
from repro.harness.report import format_seconds
from repro.harness.runner import ground_truth
from repro.storage.filedisk import FileBackedDisk

NUM_EVENTS = 1500
CHILD_SCRIPT = textwrap.dedent(
    """
    import os, sys
    from repro import MorphStreamR, StreamingLedger
    from repro.storage.filedisk import FileBackedDisk

    root = sys.argv[1]
    workload = StreamingLedger(256, transfer_ratio=0.6, skew=0.5,
                               query_ratio=0.1, num_partitions=8)
    engine = MorphStreamR(
        workload, num_workers=8, epoch_len=128, snapshot_interval=4,
        disk=FileBackedDisk(root),
    )
    engine.process_stream(workload.generate({num_events}, seed=77))
    print(f"child: processed {{engine._events_processed}} events, "
          f"epoch {{engine._next_epoch - 1}} sealed", flush=True)
    os._exit(1)  # die without any cleanup — the power cut
    """
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-restart-"))
    print(f"durable root: {root}")

    child = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT.format(num_events=NUM_EVENTS),
         str(root)],
        capture_output=True,
        text=True,
    )
    print(child.stdout.strip())
    assert child.returncode == 1, child.stderr  # the deliberate _exit(1)

    files = sorted(p.relative_to(root) for p in root.rglob("*") if p.is_file())
    print(f"\nthe child left {len(files)} durable files, e.g.:")
    for path in files[:6]:
        print(f"  {path}")

    # A completely fresh engine in THIS process adopts the files.
    workload = StreamingLedger(
        256, transfer_ratio=0.6, skew=0.5, query_ratio=0.1, num_partitions=8
    )
    engine = MorphStreamR(
        workload,
        num_workers=8,
        epoch_len=128,
        snapshot_interval=4,
        disk=FileBackedDisk(root),
    )
    engine.adopt_crash_state()
    report = engine.recover()
    print(
        f"\nrecovered in this process: {report.events_replayed} events "
        f"replayed in {format_seconds(report.elapsed_seconds)} (virtual)"
    )

    sealed = (engine.crash_epoch + 1) * 128
    events = workload.generate(NUM_EVENTS, seed=77)
    expected_state, _outputs = ground_truth(workload, events[:sealed])
    assert engine.store.equals(expected_state), "state mismatch!"
    print(
        f"state after {sealed} sealed events matches the serial ground "
        f"truth; {len(engine._pending_events)} tail events were restored "
        "to the buffer."
    )


if __name__ == "__main__":
    main()
