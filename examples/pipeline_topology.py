"""A two-operator pipeline: ledger → fee accounting, with failover.

Demonstrates the topology adaptation of §III-B: all state transactions
triggered by one input event — across every operator — group-commit per
epoch, input events persist only at the topology ingress, and recovery
replays the chain so downstream inputs are regenerated from upstream
replay rather than logged twice.

Run::

    python examples/pipeline_topology.py
"""

from __future__ import annotations

from repro import MorphStreamR, GlobalCheckpoint
from repro.harness.report import format_seconds, format_throughput
from repro.topology import FeeAccountingStage, LedgerStage, TopologyEngine


def build_topology(scheme_cls):
    stages = [
        LedgerStage(
            256,
            transfer_ratio=0.7,
            multi_partition_ratio=0.3,
            skew=0.5,
            num_partitions=8,
        ),
        FeeAccountingStage(64, fee_rate=0.01, num_partitions=8),
    ]
    return stages, TopologyEngine(
        stages,
        scheme_cls,
        num_workers=8,
        epoch_len=256,
        snapshot_interval=4,
    )


def main() -> None:
    for scheme_cls in (GlobalCheckpoint, MorphStreamR):
        stages, topo = build_topology(scheme_cls)
        events = stages[0].generate(2560, seed=11)
        runtime = topo.process_stream(events)
        topo.crash()
        recovery = topo.recover()

        upstream, downstream = runtime.stage_event_counts
        print(f"{scheme_cls.__name__}:")
        print(f"  runtime throughput : {format_throughput(runtime.throughput_eps)}")
        print(f"  events per stage   : {upstream} ledger -> {downstream} fee bookings")
        print(f"  recovery time      : {format_seconds(recovery.elapsed_seconds)}")
        print(f"  outputs at sink    : {len(topo.sink)} (exactly once)")
        total_fees = sum(
            value
            for kind, value in topo.sink.outputs().values()
            if kind == "fee"
        )
        print(f"  fee revenue booked : {total_fees:.2f}\n")

    print(
        "both engines recover the chain exactly; MorphStreamR does it\n"
        "faster because each stage's recovery is dependency-free."
    )


if __name__ == "__main__":
    main()
