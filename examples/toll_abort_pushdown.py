"""Toll Processing: watch abort pushdown at work.

Linear-Road-style tolling where hot road segments saturate their
vehicle-count capacity and reject further reports — the data-dependent
aborts the paper calls common in TP.  The example runs MorphStreamR
twice through the same crash, with abort pushdown enabled and disabled,
and shows how the AbortView lets recovery discard doomed events before
preprocessing.

Run::

    python examples/toll_abort_pushdown.py
"""

from __future__ import annotations

from repro import MorphStreamR, MSROptions, TollProcessing
from repro.buckets import ABORT
from repro.harness.report import format_seconds
from repro.harness.runner import ground_truth


def run(options: MSROptions, label: str, workload, events):
    engine = MorphStreamR(
        workload,
        num_workers=8,
        epoch_len=256,
        snapshot_interval=5,
        options=options,
    )
    engine.process_stream(events)
    engine.crash()
    recovery = engine.recover()

    expected_state, _outputs = ground_truth(workload, events)
    assert engine.store.equals(expected_state)

    print(f"{label}:")
    print(f"  recovery time        : {format_seconds(recovery.elapsed_seconds)}")
    print(f"  abort-handling time  : {format_seconds(recovery.buckets.get(ABORT, 0.0))}")
    return recovery


def main() -> None:
    workload = TollProcessing(
        256, skew=0.6, capacity=10.0, num_partitions=8
    )
    events = workload.generate(2304, seed=7)

    # How abort-heavy is this stream?
    _state, outputs = ground_truth(workload, events)
    rejected = sum(1 for out in outputs.values() if out == ("report", "rejected"))
    print(
        f"stream: {len(events)} vehicle reports, "
        f"{rejected} rejected at capacity ({rejected / len(events):.0%})\n"
    )

    with_pd = run(MSROptions(), "with abort pushdown", workload, events)
    without_pd = run(
        MSROptions(abort_pushdown=False),
        "without abort pushdown",
        workload,
        events,
    )

    saved = without_pd.elapsed_seconds - with_pd.elapsed_seconds
    print(
        f"\nabort pushdown saved {format_seconds(max(saved, 0.0))} of recovery "
        "time by discarding doomed reports before preprocessing\n"
        "(their conditions are never re-evaluated and no rollback runs)."
    )


if __name__ == "__main__":
    main()
