"""Recovery-plan recording: turn a deterministic replay into descriptors.

The real backend cannot ship the engine's object graph to worker
processes; it ships :class:`~repro.real.descriptors.ChainGroupTask`
descriptors whose every input is pre-resolved.  The resolution comes
from a **dependency pre-pass**: the scheme's own (virtual-time) replay
already computes every abort verdict and every cross-chain read value
in the parent, so the recorder rides along with it — PACMAN-style
static analysis of the redo log, and the single-node analogue of the
cluster's cross-shard dependency frontier — and pins those values into
the plan.  Workers then execute chains with zero communication, which
is exactly the contention-free property restructuring buys (§V).

Two recording paths exist:

- :meth:`PlanRecorder.record_tpg` — generic: any scheme that replays
  through a :class:`~repro.engine.tpg.TaskPrecedenceGraph` (CKPT
  reprocessing, WAL sequential redo, DL/LV log replay, and every
  fallback-ladder rung).  Committed chains are LPT-packed into
  ``num_groups`` bundles; reads whose source lives in another bundle
  are pinned, same-bundle reads stay ``local``.
- direct :meth:`PlanRecorder.add_op` / :meth:`PlanRecorder.add_base`
  calls — MorphStreamR's restructured path, whose views already
  classified every read (BASE/VIEW/LOCAL), records its bundles as-is:
  the logged partition map, not the recorder, decides the grouping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.assignment import lpt_assign
from repro.engine.refs import StateRef
from repro.engine.serial import SerialOutcome
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph
from repro.errors import SchedulingError
from repro.real.descriptors import BASE, LOCAL, PIN, ChainGroupTask, OpSpec

#: ref -> epoch-start value, captured before the replay mutates a store.
BaseToken = Dict[StateRef, float]


def capture_base(tpg: TaskPrecedenceGraph, store: StateStore) -> BaseToken:
    """Snapshot the epoch-start value of every record the TPG touches.

    Must run *before* the replay executes (both :func:`execute_tpg` and
    :func:`execute_serial` mutate the store); the captured values seed
    worker-side chains and base reads.
    """
    token: BaseToken = {}
    for ref in tpg.chains:
        token[ref] = store.get(ref)
    for sources in tpg.pd_sources.values():
        for ref, src in sources:
            if src is None and ref not in token:
                token[ref] = store.get(ref)
    return token


class PlanRecorder:
    """Accumulates one epoch's chain groups while the parent replays."""

    def __init__(self) -> None:
        self._ops: Dict[int, List[OpSpec]] = {}
        self._base: Dict[int, Dict[Tuple[str, object], float]] = {}

    def reset(self) -> None:
        """Discard partial recordings (a fallback rung restarts them)."""
        self._ops.clear()
        self._base.clear()

    # ------------------------------------------------------------------
    # direct path (MorphStreamR restructured bundles)
    # ------------------------------------------------------------------

    def add_op(self, group_id: int, spec: OpSpec) -> None:
        self._ops.setdefault(group_id, []).append(spec)

    def add_base(
        self, group_id: int, table: str, key: object, value: float
    ) -> None:
        self._base.setdefault(group_id, {})[(table, key)] = value

    # ------------------------------------------------------------------
    # generic path (TPG replay with outcome-pinned reads)
    # ------------------------------------------------------------------

    def record_tpg(
        self,
        tpg: TaskPrecedenceGraph,
        outcome: SerialOutcome,
        base: BaseToken,
        num_groups: int,
    ) -> None:
        """Record a replayed TPG as LPT-balanced committed chain groups.

        ``outcome`` must be the completed replay of ``tpg`` (it supplies
        abort verdicts and the exact value of every read).  Aborted
        operations are dropped — abort resolution happened in the
        parent, so workers redo committed effects only.
        """
        if num_groups < 1:
            raise SchedulingError("num_groups must be >= 1")
        chains: List[Tuple[StateRef, List]] = []
        for ref, ops in tpg.chains.items():
            kept = [op for op in ops if op.txn_id not in outcome.aborted]
            if kept:
                chains.append((ref, kept))
        if not chains:
            return
        # Chains are the locality unit: one chain never splits across
        # groups (preserves in-order own-value threading).  LPT over
        # chain lengths balances the groups deterministically.
        assignment, _loads = lpt_assign(
            [float(len(ops)) for _ref, ops in chains], num_groups
        )
        group_of_uid: Dict[int, int] = {}
        for (_ref, ops), group in zip(chains, assignment):
            for op in ops:
                group_of_uid[op.uid] = group
        for (ref, ops), group in zip(chains, assignment):
            self.add_base(group, ref.table, ref.key, base[ref])
            for op in ops:
                specs: List[Tuple[object, ...]] = []
                sources = tpg.pd_sources.get(op.uid, ())
                values = outcome.read_values.get(op.uid, ())
                if len(sources) != len(values):
                    raise SchedulingError(
                        f"op {op.uid}: {len(sources)} read sources but "
                        f"{len(values)} resolved values"
                    )
                for (read_ref, src), value in zip(sources, values):
                    if src is None:
                        specs.append((BASE, read_ref.table, read_ref.key))
                        self.add_base(
                            group, read_ref.table, read_ref.key,
                            base[read_ref],
                        )
                    elif (
                        src in outcome.op_values
                        and group_of_uid.get(src) == group
                    ):
                        specs.append((LOCAL, src))
                    else:
                        # Cross-group (or aborted-source passthrough)
                        # read: pin the exact value the pre-pass saw.
                        specs.append((PIN, value))
                self.add_op(
                    group,
                    OpSpec(
                        uid=op.uid,
                        table=op.ref.table,
                        key=op.ref.key,
                        func=op.func,
                        params=tuple(op.params),
                        reads=tuple(specs),
                    ),
                )

    # ------------------------------------------------------------------
    # plan assembly
    # ------------------------------------------------------------------

    def build(
        self, epoch_id: int, per_op_service_seconds: float = 0.0
    ) -> List[ChainGroupTask]:
        """Freeze the recording into picklable, uid-sorted group tasks.

        Ops inside one group are sorted by uid — ascending uid is
        timestamp order and hence topological, so every ``local`` read's
        source precedes its consumer regardless of recording order.
        """
        groups: List[ChainGroupTask] = []
        for group_id in sorted(self._ops):
            ops = tuple(sorted(self._ops[group_id], key=lambda s: s.uid))
            base_values = tuple(
                (table, key, value)
                for (table, key), value in sorted(
                    self._base.get(group_id, {}).items(),
                    key=lambda item: (item[0][0], str(item[0][1])),
                )
            )
            groups.append(
                ChainGroupTask(
                    group_id=group_id,
                    epoch_id=epoch_id,
                    ops=ops,
                    base_values=base_values,
                    service_seconds=per_op_service_seconds * len(ops),
                )
            )
        return groups

    def __len__(self) -> int:
        return sum(len(ops) for ops in self._ops.values())


def merge_group_results(
    store: StateStore, results: Dict[int, "object"]
) -> int:
    """Install worker-recovered partition values into the engine store.

    Returns the number of records written.  Deterministic: groups merge
    in group-id order (their write sets are disjoint by construction —
    a chain lives in exactly one group — so order cannot matter, but a
    fixed order keeps the walk reproducible for debugging).
    """
    written = 0
    for group_id in sorted(results):
        result = results[group_id]
        for table, key, value in result.final_values:
            store.set(StateRef(table, key), value)
            written += 1
    return written
