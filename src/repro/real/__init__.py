"""Real-parallelism execution backend.

Everything else in this repository measures parallel recovery on a
*virtual* machine (``repro.sim``): tasks carry calibrated costs and the
list scheduler advances per-core clocks, so "speedup" is a prediction.
This package is the second backend: it executes recovery chain-groups
on **actual cores** via ``multiprocessing`` so the Fig. 13 scalability
claim can be cross-validated against wall-clock reality.

Layering:

- :mod:`repro.real.descriptors` — pure, picklable chain-group task
  descriptors plus the process-pure ``execute_group`` interpreter;
- :mod:`repro.real.plan` — records a :class:`RealRecoveryPlan` while the
  deterministic in-parent replay runs (the PACMAN-style dependency
  pre-pass that pins every cross-group read);
- :mod:`repro.real.worker` — the child-process loop with cooperative
  kill flags (die/straggle fault semantics);
- :mod:`repro.real.executor` — :class:`RealExecutor`: LPT assignment of
  groups to worker processes, death detection, ``lpt_reassign``-based
  re-balancing rounds, exactly-once completion accounting;
- :mod:`repro.real.backend` — platform gating and fault-plan
  translation (the seam :class:`repro.ft.base.FTScheme` selects with
  ``backend="real"``);
- :mod:`repro.real.bench` — the 1→N-core wall-clock speedup benchmark
  behind ``BENCH_realexec.json``.
"""

from repro.real.backend import (
    BACKENDS,
    ensure_real_backend_supported,
    real_backend_unavailable_reason,
)
from repro.real.descriptors import (
    ChainGroupTask,
    GroupResult,
    OpSpec,
    execute_group,
    lpt_assign_groups,
    lpt_reassign_groups,
)
from repro.real.executor import RealExecutor, RealRunResult

__all__ = [
    "BACKENDS",
    "ChainGroupTask",
    "GroupResult",
    "OpSpec",
    "RealExecutor",
    "RealRunResult",
    "ensure_real_backend_supported",
    "execute_group",
    "lpt_assign_groups",
    "lpt_reassign_groups",
    "real_backend_unavailable_reason",
]
