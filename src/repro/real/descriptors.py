"""Pure, picklable chain-group task descriptors.

The virtual-time executor schedules :class:`~repro.sim.executor.SimTask`
objects that only *cost* seconds; the real backend must ship actual
work to other processes.  The unit of shipment is one
:class:`ChainGroupTask`: a bundle of per-record operation chains whose
every input is already resolvable inside the group —

- ``("own",)`` — the running value of the operation's own record
  (chained through the group's cursor, seeded from ``base_values``);
- ``("base", table, key)`` — a record value as of the epoch start,
  shipped in ``base_values`` (workers never touch the parent's store);
- ``("pin", value)`` — a cross-group or view-resolved read, pinned to
  its exact value by the in-parent dependency pre-pass (the same trick
  the cluster's :class:`~repro.cluster.sharding.DependencyFrontier`
  plays across shards);
- ``("local", source_uid)`` — an intra-group read, resolved by the
  worker from the value it computed for ``source_uid`` earlier in the
  group's topological order.

Abort verdicts are resolved *before* planning (only committed
operations are shipped), so workers run zero condition checks — exactly
the restructured, dependency-free execution of §V.

Everything here is a frozen dataclass of primitives: ``pickle`` round-
trips descriptors unchanged (a regression test asserts this), sends are
cheap, and state functions travel as registry *names*, never as
callables — the fix for ``lpt_assign``/``lpt_reassign`` previously
only being usable with in-process objects.  :func:`lpt_assign_groups` /
:func:`lpt_reassign_groups` layer the existing LPT arithmetic over
descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.assignment import lpt_assign, lpt_reassign
from repro.engine.functions import apply_state_function
from repro.errors import SchedulingError

#: A read specification: ("base", table, key) | ("pin", value) |
#: ("local", source_uid).  Plain tuples keep descriptors pickle-cheap.
ReadSpec = Tuple[object, ...]

BASE = "base"
PIN = "pin"
LOCAL = "local"


@dataclass(frozen=True)
class OpSpec:
    """One operation, fully resolved for out-of-process execution."""

    uid: int
    table: str
    key: object
    #: registry name of the state function (never a callable).
    func: str
    params: Tuple
    reads: Tuple[ReadSpec, ...]


@dataclass(frozen=True)
class ChainGroupTask:
    """One chain bundle: the re-assignment and shipment unit.

    ``ops`` are in topological (exploration) order: a ``local`` read's
    source always precedes its consumer.  ``base_values`` carries the
    epoch-start value of every record the group reads or writes.
    ``service_seconds`` optionally models the group's execution time
    (one sleep per group, proportional to its modeled cost) so the
    speedup benchmark measures scheduling/balance rather than Python
    interpreter throughput.
    """

    group_id: int
    epoch_id: int
    ops: Tuple[OpSpec, ...]
    base_values: Tuple[Tuple[str, object, float], ...]
    service_seconds: float = 0.0

    @property
    def weight(self) -> float:
        """LPT weight: operation count (§V-B3 — after restructuring a
        task's execution time is essentially its op count)."""
        return float(len(self.ops))


@dataclass(frozen=True)
class GroupResult:
    """What one executed group reports back to the parent."""

    group_id: int
    epoch_id: int
    #: (table, key) -> value after the chain's last committed op.
    final_values: Tuple[Tuple[str, object, float], ...]
    #: op uid -> computed value (for cross-checks and diagnostics).
    op_values: Tuple[Tuple[int, float], ...]


def execute_group(task: ChainGroupTask) -> GroupResult:
    """Interpret one chain group; pure (no shared state, no I/O).

    This is what worker processes run.  It only consults the shipped
    ``base_values`` and its own per-group cursor, so executing groups in
    any order — or in different processes — yields identical results.
    """
    base: Dict[Tuple[str, object], float] = {
        (table, key): value for table, key, value in task.base_values
    }
    cursor: Dict[Tuple[str, object], float] = {}
    value_after: Dict[int, float] = {}
    for op in task.ops:
        record = (op.table, op.key)
        if record in cursor:
            own = cursor[record]
        else:
            try:
                own = base[record]
            except KeyError:
                raise SchedulingError(
                    f"group {task.group_id}: no base value shipped for "
                    f"{record!r}"
                ) from None
        reads: List[float] = []
        for spec in op.reads:
            kind = spec[0]
            if kind == BASE:
                reads.append(base[(spec[1], spec[2])])
            elif kind == PIN:
                reads.append(spec[1])  # type: ignore[arg-type]
            elif kind == LOCAL:
                source = spec[1]
                try:
                    reads.append(value_after[source])  # type: ignore[index]
                except KeyError:
                    raise SchedulingError(
                        f"group {task.group_id}: local read of op "
                        f"{source} before its value was computed"
                    ) from None
            else:
                raise SchedulingError(f"unknown read spec {spec!r}")
        value = apply_state_function(op.func, own, reads, op.params)
        value_after[op.uid] = value
        cursor[record] = value
    return GroupResult(
        group_id=task.group_id,
        epoch_id=task.epoch_id,
        final_values=tuple(
            (table, key, value) for (table, key), value in cursor.items()
        ),
        op_values=tuple(sorted(value_after.items())),
    )


def lpt_assign_groups(
    groups: Sequence[ChainGroupTask], workers: Sequence[int]
) -> Dict[int, List[ChainGroupTask]]:
    """LPT-assign descriptor groups onto the given worker ids.

    Deterministic: groups are ordered by ``group_id`` before the LPT
    pass, so the same plan and worker set always produce the same
    assignment (the chain-assignment determinism the differential tests
    assert).  Returns worker id -> its groups, heaviest first.
    """
    ordered = sorted(groups, key=lambda g: g.group_id)
    assignment, _loads = lpt_assign(
        [g.weight for g in ordered], len(workers)
    )
    out: Dict[int, List[ChainGroupTask]] = {w: [] for w in workers}
    for group, slot in zip(ordered, assignment):
        out[workers[slot]].append(group)
    return out


def lpt_reassign_groups(
    groups: Sequence[ChainGroupTask],
    assignment: Dict[int, int],
    completed: Set[int],
    dead_workers: Set[int],
    num_workers: int,
) -> Dict[int, List[ChainGroupTask]]:
    """Re-balance unfinished groups off dead workers onto survivors.

    ``assignment`` maps group_id -> the worker it was pinned to before
    the deaths.  Thin descriptor layer over
    :func:`repro.core.assignment.lpt_reassign`, so the real backend's
    re-assignment rounds exercise the exact arithmetic (and guarantees)
    the :class:`~repro.sim.executor.ResilientExecutor` models.
    """
    ordered = sorted(groups, key=lambda g: g.group_id)
    weights = [g.weight for g in ordered]
    original = [assignment[g.group_id] for g in ordered]
    done_indices = [
        i for i, g in enumerate(ordered) if g.group_id in completed
    ]
    new_assignment, _loads = lpt_reassign(
        weights, original, done_indices, dead_workers, num_workers
    )
    out: Dict[int, List[ChainGroupTask]] = {}
    for i, group in enumerate(ordered):
        if group.group_id in completed:
            continue
        out.setdefault(new_assignment[i], []).append(group)
    return out
