"""Backend selection: platform gating and fault-plan translation.

``FTScheme(backend="real")`` is the seam through which every scheme,
the chaos harness and the soak driver pick the execution backend
without code changes.  This module answers two questions at that seam:

1. *Can this host run the real backend at all?*  ``multiprocessing``
   needs a start method and POSIX semaphores; hosts without them
   (WASM targets, some sandboxes) must fail **loudly at construction**
   with :class:`~repro.errors.BackendError` — the CLI maps it to a
   distinct exit code — never hang or silently fall back to sim.
2. *What do the virtual-time worker faults mean on real cores?*  A
   :class:`~repro.sim.executor.WorkerFault` death instant is virtual
   seconds, which have no wall-clock meaning; the translation maps it
   onto the cooperative units the real workers understand (completed
   chain groups).  A death at virtual zero dies before completing
   anything; a later death completes one group first, so the "partial
   progress survives, remainder is re-assigned" semantics of the
   resilient schedule are preserved.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.sim.executor import WorkerFault, WorkerFaultPlan

#: Execution backends selectable through ``FTScheme(backend=...)``.
BACKENDS: Tuple[str, ...] = ("sim", "real")

#: Straggle translation: wall seconds slept per group per unit of
#: slowdown above 1.0, capped so tests never sleep unboundedly.
_STRAGGLE_SLEEP_PER_UNIT = 0.002
_STRAGGLE_SLEEP_CAP = 0.05


def real_backend_unavailable_reason() -> Optional[str]:
    """Why the real backend cannot run here, or ``None`` if it can."""
    if sys.platform in ("emscripten", "wasi"):
        return f"platform {sys.platform!r} cannot fork worker processes"
    try:
        import multiprocessing
        import multiprocessing.synchronize  # noqa: F401  (needs sem_open)
    except ImportError as exc:
        return f"multiprocessing unavailable: {exc}"
    if not multiprocessing.get_all_start_methods():
        return "no multiprocessing start method is available"
    return None


def ensure_real_backend_supported() -> None:
    """Raise :class:`BackendError` when the real backend cannot run."""
    reason = real_backend_unavailable_reason()
    if reason is not None:
        raise BackendError(f"real execution backend unsupported: {reason}")


def pick_start_method(preferred: Optional[str] = None) -> str:
    """Choose a start method: ``fork`` when available (cheap, inherits
    the function registry), else whatever the platform offers."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in methods:
            raise BackendError(
                f"start method {preferred!r} unavailable "
                f"(platform offers {methods})"
            )
        return preferred
    if "fork" in methods:
        return "fork"
    if not methods:
        raise BackendError("no multiprocessing start method is available")
    return methods[0]


@dataclass(frozen=True)
class RealFaultPlan:
    """Worker faults translated to cooperative real-core semantics.

    ``die_after`` maps a worker to the total number of chain groups it
    may complete (across all rounds and epochs of one recovery) before
    its kill flag fires; ``straggle`` maps a worker to the wall seconds
    it sleeps before every group.
    """

    die_after: Dict[int, int] = field(default_factory=dict)
    straggle: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_worker_faults(
        cls, faults: Sequence[WorkerFault], num_workers: int
    ) -> "RealFaultPlan":
        """Translate a virtual-time fault plan (validates it first)."""
        WorkerFaultPlan(faults, num_workers)
        die_after: Dict[int, int] = {}
        straggle: Dict[int, float] = {}
        for fault in faults:
            if fault.kind == "die":
                die_after[fault.worker] = 0 if fault.at_seconds == 0.0 else 1
            else:
                straggle[fault.worker] = min(
                    _STRAGGLE_SLEEP_CAP,
                    _STRAGGLE_SLEEP_PER_UNIT * max(0.0, fault.slowdown - 1.0),
                )
        return cls(die_after=die_after, straggle=straggle)

    def __bool__(self) -> bool:
        return bool(self.die_after or self.straggle)
