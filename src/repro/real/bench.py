"""Wall-clock recovery speedup benchmark (1 → N real cores).

The virtual-clock simulator predicts recovery scalability (Fig. 13);
this benchmark measures the same sweep on the real backend and checks
that the *shape* of the wall-clock curve matches the prediction:
monotone non-increasing recovery time, and the same efficiency knee.

Chain-group service time is modeled as one ``time_scale``-proportional
sleep per group (see :mod:`repro.real.worker`): sleeps overlap across
worker processes even on a single-core host, so the measured speedup
reflects what the executor actually controls — plan balance, LPT
assignment quality and orchestration overhead — rather than host
arithmetic throughput.  The exported payload is committed as
``BENCH_realexec.json`` and re-checked by tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.runner import ExperimentConfig, run_experiment

#: schema tag of the exported payload.
BENCH_SCHEMA = "bench-realexec/v1"

#: a worker count is "efficient" while speedup/workers stays above this;
#: the knee of the curve is the largest efficient worker count.
KNEE_EFFICIENCY = 0.6

#: tolerance for the monotonicity check (wall clocks jitter).
MONOTONE_SLACK = 1.10


def _knee(speedups: Dict[int, float]) -> int:
    """Largest worker count whose parallel efficiency clears the bar."""
    knee = min(speedups)
    for workers in sorted(speedups):
        if speedups[workers] / workers >= KNEE_EFFICIENCY:
            knee = workers
    return knee


def _monotone(seconds: Dict[int, float]) -> bool:
    ordered = [seconds[w] for w in sorted(seconds)]
    return all(
        later <= earlier * MONOTONE_SLACK
        for earlier, later in zip(ordered, ordered[1:])
    )


def run_realexec_bench(
    workers: Sequence[int] = (1, 2, 4),
    *,
    scheme_name: str = "MSR",
    num_keys: int = 4096,
    skew: float = 0.9,
    epoch_len: int = 256,
    snapshot_interval: int = 4,
    recover_epochs: int = 3,
    time_scale: float = 1e-3,
    seed: int = 7,
) -> Dict:
    """Sweep worker counts over one crash-recovery experiment.

    Every cell runs twice — once per backend — on the large Zipf
    Grep&Sum workload: the sim cell contributes the virtual-clock
    prediction (recovery ``elapsed_seconds``), the real cell the
    measured wall clock of chain-group execution
    (``real_wall_seconds``).  Both curves are normalized to their
    1-worker value before comparing shapes.
    """
    from repro import SCHEMES
    from repro.workloads.grep_sum import GrepSum

    def workload_factory():
        return GrepSum(num_keys, skew=skew, num_partitions=8)

    wall: Dict[int, float] = {}
    virtual: Dict[int, float] = {}
    groups: Dict[int, int] = {}
    for count in sorted(set(workers)):
        for backend in ("sim", "real"):
            config = ExperimentConfig(
                workload_factory=workload_factory,
                scheme=SCHEMES[scheme_name],
                num_workers=count,
                epoch_len=epoch_len,
                snapshot_interval=snapshot_interval,
                recover_epochs=recover_epochs,
                seed=seed,
                scheme_kwargs={
                    "backend": backend,
                    "real_time_scale": time_scale if backend == "real" else 0.0,
                },
            )
            report = run_experiment(config).recovery
            if backend == "real":
                wall[count] = report.real_wall_seconds
                groups[count] = report.real_groups
            else:
                virtual[count] = report.elapsed_seconds

    base = min(wall)
    wall_speedup = {w: wall[base] / wall[w] for w in wall}
    virtual_speedup = {w: virtual[base] / virtual[w] for w in virtual}
    knee_wall = _knee(wall_speedup)
    knee_virtual = _knee(virtual_speedup)
    counts: List[int] = sorted(wall)
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "scheme": scheme_name,
            "workload": "GS",
            "num_keys": num_keys,
            "skew": skew,
            "epoch_len": epoch_len,
            "snapshot_interval": snapshot_interval,
            "recover_epochs": recover_epochs,
            "time_scale": time_scale,
            "seed": seed,
        },
        "workers": counts,
        "wall_seconds": {str(w): wall[w] for w in counts},
        "virtual_seconds": {str(w): virtual[w] for w in counts},
        "real_groups": {str(w): groups[w] for w in counts},
        "wall_speedup": {str(w): wall_speedup[w] for w in counts},
        "virtual_speedup": {str(w): virtual_speedup[w] for w in counts},
        "monotone_wall": _monotone(wall),
        "monotone_virtual": _monotone(virtual),
        "knee_wall": knee_wall,
        "knee_virtual": knee_virtual,
        "shape_matches": (
            _monotone(wall)
            and _monotone(virtual)
            and knee_wall == knee_virtual
        ),
    }


def describe_bench(payload: Dict) -> str:
    """Human-readable summary of one benchmark payload."""
    lines = [
        f"real-backend recovery speedup ({payload['config']['scheme']} on "
        f"{payload['config']['workload']}, "
        f"skew {payload['config']['skew']}):"
    ]
    for w in payload["workers"]:
        key = str(w)
        lines.append(
            f"  {w} worker(s): wall {payload['wall_seconds'][key]:.3f}s "
            f"(x{payload['wall_speedup'][key]:.2f}), virtual "
            f"{payload['virtual_seconds'][key]:.4f}s "
            f"(x{payload['virtual_speedup'][key]:.2f})"
        )
    lines.append(
        f"  shape vs virtual prediction: "
        f"{'MATCH' if payload['shape_matches'] else 'MISMATCH'} "
        f"(knee wall={payload['knee_wall']}, "
        f"virtual={payload['knee_virtual']})"
    )
    return "\n".join(lines)
