"""RealExecutor: chain-group recovery on actual cores.

The real sibling of :class:`~repro.sim.executor.ResilientExecutor`,
behind the shared executor contract of :mod:`repro.sim.executor`
(deterministic LPT assignment, bounded re-assignment rounds on worker
death, a :class:`~repro.sim.executor.ReassignStats` ``stats`` field the
recovery report reads uniformly).  Instead of charging virtual seconds
it spawns one process per surviving worker and round, ships pickled
:class:`~repro.real.descriptors.ChainGroupTask` descriptors, and merges
:class:`~repro.real.descriptors.GroupResult` messages back.

Guarantees:

- **Exactly-once**: the parent tracks completed group ids; a group is
  re-assigned only while incomplete, and a duplicate completion raises
  :class:`~repro.errors.RecoveryError` (the property tests drive this
  under randomized die/straggle plans).
- **Determinism**: assignment uses :func:`lpt_assign_groups` /
  :func:`lpt_reassign_groups` over group ids and weights only, and
  cooperative deaths trigger at fixed completed-group counts — so the
  same plan, worker count and fault plan always yield the identical
  ``assignment_log``, regardless of message arrival order.
- **No hangs**: queue reads poll with a timeout, worker liveness is
  checked every poll (a worker that vanishes without a terminal
  message is declared dead after a grace period), and a hard per-round
  deadline fails loudly instead of waiting forever.
"""

from __future__ import annotations

import queue as queue_mod
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import BackendError, ConfigError, ReassignmentError, RecoveryError
from repro.real.backend import (
    RealFaultPlan,
    ensure_real_backend_supported,
    pick_start_method,
)
from repro.real.descriptors import (
    ChainGroupTask,
    GroupResult,
    lpt_assign_groups,
    lpt_reassign_groups,
)
from repro.real.worker import MSG_DIED, MSG_DONE, MSG_RESULT, run_worker
from repro.sim.executor import ReassignStats

#: grace period before a worker that exited without a terminal message
#: is declared dead (its queued results may still be in the pipe).
_HARD_DEATH_GRACE = 0.5


@dataclass
class RealRunResult:
    """Outcome of executing one plan (one epoch's groups)."""

    results: Dict[int, GroupResult] = field(default_factory=dict)
    #: re-assignment rounds this plan needed (0 = no deaths observed).
    rounds: int = 0
    groups_reassigned: int = 0
    ops_reassigned: int = 0
    dead_workers: Tuple[int, ...] = ()
    wall_seconds: float = 0.0
    #: (round, group_id, worker) in deterministic assignment order.
    assignment_log: Tuple[Tuple[int, int, int], ...] = ()
    #: group_id -> completions observed (all exactly 1 on success).
    completions: Dict[int, int] = field(default_factory=dict)


class RealExecutor:
    """Run chain-group plans on real cores with LPT fault recovery."""

    def __init__(
        self,
        num_workers: int,
        *,
        fault_plan: Optional[RealFaultPlan] = None,
        reassign_budget: int = 3,
        start_method: Optional[str] = None,
        hard_timeout: float = 120.0,
        poll_interval: float = 0.02,
    ):
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if hard_timeout <= 0:
            raise ConfigError("hard_timeout must be > 0")
        ensure_real_backend_supported()
        import multiprocessing

        self.num_workers = num_workers
        self.reassign_budget = reassign_budget
        self.hard_timeout = hard_timeout
        self.poll_interval = poll_interval
        self._fault_plan = fault_plan or RealFaultPlan()
        self._ctx = multiprocessing.get_context(pick_start_method(start_method))
        try:
            self._kill_flags = {
                w: self._ctx.Event() for w in range(num_workers)
            }
        except OSError as exc:  # pragma: no cover - sandbox-dependent
            raise BackendError(
                f"real execution backend unsupported: cannot create "
                f"cooperative kill flags ({exc})"
            ) from exc
        #: workers dead for the rest of this executor's life (deaths
        #: persist across epochs, like a real core going away).
        self.dead_workers: Set[int] = set()
        #: per-worker chain groups completed across all plans.
        self.completed_by_worker: Counter = Counter()
        #: cumulative stats in the shared executor-contract shape.
        self.stats = ReassignStats()
        #: cumulative (round, group_id, worker) log across plans.
        self.assignment_log: List[Tuple[int, int, int]] = []
        #: cumulative wall seconds spent executing plans.
        self.wall_seconds = 0.0
        self._round_counter = 0

    # ------------------------------------------------------------------
    # cooperative fault injection
    # ------------------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """Set a worker's cooperative kill flag: it dies at the next
        chain-group boundary (or before its first group of the next
        round)."""
        if not 0 <= worker_id < self.num_workers:
            raise ConfigError(f"worker {worker_id} out of range")
        self._kill_flags[worker_id].set()

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    def run_plan(self, groups: Sequence[ChainGroupTask]) -> RealRunResult:
        """Execute every group exactly once; re-assign around deaths."""
        started = time.perf_counter()
        plan = sorted(groups, key=lambda g: g.group_id)
        ids = [g.group_id for g in plan]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate group ids in plan: {ids}")
        run = RealRunResult()
        if not plan:
            return run
        assignment: Dict[int, int] = {}
        log_start = len(self.assignment_log)
        first_round = True
        while True:
            pending = [g for g in plan if g.group_id not in run.results]
            if not pending:
                break
            alive = [
                w for w in range(self.num_workers)
                if w not in self.dead_workers
            ]
            if not alive:
                raise ReassignmentError(
                    "real backend: every worker died; chain groups "
                    f"{sorted(g.group_id for g in pending)} have nowhere "
                    "to go"
                )
            if first_round:
                assigned = lpt_assign_groups(pending, alive)
                first_round = False
            else:
                run.rounds += 1
                self.stats.rounds += 1
                if run.rounds > self.reassign_budget:
                    raise ReassignmentError(
                        f"real backend: re-assignment budget "
                        f"({self.reassign_budget}) exhausted with "
                        f"{len(pending)} chain groups unrecovered "
                        f"(dead workers: {sorted(self.dead_workers)})"
                    )
                assigned = lpt_reassign_groups(
                    plan,
                    assignment,
                    completed=set(run.results),
                    dead_workers=self.dead_workers,
                    num_workers=self.num_workers,
                )
                run.groups_reassigned += len(pending)
                run.ops_reassigned += sum(len(g.ops) for g in pending)
                self.stats.groups_reassigned += len(pending)
                self.stats.tasks_reassigned += sum(
                    len(g.ops) for g in pending
                )
            for worker in sorted(assigned):
                for group in assigned[worker]:
                    assignment[group.group_id] = worker
                    self.assignment_log.append(
                        (self._round_counter, group.group_id, worker)
                    )
            self._run_round(assigned, run)
            self._round_counter += 1
        run.dead_workers = tuple(sorted(self.dead_workers))
        run.assignment_log = tuple(self.assignment_log[log_start:])
        run.wall_seconds = time.perf_counter() - started
        self.wall_seconds += run.wall_seconds
        return run

    def _die_after_for(self, worker: int) -> Optional[int]:
        """Remaining completed-group budget before this worker's death."""
        total = self._fault_plan.die_after.get(worker)
        if total is None:
            return None
        return max(0, total - self.completed_by_worker[worker])

    def _run_round(
        self, assigned: Dict[int, List[ChainGroupTask]], run: RealRunResult
    ) -> None:
        """Spawn one process per assigned worker; collect until every
        spawned worker delivered a terminal message (or hard-died)."""
        result_queue = self._ctx.Queue()
        procs: Dict[int, object] = {}
        for worker in sorted(assigned):
            tasks = assigned[worker]
            if not tasks:
                continue
            die_after = self._die_after_for(worker)
            if die_after == 0:
                # The fault plan dooms this worker before any progress:
                # fire its cooperative kill flag up front so the death
                # is observed deterministically at spawn.
                self._kill_flags[worker].set()
            proc = self._ctx.Process(
                target=run_worker,
                args=(
                    worker,
                    tuple(tasks),
                    result_queue,
                    self._kill_flags[worker],
                    die_after,
                    self._fault_plan.straggle.get(worker, 0.0),
                ),
                daemon=True,
            )
            procs[worker] = proc
            proc.start()
        deadline = time.monotonic() + self.hard_timeout
        suspect_since: Dict[int, float] = {}
        terminal: Set[int] = set()
        try:
            while terminal != set(procs):
                try:
                    message = result_queue.get(timeout=self.poll_interval)
                except queue_mod.Empty:
                    now = time.monotonic()
                    if now > deadline:
                        raise RecoveryError(
                            f"real backend: round exceeded hard timeout "
                            f"({self.hard_timeout:.0f}s); workers "
                            f"{sorted(set(procs) - terminal)} unresponsive"
                        )
                    for worker, proc in procs.items():
                        if worker in terminal:
                            continue
                        if proc.is_alive():  # type: ignore[attr-defined]
                            suspect_since.pop(worker, None)
                            continue
                        first_seen = suspect_since.setdefault(worker, now)
                        if now - first_seen >= _HARD_DEATH_GRACE:
                            # Hard death: the process vanished without a
                            # terminal message.  Its delivered results
                            # stand; the remainder re-assigns.
                            self.dead_workers.add(worker)
                            terminal.add(worker)
                    continue
                kind, worker, payload = message[0], message[1], (
                    message[2] if len(message) > 2 else None
                )
                if kind == MSG_RESULT:
                    assert isinstance(payload, GroupResult)
                    gid = payload.group_id
                    run.completions[gid] = run.completions.get(gid, 0) + 1
                    if gid in run.results:
                        raise RecoveryError(
                            f"real backend: chain group {gid} completed "
                            f"{run.completions[gid]} times "
                            "(exactly-once violation)"
                        )
                    run.results[gid] = payload
                    self.completed_by_worker[worker] += 1
                elif kind == MSG_DIED:
                    self.dead_workers.add(worker)
                    terminal.add(worker)
                elif kind == MSG_DONE:
                    terminal.add(worker)
                else:  # pragma: no cover - protocol bug
                    raise RecoveryError(
                        f"real backend: unknown worker message {kind!r}"
                    )
        finally:
            for proc in procs.values():
                proc.join(timeout=1.0)  # type: ignore[attr-defined]
                if proc.is_alive():  # type: ignore[attr-defined]
                    proc.terminate()  # type: ignore[attr-defined]
                    proc.join(timeout=1.0)  # type: ignore[attr-defined]
            result_queue.close()
