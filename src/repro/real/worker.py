"""Child-process loop of the real backend.

One worker process receives its LPT-assigned chain groups up front (the
plan is static within a round), executes them in order and streams one
message per completed group back over the result queue.  The protocol
is three message kinds, all picklable tuples:

- ``("result", worker_id, GroupResult)`` — one group completed;
- ``("died", worker_id, completed_group_ids)`` — the worker honoured a
  fault injection (cooperative kill flag or completed-group budget) and
  is exiting; anything not listed is lost and must be re-assigned;
- ``("done", worker_id)`` — all assigned groups completed.

Fault semantics are **cooperative**: the kill flag and the death budget
are checked at group boundaries, so a "die" is always observable as a
clean ``died`` message and the parent's accounting stays deterministic.
A worker that disappears *without* a terminal message (a genuine crash)
is still detected by the parent via process liveness — it is treated
as a death that reported whatever results already arrived.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.real.descriptors import ChainGroupTask, execute_group

#: message kinds on the result queue.
MSG_RESULT = "result"
MSG_DIED = "died"
MSG_DONE = "done"


def run_worker(
    worker_id: int,
    tasks: Sequence[ChainGroupTask],
    result_queue,
    kill_flag,
    die_after_groups: Optional[int],
    straggle_sleep: float,
) -> None:
    """Execute ``tasks`` in order, honouring cooperative fault flags.

    ``die_after_groups`` is the worker-fault plan's death point: the
    worker completes that many groups *in this round*, then dies.  The
    externally settable ``kill_flag`` (a ``multiprocessing.Event``)
    kills at the next group boundary regardless of the budget.
    ``straggle_sleep`` seconds are slept before every group (the
    straggle fault: the worker still finishes, just slower).
    """
    try:
        # Side-effect imports: make sure every registry-name state
        # function resolvable under the spawn start method (fork
        # inherits the parent's registry; spawn starts clean).
        import repro.workloads  # noqa: F401
        import repro.cluster.sharding  # noqa: F401
    except Exception:
        pass
    completed: List[int] = []
    for task in tasks:
        if kill_flag is not None and kill_flag.is_set():
            result_queue.put((MSG_DIED, worker_id, tuple(completed)))
            return
        if die_after_groups is not None and len(completed) >= die_after_groups:
            result_queue.put((MSG_DIED, worker_id, tuple(completed)))
            return
        if straggle_sleep > 0.0:
            time.sleep(straggle_sleep)
        if task.service_seconds > 0.0:
            # Modeled service time: one sleep per group, proportional to
            # its op count — releases the GIL/CPU, so concurrent groups
            # genuinely overlap and wall-clock speedup reflects plan
            # balance rather than interpreter throughput.
            time.sleep(task.service_seconds)
        result = execute_group(task)
        result_queue.put((MSG_RESULT, worker_id, result))
        completed.append(task.group_id)
    result_queue.put((MSG_DONE, worker_id))


def decode_message(message) -> Tuple[str, int, object]:
    """Normalize a queue message to ``(kind, worker_id, payload)``."""
    kind = message[0]
    worker_id = message[1]
    payload = message[2] if len(message) > 2 else None
    return kind, worker_id, payload
