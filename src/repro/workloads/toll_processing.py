"""Toll Processing (TP): Linear-Road-style congestion tolling [18].

Roads are divided into segments; two mutable tables record the
(exponentially averaged) speed of each segment and the count of unique
vehicles seen on it.  Each vehicle report triggers one state transaction
that updates both records and computes a toll from the resulting
congestion.

Abort profile (§VIII-A): transaction aborting is common in TP.  Here
aborts are *data-dependent*: a report is rejected once its segment's
vehicle count reaches capacity, so hot segments saturate as the stream
progresses and their reports abort — exactly the kind of abort only
resolvable through dependency information.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator

SPEED = "road_speed"
COUNT = "road_count"

#: Toll formula constants: base toll scaled by congestion below the limit.
SPEED_LIMIT = 80.0
BASE_TOLL = 2.0


class TollProcessing(Workload):
    """Vehicle-report stream updating per-segment speed and count tables."""

    name = "TP"

    def __init__(
        self,
        num_segments: int = 512,
        *,
        skew: float = 0.3,
        capacity: float = 60.0,
        alpha: float = 0.3,
        initial_speed: float = 60.0,
        forced_abort_ratio: float = 0.0,
        num_partitions: int = 8,
    ):
        super().__init__(num_partitions)
        if num_segments < 1:
            raise WorkloadError("TP needs at least one segment")
        if not 0.0 < alpha <= 1.0:
            raise WorkloadError("alpha must be in (0, 1]")
        if capacity <= 0:
            raise WorkloadError("capacity must be > 0")
        if not 0.0 <= forced_abort_ratio <= 1.0:
            raise WorkloadError("forced_abort_ratio must be in [0, 1]")
        self.num_segments = num_segments
        self.skew = skew
        self.capacity = capacity
        self.alpha = alpha
        self.initial_speed = initial_speed
        self.forced_abort_ratio = forced_abort_ratio
        self._table_sizes = {SPEED: num_segments, COUNT: num_segments}

    def initial_state(self) -> StateStore:
        return StateStore(
            {
                SPEED: {s: self.initial_speed for s in range(self.num_segments)},
                COUNT: {s: 0.0 for s in range(self.num_segments)},
            }
        )

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        rng = random.Random(seed)
        zipf = ZipfianGenerator(self.num_segments, self.skew, rng)
        events: List[Event] = []
        for seq in range(num_events):
            segment = zipf.next()
            speed = round(rng.uniform(20.0, 100.0), 2)
            forced = rng.random() < self.forced_abort_ratio
            events.append(Event(seq, "report", (segment, speed, forced)))
        return events

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind != "report":
            raise WorkloadError(f"unknown TP event kind {event.kind!r}")
        segment, speed, forced = event.payload
        speed_ref = StateRef(SPEED, segment)
        count_ref = StateRef(COUNT, segment)
        ops = (
            Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=speed_ref,
                func="ewma",
                params=(speed, self.alpha),
            ),
            Operation(
                uid=uid_base + 1,
                txn_id=event.seq,
                ts=event.seq,
                ref=count_ref,
                func="increment",
            ),
        )
        conditions = (Condition("lt", (count_ref,), (self.capacity,)),)
        if forced:
            conditions += (Condition("lt", (count_ref,), (float("-inf"),)),)
        return Transaction(event.seq, event.seq, event, ops, conditions)

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        if not committed:
            return ("report", "rejected")
        avg_speed = op_values[txn.ops[0].uid]
        congestion = max(0.0, 1.0 - avg_speed / SPEED_LIMIT)
        toll = round(BASE_TOLL * congestion, 6)
        return ("toll", toll)
