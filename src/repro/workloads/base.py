"""Workload contract shared by the three benchmark applications.

A workload owns four deterministic mappings:

1. ``initial_state()`` — the shared mutable tables before any event;
2. ``generate(n, seed)`` — a seedable event stream;
3. ``build_transaction(event, uid_base)`` — preprocessing: the exact
   state transaction an event triggers (Def. 2), with operation uids
   assigned from ``uid_base``;
4. ``output_for(txn, committed, op_values)`` — postprocessing: the
   output the event delivers downstream.

Determinism of (3) and (4) is what makes command logging and event
replay sound: rebuilding a transaction from its persisted event always
yields the same read/write sets and the same output.

Workloads also expose key-range partitioning (``partition_of``), the
notion behind *multi-partition transactions*: state is range-partitioned
across workers, and a transaction touching several partitions induces
the cross-partition dependencies MorphStreamR's selective logging is
about.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

from repro.engine.events import Event
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError


class Workload(ABC):
    """Deterministic TSP application: generator + transaction templates."""

    name = "abstract"

    def __init__(self, num_partitions: int = 8):
        if num_partitions < 1:
            raise WorkloadError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        #: table name -> number of integer keys (0..n-1); subclasses fill.
        self._table_sizes: Dict[str, int] = {}

    @abstractmethod
    def initial_state(self) -> StateStore:
        """A fresh store holding the application's initial tables."""

    @abstractmethod
    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        """A deterministic stream of ``num_events`` events."""

    @abstractmethod
    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        """Preprocessing: the state transaction ``event`` triggers."""

    @abstractmethod
    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        """Postprocessing: the downstream output of one event."""

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------

    def partition_of(self, ref: StateRef) -> int:
        """Range partition of a record: ``key * P // table_size``.

        Integer keys are required; this is the partitioning that defines
        "multi-partition transactions" in the sensitivity studies.
        """
        size = self._table_sizes.get(ref.table)
        if size is None:
            raise WorkloadError(f"unknown table {ref.table!r}")
        if not isinstance(ref.key, int) or not 0 <= ref.key < size:
            raise WorkloadError(f"key {ref.key!r} outside table {ref.table!r}")
        return ref.key * self.num_partitions // size

    def partition_bounds(self, table: str, partition: int) -> Tuple[int, int]:
        """Half-open key range ``[lo, hi)`` of one partition of a table."""
        size = self._table_sizes.get(table)
        if size is None:
            raise WorkloadError(f"unknown table {table!r}")
        if not 0 <= partition < self.num_partitions:
            raise WorkloadError(f"partition {partition} out of range")
        lo = -(-size * partition // self.num_partitions)  # ceil division
        hi = -(-size * (partition + 1) // self.num_partitions)
        return lo, hi

    def spans_partitions(self, txn: Transaction) -> bool:
        """True if the transaction touches more than one partition."""
        parts = {self.partition_of(op.ref) for op in txn.ops}
        for cond_ref in txn.read_set():
            parts.add(self.partition_of(cond_ref))
        return len(parts) > 1
