"""Seedable Zipfian key generator (Gray et al. / YCSB construction).

The paper models state-access skewness with a Zipfian distribution
(§VI-B1).  This is the standard O(1)-per-sample generator: item ``i``
(0-based) is drawn with probability proportional to ``1 / (i+1)^theta``.
``theta = 0`` degenerates to uniform; ``theta`` is clamped below 1
(the closed form diverges at 1).
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError

_MAX_THETA = 0.9999


class ZipfianGenerator:
    """Draw ints in ``[0, num_items)`` with Zipfian skew ``theta``."""

    def __init__(self, num_items: int, theta: float, rng: random.Random):
        if num_items < 1:
            raise WorkloadError("num_items must be >= 1")
        if theta < 0:
            raise WorkloadError("theta must be >= 0")
        self._n = num_items
        self._theta = min(theta, _MAX_THETA)
        self._rng = rng
        self._cumulative = None
        if self._theta == 0.0:
            self._uniform = True
            return
        self._uniform = False
        self._zetan = self._zeta(num_items, self._theta)
        if num_items <= 2:
            # The closed-form construction degenerates for tiny spaces
            # (its eta denominator vanishes at n = 2); sample the exact
            # distribution directly instead.
            total = 0.0
            cumulative = []
            for i in range(num_items):
                total += (1.0 / ((i + 1) ** self._theta)) / self._zetan
                cumulative.append(total)
            self._cumulative = cumulative
            return
        zeta2 = self._zeta(2, self._theta)
        self._alpha = 1.0 / (1.0 - self._theta)
        self._eta = (1.0 - (2.0 / num_items) ** (1.0 - self._theta)) / (
            1.0 - zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        if self._uniform or self._n == 1:
            return self._rng.randrange(self._n)
        if self._cumulative is not None:
            u = self._rng.random()
            for index, threshold in enumerate(self._cumulative):
                if u < threshold:
                    return index
            return self._n - 1
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        return int(self._n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_excluding(self, *exclude: int) -> int:
        """Draw until the sample avoids every value in ``exclude``.

        Used when a transaction needs distinct keys (e.g. the two sides
        of a transfer).  With skew the hottest key is often excluded, so
        a bounded retry plus a deterministic linear fallback guarantees
        termination even for tiny key spaces.
        """
        if len(set(exclude)) >= self._n:
            raise WorkloadError(
                f"cannot draw from {self._n} items excluding {len(exclude)}"
            )
        banned = set(exclude)
        for _ in range(64):
            candidate = self.next()
            if candidate not in banned:
                return candidate
        candidate = self.next()
        while candidate in banned:
            candidate = (candidate + 1) % self._n
        return candidate
