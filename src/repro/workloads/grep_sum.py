"""Grep&Sum (GS): skewed shared-state summation.

Each *sum* transaction reads a list of states and writes a summation
result back to the first one (§VIII-A) — one operation with a cross-key
read set, so every list element contributes one parametric dependency.
GS is the flexible workload of the sensitivity study (Fig. 14): skew,
multi-partition ratio, abort ratio and read-list length are all dials.

A *write* event kind (blind deposit) supports the write-only
configuration of Fig. 14b.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator

TABLE = "records"


class GrepSum(Workload):
    """Read a Zipfian list of records, write the summation to the first."""

    name = "GS"

    def __init__(
        self,
        num_keys: int = 4096,
        *,
        list_len: int = 4,
        skew: float = 0.5,
        write_ratio: float = 0.0,
        multi_partition_ratio: float = 0.5,
        abort_ratio: float = 0.0,
        initial_value: float = 1.0,
        num_partitions: int = 8,
    ):
        super().__init__(num_partitions)
        if num_keys < max(2, list_len):
            raise WorkloadError("num_keys must cover the read list")
        if list_len < 1:
            raise WorkloadError("list_len must be >= 1")
        for name, ratio in (
            ("write_ratio", write_ratio),
            ("multi_partition_ratio", multi_partition_ratio),
            ("abort_ratio", abort_ratio),
        ):
            if not 0.0 <= ratio <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1]")
        self.num_keys = num_keys
        self.list_len = list_len
        self.skew = skew
        self.write_ratio = write_ratio
        self.multi_partition_ratio = multi_partition_ratio
        self.abort_ratio = abort_ratio
        self.initial_value = initial_value
        self._table_sizes = {TABLE: num_keys}

    def initial_state(self) -> StateStore:
        return StateStore(
            {TABLE: {k: self.initial_value for k in range(self.num_keys)}}
        )

    def _read_list(self, rng: random.Random, zipf: ZipfianGenerator) -> List[int]:
        """First key Zipfian; remaining keys same/cross partition."""
        first = zipf.next()
        keys = [first]
        first_part = first * self.num_partitions // self.num_keys
        while len(keys) < self.list_len:
            cross = rng.random() < self.multi_partition_ratio
            if cross and self.num_partitions > 1:
                part = rng.randrange(self.num_partitions - 1)
                if part >= first_part:
                    part += 1
            else:
                part = first_part
            lo, hi = self.partition_bounds(TABLE, part)
            candidate = rng.randrange(lo, hi)
            attempts = 0
            while candidate in keys and attempts < hi - lo:
                candidate = lo + (candidate - lo + 1) % (hi - lo)
                attempts += 1
            if candidate in keys:
                raise WorkloadError("partition too small for distinct read list")
            keys.append(candidate)
        return keys

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        rng = random.Random(seed)
        zipf = ZipfianGenerator(self.num_keys, self.skew, rng)
        events: List[Event] = []
        for seq in range(num_events):
            if rng.random() < self.write_ratio:
                key = zipf.next()
                value = round(rng.uniform(0.0, 1.0), 4)
                events.append(Event(seq, "write", (key, value)))
            else:
                keys = self._read_list(rng, zipf)
                contribution = round(rng.uniform(0.0, 0.1), 4)
                forced = rng.random() < self.abort_ratio
                events.append(
                    Event(seq, "sum", (tuple(keys), contribution, forced))
                )
        return events

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind == "write":
            key, value = event.payload
            op = Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=StateRef(TABLE, key),
                func="deposit",
                params=(value,),
            )
            return Transaction(event.seq, event.seq, event, (op,))
        if event.kind == "sum":
            keys, contribution, forced = event.payload
            refs = [StateRef(TABLE, k) for k in keys]
            op = Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=refs[0],
                func="grep_sum",
                params=(contribution,),
                reads=tuple(refs[1:]),
            )
            conditions = ()
            if forced:
                conditions = (
                    Condition("lt", (refs[0],), (float("-inf"),)),
                )
            return Transaction(event.seq, event.seq, event, (op,), conditions)
        raise WorkloadError(f"unknown GS event kind {event.kind!r}")

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        if not committed:
            return (txn.event.kind, "aborted")
        return (txn.event.kind, round(op_values[txn.ops[0].uid], 9))
