"""Online Bidding (OB): auction items with price and quantity state.

One of the stream applications the paper's introduction motivates
(online bidding) and a standard member of the MorphStream benchmark
family.  Two mutable tables per item — asking price and remaining
quantity — and three event kinds:

- **bid**: buy ``qty`` units at ``offer`` — commits only if the offer
  meets the asking price *and* enough quantity remains (two conditions,
  i.e. rich logical dependencies), decrementing quantity and raising
  the price by a small premium;
- **alter**: the seller adjusts the asking price (EWMA toward a target);
- **topup**: the seller restocks quantity.

Bids on hot items naturally abort once quantity runs out or prices
climb past the offers — data-dependent aborts like Toll Processing, but
with *two* interacting conditions per transaction.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator

PRICE = "ask_price"
QUANTITY = "quantity"


class OnlineBidding(Workload):
    """Bid/alter/topup stream over per-item price and quantity tables."""

    name = "OB"

    def __init__(
        self,
        num_items: int = 512,
        *,
        bid_ratio: float = 0.8,
        alter_ratio: float = 0.1,
        skew: float = 0.5,
        initial_price: float = 50.0,
        initial_quantity: float = 40.0,
        price_premium: float = 0.02,
        num_partitions: int = 8,
    ):
        super().__init__(num_partitions)
        if num_items < 1:
            raise WorkloadError("OB needs at least one item")
        if not 0.0 <= bid_ratio <= 1.0 or not 0.0 <= alter_ratio <= 1.0:
            raise WorkloadError("ratios must be in [0, 1]")
        if bid_ratio + alter_ratio > 1.0:
            raise WorkloadError("bid_ratio + alter_ratio must not exceed 1")
        if initial_price <= 0 or initial_quantity <= 0:
            raise WorkloadError("initial price and quantity must be positive")
        if not 0.0 <= price_premium < 1.0:
            raise WorkloadError("price_premium must be in [0, 1)")
        self.num_items = num_items
        self.bid_ratio = bid_ratio
        self.alter_ratio = alter_ratio
        self.skew = skew
        self.initial_price = initial_price
        self.initial_quantity = initial_quantity
        self.price_premium = price_premium
        self._table_sizes = {PRICE: num_items, QUANTITY: num_items}

    def initial_state(self) -> StateStore:
        return StateStore(
            {
                PRICE: {i: self.initial_price for i in range(self.num_items)},
                QUANTITY: {
                    i: self.initial_quantity for i in range(self.num_items)
                },
            }
        )

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        rng = random.Random(seed)
        zipf = ZipfianGenerator(self.num_items, self.skew, rng)
        events: List[Event] = []
        for seq in range(num_events):
            item = zipf.next()
            draw = rng.random()
            if draw < self.bid_ratio:
                # Offers cluster around the initial price; hot items
                # drift above it and start rejecting low offers.
                offer = round(
                    rng.uniform(0.8, 1.6) * self.initial_price, 2
                )
                qty = float(rng.randint(1, 3))
                events.append(Event(seq, "bid", (item, offer, qty)))
            elif draw < self.bid_ratio + self.alter_ratio:
                target = round(rng.uniform(0.7, 1.4) * self.initial_price, 2)
                events.append(Event(seq, "alter", (item, target)))
            else:
                amount = float(rng.randint(5, 20))
                events.append(Event(seq, "topup", (item, amount)))
        return events

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind == "bid":
            item, offer, qty = event.payload
            price_ref = StateRef(PRICE, item)
            qty_ref = StateRef(QUANTITY, item)
            ops = (
                Operation(
                    uid=uid_base,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=qty_ref,
                    func="debit",
                    params=(qty,),
                ),
                Operation(
                    uid=uid_base + 1,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=price_ref,
                    func="scale_add",
                    params=(1.0 + self.price_premium, 0.0),
                ),
            )
            conditions = (
                # Enough stock remains...
                Condition("ge", (qty_ref,), (qty,)),
                # ...and the offer clears the current asking price.
                Condition("lt", (price_ref,), (offer,)),
            )
            return Transaction(event.seq, event.seq, event, ops, conditions)
        if event.kind == "alter":
            item, target = event.payload
            op = Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=StateRef(PRICE, item),
                func="ewma",
                params=(target, 0.5),
            )
            return Transaction(event.seq, event.seq, event, (op,))
        if event.kind == "topup":
            item, amount = event.payload
            op = Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=StateRef(QUANTITY, item),
                func="deposit",
                params=(amount,),
            )
            return Transaction(event.seq, event.seq, event, (op,))
        raise WorkloadError(f"unknown OB event kind {event.kind!r}")

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        kind = txn.event.kind
        if kind == "bid":
            if not committed:
                return ("bid", "rejected")
            remaining = op_values[txn.ops[0].uid]
            return ("bid", "won", round(remaining, 6))
        if not committed:  # pragma: no cover - alters/topups never abort
            return (kind, "aborted")
        return (kind, round(op_values[txn.ops[0].uid], 6))
