"""The paper's three benchmark applications (§VIII-A).

- :class:`~repro.workloads.streaming_ledger.StreamingLedger` (SL) —
  money/asset transfers with parametric dependencies between accounts;
- :class:`~repro.workloads.grep_sum.GrepSum` (GS) — read a list of
  states and write a summation back; highly skewable;
- :class:`~repro.workloads.toll_processing.TollProcessing` (TP) —
  Linear-Road-style toll computation where transaction aborts are
  common.

Beyond the paper's three, :class:`~repro.workloads.online_bidding.
OnlineBidding` (OB, from the wider MorphStream benchmark family) and
:class:`~repro.workloads.synthetic.SyntheticWorkload` (randomized
transaction shapes for differential testing) are available.

All generators are seedable and fully deterministic.
"""

from repro.workloads.base import Workload
from repro.workloads.grep_sum import GrepSum
from repro.workloads.online_bidding import OnlineBidding
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.toll_processing import TollProcessing
from repro.workloads.zipf import ZipfianGenerator

__all__ = [
    "Workload",
    "StreamingLedger",
    "GrepSum",
    "TollProcessing",
    "OnlineBidding",
    "SyntheticWorkload",
    "ZipfianGenerator",
]
