"""Synthetic workload: randomized-but-deterministic transaction shapes.

The three paper benchmarks exercise fixed transaction templates.  For
differential testing of the engine and the recovery schemes we also
want *arbitrary* shapes: transactions with many operations, cross-table
read sets of varying width, zero or several conditions, and any mix of
natural (value-dependent) and forced aborts.  ``SyntheticWorkload``
draws such shapes from a seeded RNG, so every stress case is replayable
from its parameters.

All built-in state functions are fair game for operations; conditions
compare a read record against a threshold drawn so that both outcomes
actually occur over a run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator

#: Operation templates: (function name, #params, #reads it consumes).
_OP_TEMPLATES: Tuple[Tuple[str, int, int], ...] = (
    ("deposit", 1, 0),
    ("debit", 1, 0),
    ("credit_from", 1, 1),
    ("grep_sum", 1, 2),
    ("ewma", 2, 0),
    ("scale_add", 2, 0),
)

#: Condition templates comparing one read value against a threshold.
_COND_TEMPLATES: Tuple[str, ...] = ("ge", "lt", "gt")


class SyntheticWorkload(Workload):
    """Random transaction shapes over a configurable set of tables."""

    name = "SYN"

    def __init__(
        self,
        num_keys: int = 256,
        *,
        num_tables: int = 3,
        max_ops: int = 4,
        max_conditions: int = 2,
        skew: float = 0.4,
        condition_ratio: float = 0.5,
        forced_abort_ratio: float = 0.05,
        initial_value: float = 100.0,
        num_partitions: int = 4,
    ):
        super().__init__(num_partitions)
        if num_keys < max_ops + 3:
            raise WorkloadError("num_keys must exceed max_ops plus read slack")
        if num_tables < 1:
            raise WorkloadError("need at least one table")
        if max_ops < 1:
            raise WorkloadError("max_ops must be >= 1")
        for name, ratio in (
            ("condition_ratio", condition_ratio),
            ("forced_abort_ratio", forced_abort_ratio),
        ):
            if not 0.0 <= ratio <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1]")
        self.num_keys = num_keys
        self.num_tables = num_tables
        self.max_ops = max_ops
        self.max_conditions = max_conditions
        self.skew = skew
        self.condition_ratio = condition_ratio
        self.forced_abort_ratio = forced_abort_ratio
        self.initial_value = initial_value
        self.tables = tuple(f"syn{t}" for t in range(num_tables))
        self._table_sizes = {t: num_keys for t in self.tables}

    def initial_state(self) -> StateStore:
        return StateStore(
            {
                t: {k: self.initial_value for k in range(self.num_keys)}
                for t in self.tables
            }
        )

    def _ref(self, rng: random.Random, zipf: ZipfianGenerator) -> Tuple[str, int]:
        return (self.tables[rng.randrange(self.num_tables)], zipf.next())

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        """Each event's payload fully describes its transaction shape."""
        rng = random.Random(seed)
        zipf = ZipfianGenerator(self.num_keys, self.skew, rng)
        events: List[Event] = []
        for seq in range(num_events):
            num_ops = rng.randint(1, self.max_ops)
            ops = []
            written: set = set()
            for _ in range(num_ops):
                func, num_params, num_reads = _OP_TEMPLATES[
                    rng.randrange(len(_OP_TEMPLATES))
                ]
                ref = self._ref(rng, zipf)
                attempts = 0
                while ref in written and attempts < 32:
                    ref = self._ref(rng, zipf)
                    attempts += 1
                if ref in written:
                    continue
                written.add(ref)
                if func == "ewma":
                    params = (round(rng.uniform(0.0, 200.0), 4), 0.5)
                elif func == "scale_add":
                    params = (
                        round(rng.uniform(0.5, 0.99), 4),
                        round(rng.uniform(0.0, 5.0), 4),
                    )
                else:
                    params = tuple(
                        round(rng.uniform(0.0, 10.0), 4)
                        for _ in range(num_params)
                    )
                reads = tuple(
                    self._ref(rng, zipf) for _ in range(num_reads)
                )
                ops.append((ref, func, params, reads))
            conditions = []
            if rng.random() < self.condition_ratio:
                for _ in range(rng.randint(1, self.max_conditions)):
                    func = _COND_TEMPLATES[rng.randrange(len(_COND_TEMPLATES))]
                    ref = self._ref(rng, zipf)
                    # Thresholds straddle the value range so conditions
                    # pass sometimes and fail sometimes.
                    threshold = round(rng.uniform(0.0, 2 * self.initial_value), 4)
                    conditions.append((func, ref, (threshold,)))
            if rng.random() < self.forced_abort_ratio:
                ref = self._ref(rng, zipf)
                conditions.append(("lt", ref, (float("-inf"),)))
            events.append(Event(seq, "syn", (tuple(ops), tuple(conditions))))
        return events

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind != "syn":
            raise WorkloadError(f"unexpected event kind {event.kind!r}")
        raw_ops, raw_conditions = event.payload
        ops = tuple(
            Operation(
                uid=uid_base + index,
                txn_id=event.seq,
                ts=event.seq,
                ref=StateRef(*ref),
                func=func,
                params=tuple(params),
                reads=tuple(StateRef(*r) for r in reads),
            )
            for index, (ref, func, params, reads) in enumerate(raw_ops)
        )
        conditions = tuple(
            Condition(func, (StateRef(*ref),), tuple(params))
            for func, ref, params in raw_conditions
        )
        return Transaction(event.seq, event.seq, event, ops, conditions)

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        if not committed:
            return ("syn", "aborted")
        return ("syn", round(sum(op_values[op.uid] for op in txn.ops), 6))
