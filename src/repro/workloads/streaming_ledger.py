"""Streaming Ledger (SL): the paper's flagship TSP application.

Transfers money and assets between user accounts (Fig. 1): *deposit*
events top up one account and one asset record; *transfer* events move
a balance between two accounts and between two asset records, guarded
by sufficient-balance conditions on the source records.

Dependency profile (§VIII-A): a relatively high number of dependencies —
the balance conditions parametrically depend on earlier writers of the
source records, and the four writes of a transfer are logically
dependent on the condition check.  Transfers whose destination lies in
a different range partition produce the multi-partition transactions
studied in Figs. 12b and 14a.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator

ACCOUNTS = "accounts"
ASSETS = "assets"


class StreamingLedger(Workload):
    """Deposit/transfer stream over an accounts table and an assets table."""

    name = "SL"

    def __init__(
        self,
        num_accounts: int = 1024,
        *,
        transfer_ratio: float = 0.5,
        multi_partition_ratio: float = 0.2,
        skew: float = 0.2,
        initial_balance: float = 10_000.0,
        max_amount: float = 100.0,
        forced_abort_ratio: float = 0.0,
        query_ratio: float = 0.0,
        num_partitions: int = 8,
    ):
        super().__init__(num_partitions)
        if num_accounts < 2:
            raise WorkloadError("SL needs at least two accounts")
        if not 0.0 <= transfer_ratio <= 1.0:
            raise WorkloadError("transfer_ratio must be in [0, 1]")
        if not 0.0 <= multi_partition_ratio <= 1.0:
            raise WorkloadError("multi_partition_ratio must be in [0, 1]")
        if not 0.0 <= forced_abort_ratio <= 1.0:
            raise WorkloadError("forced_abort_ratio must be in [0, 1]")
        if not 0.0 <= query_ratio <= 1.0:
            raise WorkloadError("query_ratio must be in [0, 1]")
        self.num_accounts = num_accounts
        self.transfer_ratio = transfer_ratio
        self.multi_partition_ratio = multi_partition_ratio
        self.skew = skew
        self.initial_balance = initial_balance
        self.max_amount = max_amount
        self.forced_abort_ratio = forced_abort_ratio
        self.query_ratio = query_ratio
        self._table_sizes = {ACCOUNTS: num_accounts, ASSETS: num_accounts}

    def initial_state(self) -> StateStore:
        records = {k: self.initial_balance for k in range(self.num_accounts)}
        return StateStore({ACCOUNTS: dict(records), ASSETS: dict(records)})

    def _pick_partner(
        self, rng: random.Random, src: int, cross_partition: bool
    ) -> int:
        """Destination key: same partition as ``src`` unless crossing."""
        src_part = src * self.num_partitions // self.num_accounts
        if cross_partition and self.num_partitions > 1:
            part = rng.randrange(self.num_partitions - 1)
            if part >= src_part:
                part += 1
        else:
            part = src_part
        lo, hi = self.partition_bounds(ACCOUNTS, part)
        dst = rng.randrange(lo, hi)
        if dst == src:  # same partition may collide; nudge deterministically
            dst = lo + (dst - lo + 1) % (hi - lo)
        if dst == src:
            raise WorkloadError("partition too small for distinct partner")
        return dst

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        rng = random.Random(seed)
        zipf = ZipfianGenerator(self.num_accounts, self.skew, rng)
        events: List[Event] = []
        for seq in range(num_events):
            amount_a = round(rng.uniform(1.0, self.max_amount), 2)
            amount_b = round(rng.uniform(1.0, self.max_amount), 2)
            forced = rng.random() < self.forced_abort_ratio
            if rng.random() < self.query_ratio:
                events.append(Event(seq, "query", (zipf.next(),)))
                continue
            if rng.random() < self.transfer_ratio:
                src = zipf.next()
                cross = rng.random() < self.multi_partition_ratio
                dst = self._pick_partner(rng, src, cross)
                payload = (src, dst, amount_a, amount_b, forced)
                events.append(Event(seq, "transfer", payload))
            else:
                acc = zipf.next()
                ast = zipf.next()
                events.append(
                    Event(seq, "deposit", (acc, ast, amount_a, amount_b, forced))
                )
        return events

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind == "query":
            # A read-only balance inquiry (Def. 1's R_t(k)): the value
            # at the query's timestamp, observed via the chain but
            # leaving the account unchanged.
            (account,) = event.payload
            op = Operation(
                uid=uid_base,
                txn_id=event.seq,
                ts=event.seq,
                ref=StateRef(ACCOUNTS, account),
                func="identity",
            )
            return Transaction(event.seq, event.seq, event, (op,))
        if event.kind == "deposit":
            acc, ast, amount_a, amount_b, forced = event.payload
            ops = (
                Operation(
                    uid=uid_base,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=StateRef(ACCOUNTS, acc),
                    func="deposit",
                    params=(amount_a,),
                ),
                Operation(
                    uid=uid_base + 1,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=StateRef(ASSETS, ast),
                    func="deposit",
                    params=(amount_b,),
                ),
            )
            conditions = self._forced_condition(event, forced)
            return Transaction(event.seq, event.seq, event, ops, conditions)
        if event.kind == "transfer":
            src, dst, amount_a, amount_b, forced = event.payload
            src_acc = StateRef(ACCOUNTS, src)
            dst_acc = StateRef(ACCOUNTS, dst)
            src_ast = StateRef(ASSETS, src)
            dst_ast = StateRef(ASSETS, dst)
            # The destination writes read the source record, following
            # Fig. 3 of the paper (O3 = W(B, f3(B, A, V2)) reads A):
            # crediting is parametrically dependent on the debited state.
            ops = (
                Operation(
                    uid=uid_base,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=src_acc,
                    func="debit",
                    params=(amount_a,),
                ),
                Operation(
                    uid=uid_base + 1,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=dst_acc,
                    func="credit_from",
                    params=(amount_a,),
                    reads=(src_acc,),
                ),
                Operation(
                    uid=uid_base + 2,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=src_ast,
                    func="debit",
                    params=(amount_b,),
                ),
                Operation(
                    uid=uid_base + 3,
                    txn_id=event.seq,
                    ts=event.seq,
                    ref=dst_ast,
                    func="credit_from",
                    params=(amount_b,),
                    reads=(src_ast,),
                ),
            )
            conditions = (
                Condition("ge", (src_acc,), (amount_a,)),
                Condition("ge", (src_ast,), (amount_b,)),
            ) + self._forced_condition(event, forced)
            return Transaction(event.seq, event.seq, event, ops, conditions)
        raise WorkloadError(f"unknown SL event kind {event.kind!r}")

    @staticmethod
    def _forced_condition(event: Event, forced: bool) -> tuple:
        if not forced:
            return ()
        # A deterministic always-false predicate over a real state read,
        # used by sensitivity studies to dial the abort ratio.
        table = ACCOUNTS
        key = event.payload[0]
        return (Condition("lt", (StateRef(table, key),), (float("-inf"),)),)

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        if not committed:
            return (txn.event.kind, "aborted")
        value = round(op_values[txn.ops[0].uid], 6)
        if txn.event.kind == "transfer":
            return ("invoice", value)
        if txn.event.kind == "query":
            return ("query", value)
        return ("balance", value)
