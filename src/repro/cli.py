"""Command-line interface: run experiments and figure reproductions.

Subcommands::

    repro list                      # available workloads/schemes/figures
    repro run --workload SL --scheme MSR [sizing options]
    repro recover --backend real [--bench BENCH_realexec.json]
    repro figure fig11 [--quick]
    repro chaos [--smoke] [--seed N] [--max-mttr S] [--backend real]
    repro cluster --shards 8 --placement checkpoint_spread --kill rack:0
    repro soak [--smoke] [--mode single|cluster|both] [--bench BENCH_soak.json]
    repro check [--budget N] [--max-depth D] [--replay repro.json]
    repro figgate [--bench BENCH_fig11.json] [--update]

``repro run`` executes one runtime → crash → recovery experiment with
full verification and prints both reports; ``repro figure`` regenerates
one of the paper's evaluation figures and prints the series the figure
plots (the same output the benchmarks produce).  ``repro chaos`` sweeps
storage faults × mid-epoch crash points × schemes and verifies that
every cell either recovers exactly (possibly through the fallback
ladder) or fails loudly with a documented storage error.  ``repro
cluster`` runs a sharded cluster across a failure-domain topology,
injects a correlated kill (whole node or whole rack), recovers the dead
shards in parallel on the survivors and verifies the result against the
serial single-instance ground truth.  ``repro soak`` runs the
sustained-traffic SLA soak — seeded crash schedule, degraded-mode
serving, token-bucket admission — grades the run against declarative
SLO targets and gates its metrics against the committed
``BENCH_soak.json`` perf trajectory.

``repro recover`` runs one crash-recovery cycle on a selectable
execution backend: ``sim`` (virtual clocks, the default everywhere) or
``real`` (chain groups on actual cores via multiprocessing,
cross-validated against the virtual replay).  With ``--bench`` it sweeps
worker counts and exports the wall-clock speedup curve as
``BENCH_realexec.json``.

``repro check`` is the systematic fault-schedule explorer: it
enumerates combinations of storage faults, mid-epoch crashes,
recovery-worker failures, crashes at registered recovery milestones and
correlated cluster kills under a run budget, checks every run against
the declarative invariant registry, delta-debugs any violation to a
minimal fault set and emits a replayable repro file; ``--replay``
re-triggers a saved counterexample deterministically.

Exit codes are CI contracts (see :mod:`repro.exitcodes` and the README
table): ``chaos`` and ``soak`` return non-zero on any verification
failure, data loss, SLO breach or perf regression.  Exit code ``3`` is
reserved for backend-selection failures: requesting ``--backend real``
on a host that cannot spawn worker processes, or with a worker count
below 1, fails loudly *before* any work starts.  Exit code ``4`` means
``repro check`` found (or ``--replay`` reproduced) an invariant
violation — distinct from ``1`` (coverage gap or harness failure) so CI
can route counterexamples to the artifact-upload path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import SCHEMES
from repro.buckets import RECOVERY_BUCKETS, RUNTIME_OVERHEAD_BUCKETS
from repro.harness import figures
from repro.harness.calibration import all_hold, run_calibration
from repro.harness.plot import bar_chart, line_chart
from repro.harness.report import (
    format_seconds,
    format_throughput,
    print_figure,
    render_table,
)
from repro.harness.runner import ExperimentConfig, run_experiment

# Exit codes live in repro.exitcodes (one definition for every
# entrypoint); re-exported here because callers and tests historically
# import them from the CLI module.
from repro.exitcodes import (  # noqa: F401  (re-export)
    EXIT_BACKEND,
    EXIT_FAILURE,
    EXIT_INVARIANT,
    EXIT_OK,
    EXIT_USAGE,
)

#: figure name -> (callable, human description).
FIGURES: Dict[str, tuple] = {
    "fig2": (figures.fig2_motivation, "runtime vs recovery per scheme (SL)"),
    "fig9": (figures.fig9_commit_epochs, "commitment-epoch trade-off (GS)"),
    "fig11": (figures.fig11_breakdown, "recovery-time breakdown per scheme"),
    "fig11d": (figures.fig11d_factor, "factor analysis of MSR optimizations"),
    "fig12a": (figures.fig12a_runtime, "runtime throughput per scheme"),
    "fig12b": (figures.fig12b_selective, "selective-logging efficiency"),
    "fig12c": (figures.fig12c_memory, "peak memory footprint per scheme"),
    "fig12d": (figures.fig12d_overhead, "runtime overhead breakdown"),
    "fig13": (figures.fig13_scalability, "recovery scalability vs cores"),
    "fig14a": (figures.fig14a_multi_partition, "multi-partition sensitivity"),
    "fig14b": (figures.fig14b_skew, "skew sensitivity (write-only)"),
    "fig14c": (figures.fig14c_aborts, "abort-ratio sensitivity"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MorphStreamR reproduction: fault-tolerant "
        "transactional stream processing experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schemes and figures")

    run = sub.add_parser(
        "run", help="run one crash-recovery experiment with verification"
    )
    run.add_argument(
        "--workload", choices=sorted(figures.WORKLOADS), default="SL"
    )
    run.add_argument("--scheme", choices=sorted(SCHEMES), default="MSR")
    run.add_argument(
        "--hybrid",
        action="store_true",
        help="PACMAN only: split static batches at chain granularity "
        "and schedule like MSR (pays sync on cut dependencies)",
    )
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--epoch-len", type=int, default=256)
    run.add_argument("--snapshot-interval", type=int, default=5)
    run.add_argument(
        "--recover-epochs",
        type=int,
        default=4,
        help="epochs lost between the last checkpoint and the crash",
    )
    run.add_argument("--seed", type=int, default=7)

    recover = sub.add_parser(
        "recover",
        help="run one crash-recovery cycle on a selectable execution "
        "backend (sim or real cores), with optional speedup benchmark",
    )
    recover.add_argument(
        "--workload", choices=sorted(figures.WORKLOADS), default="GS"
    )
    recover.add_argument(
        "--scheme",
        choices=sorted(s for s in SCHEMES if s != "NAT"),
        default="MSR",
    )
    recover.add_argument(
        "--hybrid",
        action="store_true",
        help="PACMAN only: chain-granularity hybrid scheduling",
    )
    recover.add_argument("--workers", type=int, default=4)
    recover.add_argument("--epoch-len", type=int, default=256)
    recover.add_argument("--snapshot-interval", type=int, default=4)
    recover.add_argument(
        "--recover-epochs",
        type=int,
        default=3,
        help="epochs lost between the last checkpoint and the crash",
    )
    recover.add_argument("--seed", type=int, default=7)
    recover.add_argument(
        "--backend",
        choices=("sim", "real"),
        default="sim",
        help="execution backend: virtual clocks (sim) or actual cores "
        "via multiprocessing (real)",
    )
    recover.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="real backend: modeled service seconds per operation "
        "(one proportional sleep per chain group; 0 disables)",
    )
    recover.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="real backend: multiprocessing start method (default: "
        "fork when available)",
    )
    recover.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="PATH",
        help="run the 1→N-worker wall-clock speedup sweep on the real "
        "backend and export the curve as JSON (e.g. BENCH_realexec.json)",
    )
    recover.add_argument(
        "--bench-workers",
        default="1,2,4",
        metavar="CSV",
        help="worker counts swept by --bench",
    )

    fig = sub.add_parser("figure", help="reproduce one evaluation figure")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced test-size scale instead of benchmark scale",
    )
    fig.add_argument(
        "--plot",
        action="store_true",
        help="additionally render an ASCII chart of the figure",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep storage faults × crash points × schemes and verify "
        "every recovery",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (5 schemes × 2 faults × 2 crash points) for CI",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--schemes",
        default=None,
        metavar="CSV",
        help="comma-separated scheme subset (e.g. MSR,WAL); default: "
        "the full sweep's schemes",
    )
    chaos.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the cluster-kill cell family",
    )
    chaos.add_argument(
        "--max-mttr",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO gate: fail (exit 1) if any cell's MTTR exceeds this "
        "bound (virtual seconds)",
    )
    chaos.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="export the full sweep (per-cell ladder histogram, "
        "re-assignment counters, wasted-work ratios) as JSON",
    )
    chaos.add_argument(
        "--backend",
        choices=("sim", "real"),
        default="sim",
        help="execution backend for single-node cells (cluster cells "
        "always run sim)",
    )

    from repro.cluster import PLACEMENT_NAMES

    cluster = sub.add_parser(
        "cluster",
        help="sharded-cluster recovery: correlated node/rack kills, "
        "replica placement, parallel shard recovery",
    )
    cluster.add_argument("--shards", type=int, default=8)
    cluster.add_argument("--racks", type=int, default=2)
    cluster.add_argument("--nodes-per-rack", type=int, default=2)
    cluster.add_argument(
        "--placement", choices=sorted(PLACEMENT_NAMES),
        default="checkpoint_spread",
    )
    cluster.add_argument(
        "--replication",
        type=int,
        default=1,
        help="checkpoint/log replicas per shard beyond the primary",
    )
    cluster.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="TARGET",
        help="failure domain to kill: shard:S, node:R.N or rack:R "
        "(repeatable; all fire at the same epoch boundary; "
        "default rack:0)",
    )
    cluster.add_argument(
        "--kill-after-epoch",
        type=int,
        default=None,
        help="epoch boundary at which the kill fires (default: half "
        "the stream)",
    )
    cluster.add_argument("--epochs", type=int, default=6)
    cluster.add_argument("--epoch-len", type=int, default=32)
    cluster.add_argument(
        "--workers", type=int, default=2, help="workers per shard"
    )
    cluster.add_argument("--accounts", type=int, default=64)
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument(
        "--json",
        type=Path,
        nargs="?",
        const=Path("-"),
        default=None,
        metavar="PATH",
        help="export topology, runtime and recovery reports as JSON "
        "(bare --json prints to stdout)",
    )

    soak = sub.add_parser(
        "soak",
        help="sustained-traffic SLA soak: seeded crash schedule, "
        "degraded-mode serving, SLO grading and the BENCH_soak.json "
        "perf-trajectory gate",
    )
    soak.add_argument(
        "--mode", choices=("single", "cluster", "both"), default="single"
    )
    soak.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI pair (small key space, 2 crash cycles, "
        "single-node + one cluster cell); ignores the sizing flags",
    )
    soak.add_argument(
        "--scheme",
        choices=sorted(s for s in SCHEMES if s != "NAT"),
        default="MSR",
    )
    soak.add_argument("--keys", type=int, default=4096)
    soak.add_argument("--epoch-len", type=int, default=256)
    soak.add_argument("--epochs", type=int, default=48)
    soak.add_argument(
        "--crashes", type=int, default=3,
        help="seeded crash/recover cycles armed across the run",
    )
    soak.add_argument(
        "--workers", type=int, default=4,
        help="workers per engine (single) / per shard (cluster)",
    )
    soak.add_argument("--snapshot-interval", type=int, default=4)
    soak.add_argument("--skew", type=float, default=0.6)
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--shards", type=int, default=4)
    soak.add_argument("--racks", type=int, default=2)
    soak.add_argument("--nodes-per-rack", type=int, default=2)
    soak.add_argument("--replication", type=int, default=1)
    soak.add_argument(
        "--placement", choices=sorted(PLACEMENT_NAMES),
        default="checkpoint_spread",
    )
    soak.add_argument(
        "--chaos",
        action="store_true",
        help="also arm seeded torn-flush storage faults (single mode)",
    )
    soak.add_argument(
        "--no-verify",
        action="store_true",
        help="skip ground-truth verification (faster; NOT for CI)",
    )
    soak.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="override the p99 end-to-end latency target",
    )
    soak.add_argument(
        "--slo-p999", type=float, default=None, metavar="SECONDS",
        help="override the p999 end-to-end latency target",
    )
    soak.add_argument(
        "--slo-availability", type=float, default=None, metavar="FRACTION",
        help="override the availability target (e.g. 0.995)",
    )
    soak.add_argument(
        "--slo-mttr", type=float, default=None, metavar="SECONDS",
        help="override the worst-tolerated single-recovery time",
    )
    soak.add_argument(
        "--json",
        type=Path,
        nargs="?",
        const=Path("-"),
        default=None,
        metavar="PATH",
        help="export the full soak report as JSON (bare --json prints "
        "to stdout)",
    )
    soak.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="PATH",
        help="gate this run's metrics against the committed trajectory "
        "at PATH (throughput/p99/MTTR tolerance bands)",
    )
    soak.add_argument(
        "--update-bench",
        action="store_true",
        help="append this run's record to the --bench trajectory after "
        "gating",
    )
    soak.add_argument(
        "--backend",
        choices=("sim", "real"),
        default="sim",
        help="execution backend for single-mode recoveries (cluster "
        "mode always runs sim)",
    )

    check = sub.add_parser(
        "check",
        help="systematic fault-schedule exploration: enumerate fault "
        "combinations, check recovery invariants, shrink and export "
        "counterexamples",
    )
    check.add_argument(
        "--budget",
        type=int,
        default=96,
        help="schedule executions the frontier may spend",
    )
    check.add_argument(
        "--max-depth",
        type=int,
        default=2,
        choices=(1, 2),
        help="largest number of fault atoms combined in one schedule",
    )
    check.add_argument(
        "--schemes",
        default=None,
        metavar="CSV",
        help="comma-separated scheme subset (e.g. MSR,CKPT); default "
        "MSR,WAL,PACMAN,LVC,CKPT",
    )
    check.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip correlated cluster-kill schedules",
    )
    check.add_argument("--seed", type=int, default=7)
    check.add_argument(
        "--no-coverage",
        action="store_true",
        help="do not fail when a registered recovery crash point never "
        "fired",
    )
    check.add_argument(
        "--json",
        type=Path,
        nargs="?",
        const=Path("-"),
        default=None,
        metavar="PATH",
        help="export the full exploration report as JSON (bare --json "
        "prints to stdout)",
    )
    check.add_argument(
        "--repro-dir",
        type=Path,
        default=Path("check-repros"),
        metavar="DIR",
        help="directory minimized counterexample repro files are "
        "written to",
    )
    check.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="PATH",
        help="re-run a saved repro file instead of exploring; exits 4 "
        "when the violation still reproduces",
    )

    figgate = sub.add_parser(
        "figgate",
        help="Fig. 11 regression gate: verify MSR's recovery speedup "
        "over the strong baselines against the committed BENCH_fig11.json",
    )
    figgate.add_argument(
        "--bench",
        type=Path,
        default=Path("BENCH_fig11.json"),
        metavar="PATH",
        help="committed baseline to gate against (default BENCH_fig11.json)",
    )
    figgate.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline file from the current measurement "
        "instead of gating",
    )

    cal = sub.add_parser(
        "calibrate",
        help="verify every qualitative paper claim against the current "
        "cost model",
    )
    cal.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced test-size scale instead of benchmark scale",
    )
    return parser


def _cmd_list() -> int:
    print_figure(
        "Workloads",
        render_table(
            ["name", "application"],
            [
                ["SL", "Streaming Ledger: account/asset transfers"],
                ["GS", "Grep&Sum: skewed shared-state summation"],
                ["TP", "Toll Processing: Linear-Road-style tolling"],
            ],
        ),
    )
    print_figure(
        "Schemes",
        render_table(
            ["name", "mechanism"],
            [
                ["NAT", "native MorphStream, no fault tolerance"],
                ["CKPT", "global checkpointing + input replay"],
                ["WAL", "command logging, sequential redo"],
                ["PACMAN", "command logging, parallel redo via static "
                 "key-access analysis (--hybrid: MSR chain scheduling)"],
                ["DL", "DistDGCC dependency-graph logging"],
                ["LV", "Taurus LSN-vector logging (dense vectors)"],
                ["LVC", "Taurus compressed vectors: sparse (stream, pos)"],
                ["MSR", "MorphStreamR: intermediate-result views"],
            ],
        ),
    )
    print_figure(
        "Figures",
        render_table(
            ["name", "reproduces"],
            [[name, desc] for name, (_fn, desc) in sorted(FIGURES.items())],
        ),
    )
    return 0


def _hybrid_kwargs(args: argparse.Namespace) -> Optional[Dict]:
    """scheme_kwargs for --hybrid, or None if the flag is misused."""
    if not getattr(args, "hybrid", False):
        return {}
    if args.scheme != "PACMAN":
        print("--hybrid only applies to --scheme PACMAN")
        return None
    return {"hybrid": True}


def _cmd_run(args: argparse.Namespace) -> int:
    hybrid = _hybrid_kwargs(args)
    if hybrid is None:
        return EXIT_USAGE
    factory = figures.WORKLOADS[args.workload]()
    config = ExperimentConfig(
        workload_factory=factory,
        scheme=SCHEMES[args.scheme],
        num_workers=args.workers,
        epoch_len=args.epoch_len,
        snapshot_interval=args.snapshot_interval,
        recover_epochs=args.recover_epochs,
        seed=args.seed,
        scheme_kwargs=hybrid,
    )
    result = run_experiment(config)
    runtime = result.runtime
    print_figure(
        f"{args.scheme} on {args.workload} — runtime phase",
        render_table(
            ["metric", "value"],
            [
                ["events processed", runtime.events_processed],
                ["throughput", format_throughput(runtime.throughput_eps)],
                ["peak memory", f"{runtime.peak_memory_bytes / 1024:.1f} KiB"],
                ["log bytes", runtime.bytes_logged],
                *[
                    [f"{b} overhead", format_seconds(runtime.buckets.get(b, 0.0))]
                    for b in RUNTIME_OVERHEAD_BUCKETS
                ],
            ],
        ),
    )
    if result.recovery is None:
        print("\nscheme does not support recovery (runtime phase only)")
        return 0
    recovery = result.recovery
    print_figure(
        f"{args.scheme} on {args.workload} — recovery phase",
        render_table(
            ["metric", "value"],
            [
                ["events replayed", recovery.events_replayed],
                ["recovery time", format_seconds(recovery.elapsed_seconds)],
                ["throughput", format_throughput(recovery.throughput_eps)],
                *[
                    [b, format_seconds(recovery.buckets.get(b, 0.0))]
                    for b in RECOVERY_BUCKETS
                ],
            ],
        ),
    )
    print("\nstate verified against serial ground truth: OK")
    print("outputs delivered exactly once: OK")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import BackendError

    hybrid = _hybrid_kwargs(args)
    if hybrid is None:
        return EXIT_USAGE
    if args.workers < 1:
        print(
            f"backend error: worker count must be >= 1 (got {args.workers})"
        )
        return EXIT_BACKEND
    if args.backend == "real" or args.bench is not None:
        from repro.real import real_backend_unavailable_reason

        reason = real_backend_unavailable_reason()
        if reason is not None:
            print(f"backend error: real execution backend unsupported: {reason}")
            return EXIT_BACKEND

    if args.bench is not None:
        from repro.harness.export import write_json
        from repro.real.bench import describe_bench, run_realexec_bench

        try:
            counts = sorted(
                {int(w) for w in args.bench_workers.split(",") if w.strip()}
            )
        except ValueError:
            print(f"--bench-workers must be a CSV of ints: {args.bench_workers!r}")
            return EXIT_USAGE
        if not counts or min(counts) < 1:
            print("backend error: --bench-workers must all be >= 1")
            return EXIT_BACKEND
        print(
            f"real-backend speedup sweep over workers {counts} "
            f"(time scale {args.time_scale or 1e-3:.4f}s/op) ..."
        )
        try:
            payload = run_realexec_bench(
                counts,
                scheme_name=args.scheme,
                epoch_len=args.epoch_len,
                snapshot_interval=args.snapshot_interval,
                recover_epochs=args.recover_epochs,
                time_scale=args.time_scale or 1e-3,
                seed=args.seed,
            )
        except BackendError as exc:
            print(f"backend error: {exc}")
            return EXIT_BACKEND
        print(describe_bench(payload))
        write_json(args.bench, payload)
        print(f"exported speedup curve to {args.bench}")
        return EXIT_OK if payload["shape_matches"] else EXIT_FAILURE

    factory = figures.WORKLOADS[args.workload]()
    config = ExperimentConfig(
        workload_factory=factory,
        scheme=SCHEMES[args.scheme],
        num_workers=args.workers,
        epoch_len=args.epoch_len,
        snapshot_interval=args.snapshot_interval,
        recover_epochs=args.recover_epochs,
        seed=args.seed,
        scheme_kwargs={
            "backend": args.backend,
            "real_time_scale": args.time_scale,
            "real_start_method": args.start_method,
            **hybrid,
        },
    )
    try:
        result = run_experiment(config)
    except BackendError as exc:
        print(f"backend error: {exc}")
        return EXIT_BACKEND
    recovery = result.recovery
    rows = [
        ["backend", recovery.backend],
        ["events replayed", recovery.events_replayed],
        ["epochs replayed", recovery.epochs_replayed],
        ["virtual recovery time", format_seconds(recovery.elapsed_seconds)],
        ["virtual throughput", format_throughput(recovery.throughput_eps)],
    ]
    if recovery.backend == "real":
        rows += [
            ["chain groups shipped", recovery.real_groups],
            [
                "wall-clock group execution",
                format_seconds(recovery.real_wall_seconds),
            ],
            ["re-assignment rounds", recovery.reassign_rounds],
            ["dead workers", ", ".join(map(str, recovery.dead_workers)) or "-"],
        ]
    print_figure(
        f"{args.scheme} on {args.workload} — recovery "
        f"({recovery.backend} backend)",
        render_table(["metric", "value"], rows),
    )
    print("\nstate verified against serial ground truth: OK")
    print("outputs delivered exactly once: OK")
    return EXIT_OK


def _render_figure(name: str, data) -> None:
    """Best-effort tabular rendering for any figure's data shape."""
    if name == "fig2":
        rows = [
            [
                scheme,
                format_throughput(row["runtime_eps"]),
                format_seconds(row["recovery_seconds"])
                if row["recovery_seconds"]
                else "n/a",
            ]
            for scheme, row in data.items()
        ]
        print_figure(name, render_table(["scheme", "runtime", "recovery"], rows))
    elif name == "fig9":
        rows = [
            [regime, epoch, format_throughput(rt), format_throughput(rec)]
            for regime, points in data.items()
            for epoch, rt, rec in points
        ]
        print_figure(
            name, render_table(["regime", "epoch", "runtime", "recovery"], rows)
        )
    elif name == "fig11":
        for app, per_scheme in data.items():
            rows = [
                [scheme]
                + [format_seconds(b.get(k, 0.0)) for k in RECOVERY_BUCKETS]
                for scheme, b in per_scheme.items()
            ]
            print_figure(
                f"{name} ({app})",
                render_table(["scheme", *RECOVERY_BUCKETS], rows),
            )
    elif name == "fig11d":
        rows = [
            [app, label, format_seconds(seconds)]
            for app, steps in data.items()
            for label, seconds in steps
        ]
        print_figure(name, render_table(["app", "step", "recovery"], rows))
    elif name == "fig12a":
        schemes = list(next(iter(data.values())))
        rows = [
            [app, *(format_throughput(per[s]) for s in schemes)]
            for app, per in data.items()
        ]
        print_figure(name, render_table(["app", *schemes], rows))
    elif name == "fig12b":
        rows = [
            [f"{ratio:.0%}", f"{w:.3f}", f"{wo:.3f}"] for ratio, w, wo in data
        ]
        print_figure(
            name, render_table(["ratio", "selective", "full logging"], rows)
        )
    elif name == "fig12c":
        rows = [[s, f"{b / 1024:.1f} KiB"] for s, b in data.items()]
        print_figure(name, render_table(["scheme", "peak memory"], rows))
    elif name == "fig12d":
        rows = [
            [s, *(format_seconds(b.get(k, 0.0)) for k in RUNTIME_OVERHEAD_BUCKETS)]
            for s, b in data.items()
        ]
        print_figure(
            name, render_table(["scheme", *RUNTIME_OVERHEAD_BUCKETS], rows)
        )
    else:  # fig13 / fig14*: {(app ->)? scheme -> [(x, eps)]}
        def render_curves(title, curves):
            xs = [x for x, _e in next(iter(curves.values()))]
            rows = [
                [s, *(format_throughput(e) for _x, e in points)]
                for s, points in curves.items()
            ]
            print_figure(title, render_table(["scheme", *map(str, xs)], rows))

        first_value = next(iter(data.values()))
        if isinstance(first_value, dict):  # fig13: nested by app
            for app, curves in data.items():
                render_curves(f"{name} ({app})", curves)
        else:
            render_curves(name, data)


def _plot_figure(name: str, data) -> None:
    """ASCII chart rendering for the figures that are curves or bars."""
    if name == "fig2":
        print(
            bar_chart(
                {
                    s: row["recovery_seconds"] * 1e3
                    for s, row in data.items()
                    if row["recovery_seconds"]
                },
                unit="ms",
            )
        )
    elif name == "fig9":
        print(
            line_chart(
                {r: [(e, rec) for e, _rt, rec in pts] for r, pts in data.items()},
                x_label="commit epoch (events)",
                y_label="recovery events/s",
            )
        )
    elif name == "fig12c":
        print(bar_chart({s: b / 1024 for s, b in data.items()}, unit="KiB"))
    elif name in ("fig14a", "fig14b", "fig14c"):
        print(
            line_chart(
                {s: list(pts) for s, pts in data.items()},
                x_label="swept parameter",
                y_label="recovery events/s",
            )
        )
    elif name == "fig13":
        for app, curves in data.items():
            print(f"[{app}]")
            print(
                line_chart(
                    {s: list(pts) for s, pts in curves.items()},
                    x_label="cores",
                    y_label="recovery events/s",
                )
            )
    else:
        print("(no chart rendering for this figure; see the table above)")


def _cmd_figure(args: argparse.Namespace) -> int:
    fn, description = FIGURES[args.name]
    scale = figures.QUICK_SCALE if args.quick else figures.DEFAULT_SCALE
    print(f"reproducing {args.name}: {description} ...")
    data = fn(scale)
    _render_figure(args.name, data)
    if args.plot:
        print()
        _plot_figure(args.name, data)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.harness.chaos import (
        ChaosConfig,
        chaos_payload,
        run_chaos,
        smoke_config,
    )
    from repro.harness.export import write_json
    from repro.harness.stats import latency_summary

    cfg = (
        smoke_config(seed=args.seed)
        if args.smoke
        else replace(ChaosConfig(), seed=args.seed)
    )
    if args.backend != "sim":
        cfg = replace(cfg, backend=args.backend)
    if args.schemes:
        wanted = tuple(
            s.strip().upper() for s in args.schemes.split(",") if s.strip()
        )
        unknown = sorted(set(wanted) - set(SCHEMES))
        if unknown:
            print(f"unknown scheme(s): {', '.join(unknown)}")
            return 2
        cfg = replace(cfg, schemes=wanted)
    if args.no_cluster:
        cfg = replace(
            cfg,
            cluster_placements=(),
            cluster_kills=(),
            cluster_overwhelm=False,
        )
    grid = len(cfg.schemes) * len(cfg.fault_kinds) * len(cfg.crash_points)
    recovery_cells = sum(
        len(cfg.recovery_crash_points)
        - (1 if "recovery.chain" in cfg.recovery_crash_points
           and scheme != "MSR" else 0)
        + (1 if cfg.nested_crash and cfg.recovery_crash_points else 0)
        for scheme in cfg.schemes
    )
    worker_cells = len(cfg.schemes) * len(cfg.worker_faults)
    cluster_cells = 0
    if cfg.cluster_placements and cfg.cluster_kills:
        cluster_cells = (
            len(cfg.cluster_placements) * len(cfg.cluster_kills)
            + (1 if cfg.cluster_overwhelm else 0)
        )
    print(
        f"chaos sweep: {grid} storage-fault cells + {worker_cells} "
        f"worker-failure cells + {recovery_cells} crash-during-recovery "
        f"cells + {cluster_cells} cluster-kill cells (seed {cfg.seed}) ..."
    )
    report = run_chaos(cfg)
    rows = []
    for run in report.runs:
        ladder = (
            " ".join(f"{r}:{n}" for r, n in sorted(run.ladder.items()))
            or "-"
        )
        reassign = (
            f"{run.reassign_rounds}r/{run.tasks_reassigned}t"
            if run.reassign_rounds
            else "-"
        )
        wasted = (
            f"{run.wasted_ratio:.0%}" if run.wasted_ratio else "-"
        )
        rows.append(
            [
                "OK" if run.ok else "FAIL",
                run.scheme,
                run.fault,
                run.crash_point,
                run.outcome,
                ladder,
                str(run.attempts) if run.attempts > 1 else "-",
                reassign,
                wasted,
                format_seconds(run.mttr_seconds)
                if run.mttr_seconds
                else "-",
                run.detail[:48],
            ]
        )
    print_figure(
        "Chaos sweep — fault × crash point × scheme",
        render_table(
            [
                "verdict",
                "scheme",
                "fault",
                "point",
                "outcome",
                "ladder",
                "tries",
                "reassign",
                "wasted",
                "MTTR",
                "detail",
            ],
            rows,
        ),
    )
    if args.json is not None:
        write_json(args.json, chaos_payload(report))
        print(f"\nexported {len(report.runs)} cells to {args.json}")
    counts = report.outcome_counts()
    summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    mttrs = [run.mttr_seconds for run in report.runs if run.mttr_seconds > 0]
    if mttrs:
        digest = latency_summary(mttrs)
        print(
            f"\nMTTR digest over {digest['count']} recoveries: "
            f"p50 {format_seconds(digest['p50'])}, "
            f"p99 {format_seconds(digest['p99'])}, "
            f"max {format_seconds(digest['max'])}"
        )
    status = 0
    if report.passed:
        print(f"\nall {len(report.runs)} cells verified — {summary}")
    else:
        print(
            f"\n{len(report.failures)} cell(s) FAILED "
            f"(silent divergence or undocumented error) — {summary}"
        )
        status = 1
    if args.max_mttr is not None:
        worst = max(mttrs, default=0.0)
        if worst > args.max_mttr:
            print(
                f"MTTR SLO BREACH: worst cell "
                f"{format_seconds(worst)} exceeds --max-mttr "
                f"{format_seconds(args.max_mttr)}"
            )
            status = 1
        else:
            print(
                f"MTTR SLO: worst cell {format_seconds(worst)} within "
                f"--max-mttr {format_seconds(args.max_mttr)}"
            )
    return status


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import (
        ClusterFault,
        ClusterFaultPlan,
        ClusterTopology,
        ShardedCluster,
        parse_kill,
    )
    from repro.errors import ClusterDataLossError
    from repro.workloads.streaming_ledger import StreamingLedger

    kills = args.kill if args.kill else ["rack:0"]
    kill_epoch = (
        args.kill_after_epoch
        if args.kill_after_epoch is not None
        else max(1, args.epochs // 2)
    )
    topology = ClusterTopology(args.shards, args.racks, args.nodes_per_rack)
    for spec in kills:
        topology.validate(parse_kill(spec))
    plan = ClusterFaultPlan(
        kills=[ClusterFault(spec, after_epoch=kill_epoch) for spec in kills]
    )
    workload = StreamingLedger(
        args.accounts,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )
    cluster = ShardedCluster(
        workload,
        topology,
        placement=args.placement,
        replication=args.replication,
        workers_per_shard=args.workers,
        epoch_len=args.epoch_len,
        fault_plan=plan,
    )
    events = workload.generate(args.epochs * args.epoch_len, args.seed)
    print(
        f"cluster: {args.shards} shards over {topology.num_nodes} nodes "
        f"({args.racks} racks × {args.nodes_per_rack}), placement "
        f"{args.placement}, replication {args.replication}; killing "
        f"{' + '.join(kills)} after epoch {kill_epoch} ..."
    )
    runtime = cluster.process_stream(events)
    payload: Dict = {
        "topology": {
            "shards": args.shards,
            "racks": args.racks,
            "nodes_per_rack": args.nodes_per_rack,
            "nodes": topology.num_nodes,
        },
        "placement": args.placement,
        "replication": args.replication,
        "kills": list(kills),
        "kill_after_epoch": kill_epoch,
        "runtime": {
            "events_processed": runtime.events_processed,
            "epochs": runtime.epochs,
            "throughput_eps": runtime.throughput_eps,
            "cross_shard_txns": runtime.cross_shard_txns,
            "total_txns": runtime.total_txns,
            "cross_shard_ratio": runtime.cross_shard_ratio,
            "replication_bytes": runtime.replication_bytes,
        },
    }
    if not cluster.crashed:
        print("kill never fired (stream shorter than the kill epoch)")
        return 1
    try:
        report = cluster.recover()
    except ClusterDataLossError as exc:
        print(
            f"\nDATA LOSS: shards {list(exc.lost_shards)} lost every "
            f"replica ({exc.lost_events} events unrecoverable) — "
            f"replication factor {args.replication} is narrower than "
            f"the correlated failure"
        )
        payload["recovery"] = {
            "verdict": "data-loss",
            "lost_shards": list(exc.lost_shards),
            "rpo_events": exc.lost_events,
        }
        if args.json is not None:
            _emit_json(args.json, payload)
        return 1
    rows = [
        [
            f"shard {r.shard}",
            f"{r.rack}.{r.node % args.nodes_per_rack}",
            format_seconds(r.mttr_seconds),
            str(r.epochs_replayed),
            str(r.events_replayed),
            " ".join(f"{k}:{v}" for k, v in sorted(r.ladder.items())) or "-",
            str(r.checkpoint_epoch),
        ]
        for r in report.per_shard
    ]
    print_figure(
        "Parallel shard recovery",
        render_table(
            ["shard", "node", "MTTR", "epochs", "events", "ladder", "ckpt"],
            rows,
        ),
    )
    print_figure(
        "Cluster recovery — aggregate",
        render_table(
            ["metric", "value"],
            [
                ["verdict", report.verdict],
                ["shards killed", ", ".join(map(str, report.shards_killed))],
                ["correlation width", report.correlation_width],
                ["recovery nodes", report.recovery_nodes],
                ["detection", format_seconds(report.detection_seconds)],
                ["makespan", format_seconds(report.makespan_seconds)],
                ["RTO", format_seconds(report.rto_seconds)],
                ["RPO", f"{report.rpo_events} events"],
                ["mean shard MTTR", format_seconds(report.mean_mttr_seconds)],
                ["max shard MTTR", format_seconds(report.max_mttr_seconds)],
                ["watermark degradations", report.watermark_degradations],
            ],
        ),
    )
    cluster.process_stream([])
    exact = cluster.verify_exact()
    payload["recovery"] = {
        "verdict": report.verdict,
        "shards_killed": list(report.shards_killed),
        "nodes_killed": list(report.nodes_killed),
        "correlation_width": report.correlation_width,
        "recovery_nodes": report.recovery_nodes,
        "detection_seconds": report.detection_seconds,
        "makespan_seconds": report.makespan_seconds,
        "rto_seconds": report.rto_seconds,
        "rpo_events": report.rpo_events,
        "rpo_seconds": report.rpo_seconds,
        "mean_mttr_seconds": report.mean_mttr_seconds,
        "max_mttr_seconds": report.max_mttr_seconds,
        "watermark_degradations": report.watermark_degradations,
        "per_shard": [
            {
                "shard": r.shard,
                "node": r.node,
                "rack": r.rack,
                "mttr_seconds": r.mttr_seconds,
                "epochs_replayed": r.epochs_replayed,
                "events_replayed": r.events_replayed,
                "ladder": dict(r.ladder),
                "resumed": r.resumed,
                "checkpoint_epoch": r.checkpoint_epoch,
                "attempts": r.attempts,
            }
            for r in report.per_shard
        ],
        "verified_exact": exact,
    }
    if args.json is not None:
        _emit_json(args.json, payload)
    if not exact:
        print(
            "\nSILENT DIVERGENCE: recovered cluster state does not match "
            "the serial single-instance ground truth"
        )
        return 1
    print(
        "\nrecovered cluster state matches serial ground truth "
        "bit-for-bit: OK"
    )
    print("outputs delivered exactly once across all shards: OK")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from repro.errors import ClusterDataLossError
    from repro.harness.export import write_json
    from repro.harness.slo import (
        append_record,
        load_trajectory,
        new_trajectory,
        regression_gate,
    )
    from repro.harness.soak import (
        SOAK_SCHEMA,
        SoakConfig,
        bench_record,
        run_soak,
        smoke_configs,
        soak_payload,
    )

    if args.update_bench and args.bench is None:
        print("--update-bench requires --bench PATH")
        return 2

    slo_overrides: Dict[str, float] = {}
    if args.slo_p99 is not None:
        slo_overrides["p99_latency_seconds"] = args.slo_p99
    if args.slo_p999 is not None:
        slo_overrides["p999_latency_seconds"] = args.slo_p999
    if args.slo_availability is not None:
        slo_overrides["availability"] = args.slo_availability
    if args.slo_mttr is not None:
        slo_overrides["max_mttr_seconds"] = args.slo_mttr

    if args.smoke:
        configs = [
            cfg
            for cfg in smoke_configs(seed=args.seed)
            if args.mode == "both" or cfg.mode == args.mode
        ]
        if args.chaos:
            configs = [
                replace(cfg, chaos=True) if cfg.mode == "single" else cfg
                for cfg in configs
            ]
        if args.backend != "sim":
            configs = [
                replace(cfg, backend=args.backend)
                if cfg.mode == "single"
                else cfg
                for cfg in configs
            ]
    else:
        modes = ("single", "cluster") if args.mode == "both" else (args.mode,)
        configs = [
            SoakConfig(
                mode=mode,
                scheme=args.scheme,
                num_keys=args.keys,
                epoch_len=args.epoch_len,
                epochs=args.epochs,
                crashes=args.crashes,
                num_workers=args.workers,
                snapshot_interval=args.snapshot_interval,
                skew=args.skew,
                seed=args.seed,
                chaos=args.chaos and mode == "single",
                verify=not args.no_verify,
                shards=args.shards,
                racks=args.racks,
                nodes_per_rack=args.nodes_per_rack,
                replication=args.replication,
                placement=args.placement,
                backend=args.backend if mode == "single" else "sim",
            )
            for mode in modes
        ]
    if slo_overrides:
        configs = [
            replace(cfg, slo=replace(cfg.slo, **slo_overrides))
            for cfg in configs
        ]

    trajectory = (
        load_trajectory(args.bench)
        if args.bench is not None and args.bench.exists()
        else new_trajectory()
    )
    status = 0
    runs_payload: List[Dict] = []
    for cfg in configs:
        print(
            f"soak [{cfg.mode}] {cfg.cell()}: {cfg.epochs} epochs × "
            f"{cfg.epoch_len} events, {cfg.crashes} seeded crash "
            f"cycle(s), seed {cfg.seed} ..."
        )
        try:
            result = run_soak(cfg)
        except ClusterDataLossError as exc:
            print(
                f"\nDATA LOSS: shards {list(exc.lost_shards)} lost every "
                f"replica ({exc.lost_events} events unrecoverable) — "
                f"soak aborted"
            )
            return 1
        runs_payload.append(soak_payload(result))
        lat, mttr = result.latency, result.mttr
        if not cfg.verify:
            verified = "skipped (--no-verify)"
        else:
            verified = "OK" if result.verified else "FAIL"
        print_figure(
            f"Soak — {cfg.mode} {cfg.scheme} ({cfg.cell()})",
            render_table(
                ["metric", "value"],
                [
                    ["events", str(result.events_total)],
                    ["virtual duration", format_seconds(result.duration_seconds)],
                    ["offered rate", format_throughput(result.offered_eps)],
                    ["throughput", format_throughput(result.throughput_eps)],
                    [
                        "latency p50/p99/p999",
                        f"{format_seconds(lat['p50'])} / "
                        f"{format_seconds(lat['p99'])} / "
                        f"{format_seconds(lat['p999'])}",
                    ],
                    ["availability", f"{result.availability:.4f}"],
                    ["outage", format_seconds(result.outage_seconds)],
                    [
                        "MTTR mean/max",
                        f"{format_seconds(mttr['mean'])} / "
                        f"{format_seconds(mttr['max'])}",
                    ],
                    ["RTO max", format_seconds(result.rto_max_seconds)],
                    ["RPO", f"{result.rpo_events} events"],
                    [
                        "degraded reads",
                        f"{result.degraded_reads} "
                        f"({result.stale_reads} stale-tagged)",
                    ],
                    ["deferred admissions", str(result.deferred_events)],
                    ["verified vs ground truth", verified],
                ],
            ),
        )
        print(result.slo.describe())
        if cfg.verify and not result.verified:
            print(
                "VERIFICATION FAILURE: post-recovery state, outputs or "
                "degraded reads diverge from the serial ground truth"
            )
        if not result.ok:
            status = 1
        if args.bench is not None:
            record = bench_record(result)
            gate = regression_gate(trajectory, record)
            print(gate.describe())
            if not gate.passed:
                status = 1
            if args.update_bench:
                append_record(args.bench, record)
                print(f"appended record for cell {record['cell']} to {args.bench}")
        print()
    if args.json is not None:
        doc = {"schema": SOAK_SCHEMA, "runs": runs_payload}
        if str(args.json) == "-":
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            write_json(args.json, doc)
            print(f"exported {len(runs_payload)} soak run(s) to {args.json}")
    if status == 0:
        print(
            f"soak: all {len(runs_payload)} run(s) verified, met their "
            "SLOs and passed the perf gate"
        )
    else:
        print(
            "soak: FAILURE — SLO breach, verification failure or perf "
            "regression (see above)"
        )
    return status


def _emit_json(target: Path, payload: Dict) -> None:
    import json

    from repro.harness.export import write_json

    if str(target) == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        write_json(target, payload)
        print(f"\nexported cluster report to {target}")


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.check.explorer import (
        build_frontier,
        explore,
        replay_repro,
        report_payload,
        repro_payload,
    )
    from repro.check.runner import CheckConfig
    from repro.errors import ConfigError
    from repro.harness.export import write_json

    if args.replay is not None:
        try:
            payload = json.loads(args.replay.read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read repro file {args.replay}: {exc}")
            return EXIT_USAGE
        try:
            result = replay_repro(payload)
        except ConfigError as exc:
            print(f"invalid repro file: {exc}")
            return EXIT_USAGE
        print(
            f"replaying {result['schedule']} against invariant "
            f"{result['invariant']} ..."
        )
        if result["reproduced"]:
            print(f"REPRODUCED: {result['detail']}")
            print(
                f"schedule fingerprint: {result['fingerprint']} "
                f"(frontier seed {result['frontier_seed']})"
            )
            return EXIT_INVARIANT
        print(
            f"did not reproduce (run ended {result['outcome']}: "
            f"{result['detail'] or 'no violation'})"
        )
        return EXIT_OK

    kwargs: Dict = {
        "budget": args.budget,
        "max_depth": args.max_depth,
        "seed": args.seed,
        "include_cluster": not args.no_cluster,
        "require_coverage": not args.no_coverage,
    }
    if args.schemes:
        wanted = tuple(
            s.strip().upper() for s in args.schemes.split(",") if s.strip()
        )
        unknown = sorted(set(wanted) - set(SCHEMES))
        if unknown:
            print(f"unknown scheme(s): {', '.join(unknown)}")
            return EXIT_USAGE
        kwargs["schemes"] = wanted
    try:
        cfg = CheckConfig(**kwargs)
    except ConfigError as exc:
        print(f"invalid configuration: {exc}")
        return EXIT_USAGE
    frontier_size = len(build_frontier(cfg))
    print(
        f"exploring {min(cfg.budget, frontier_size)} of {frontier_size} "
        f"schedules (depth <= {cfg.max_depth}, schemes "
        f"{','.join(cfg.schemes)}"
        f"{'+cluster' if cfg.include_cluster else ''}, "
        f"frontier seed {cfg.seed}) ..."
    )
    report = explore(cfg)

    covered = [p for p in report.required_points if report.coverage.get(p)]
    print_figure(
        "Crash-point coverage",
        render_table(
            ["point", "passes", "covered"],
            [
                [p, str(report.coverage.get(p, 0)),
                 "yes" if report.coverage.get(p) else "NO"]
                for p in report.required_points
            ],
        ),
    )
    print(
        f"\n{report.budget_spent} schedules run "
        f"(+{report.shrink_runs} shrink runs), "
        f"{report.frontier_unexplored} left unexplored; "
        f"{len(covered)}/{len(report.required_points)} registered "
        f"recovery crash points fired"
    )

    repro_paths = []
    if report.counterexamples:
        rows = []
        args.repro_dir.mkdir(parents=True, exist_ok=True)
        for ce in report.counterexamples:
            path = args.repro_dir / f"repro-{ce.invariant}-{ce.fingerprint}.json"
            write_json(path, repro_payload(ce, cfg))
            repro_paths.append(path)
            rows.append(
                [
                    ce.invariant,
                    ce.found_with.label,
                    ce.minimal.label,
                    str(len(ce.minimal.atoms)),
                    ce.fingerprint,
                ]
            )
        print_figure(
            "Counterexamples (minimized)",
            render_table(
                ["invariant", "found with", "minimal", "atoms", "fingerprint"],
                rows,
            ),
        )
        for ce, path in zip(report.counterexamples, repro_paths):
            print(f"  {ce.detail}")
            print(
                f"  schedule fingerprint: {ce.fingerprint} "
                f"(frontier seed {ce.frontier_seed}) — replay with: "
                f"repro check --replay {path}"
            )

    if args.json is not None:
        doc = report_payload(report)
        if str(args.json) == "-":
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            write_json(args.json, doc)
            print(f"exported exploration report to {args.json}")

    if report.counterexamples:
        print(
            f"\ncheck: {len(report.counterexamples)} invariant "
            f"violation(s) found — repro files in {args.repro_dir}/"
        )
        return EXIT_INVARIANT
    if cfg.require_coverage and not report.coverage_ok:
        print(
            "\ncheck: COVERAGE GAP — registered crash points never fired: "
            f"{', '.join(report.uncovered_points)} "
            f"(frontier seed {cfg.seed}; raise --budget or --max-depth)"
        )
        return EXIT_FAILURE
    from repro.check.invariants import INVARIANTS

    print(
        f"\ncheck: all {report.budget_spent} explored schedules satisfy "
        f"all {len(INVARIANTS)} invariants"
    )
    return EXIT_OK


def _cmd_figgate(args: argparse.Namespace) -> int:
    from repro.harness.export import write_json
    from repro.harness.figgate import (
        compare_gate,
        compute_gate,
        describe_gate,
        load_baseline,
    )

    print("measuring Fig. 11 gate (MSR vs strong baselines) ...")
    payload = compute_gate()
    print(describe_gate(payload))
    if args.update:
        write_json(args.bench, payload)
        print(f"baseline rewritten: {args.bench}")
        return EXIT_OK
    if not args.bench.exists():
        print(
            f"no baseline at {args.bench}; create one with "
            "`repro figgate --update`"
        )
        return EXIT_USAGE
    problems = compare_gate(payload, load_baseline(args.bench))
    if problems:
        print("\nFIG11 GATE FAILED:")
        for line in problems:
            print(f"  - {line}")
        return EXIT_FAILURE
    print(f"\nfig11 gate OK against {args.bench}")
    return EXIT_OK


def _cmd_calibrate(args: argparse.Namespace) -> int:
    scale = figures.QUICK_SCALE if args.quick else figures.DEFAULT_SCALE
    print("running the qualitative-claim battery ...")
    checks = run_calibration(scale)
    rows = [
        ["PASS" if c.holds else "FAIL", c.claim, c.reference, c.detail]
        for c in checks
    ]
    print_figure(
        "Calibration — paper claims vs current cost model",
        render_table(["verdict", "claim", "paper ref", "detail"], rows),
    )
    if all_hold(checks):
        print("\nall claims hold")
        return 0
    failing = sum(1 for c in checks if not c.holds)
    print(f"\n{failing} claim(s) FAILED — see EXPERIMENTS.md and docs/cost-model.md")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import BackendError

    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "recover":
            return _cmd_recover(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "soak":
            return _cmd_soak(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "figgate":
            return _cmd_figgate(args)
        if args.command == "calibrate":
            return _cmd_calibrate(args)
    except BackendError as exc:
        # Backend selection failed (unsupported host, bad worker count):
        # a distinct exit code so CI can tell this from a verification
        # failure.
        print(f"backend error: {exc}")
        return EXIT_BACKEND
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
