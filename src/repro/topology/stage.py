"""Transactional operator stages.

A stage is a :class:`~repro.workloads.base.Workload` (it owns tables,
turns events into state transactions and produces outputs) that
additionally knows how to *forward*: ``emit_from_output`` derives the
event the next operator receives from this stage's output for an event.

Two properties make cross-stage recovery sound:

1. **Determinism** — the forwarded event is a pure function of the
   output, which is itself a pure function of replayed state, so
   replaying stage *k* regenerates stage *k+1*'s exact input stream.
2. **Sequence preservation** — a forwarded event keeps the original
   event's sequence number, so exactly-once deduplication works
   end-to-end and a transaction's identity is stable across the
   topology (the group-commit unit of §III-B).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional

from repro.engine.events import Event
from repro.workloads.base import Workload


class StageWorkload(Workload):
    """A workload that can forward events to a downstream operator."""

    @abstractmethod
    def emit_from_output(self, seq: int, output: tuple) -> Optional[Event]:
        """The event forwarded downstream for one processed input.

        ``output`` is exactly what :meth:`output_for` produced for the
        event with sequence number ``seq``.  Returning ``None`` filters
        the event (e.g. an aborted transaction produces no downstream
        work).  The forwarded event must reuse ``seq``.
        """
