"""Concrete stages: a two-operator Streaming Ledger pipeline.

Stage 1 (:class:`LedgerStage`) is the Streaming Ledger application,
forwarding each committed transfer's invoice downstream.  Stage 2
(:class:`FeeAccountingStage`) books a transaction fee for every invoice
into per-bucket revenue accounts — a second stateful operator whose
input exists only as the first operator's output, exactly the situation
that makes cross-operator recovery interesting (§III-B).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.events import Event
from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.topology.stage import StageWorkload
from repro.workloads.streaming_ledger import StreamingLedger

REVENUE = "fee_revenue"


class LedgerStage(StreamingLedger, StageWorkload):
    """Streaming Ledger forwarding committed invoices downstream."""

    name = "SL-stage"

    def emit_from_output(self, seq: int, output: tuple) -> Optional[Event]:
        kind, value = output
        if kind != "invoice":
            # Deposits and aborted transfers produce no downstream fee.
            return None
        return Event(seq, "invoice", (value,))


class FeeAccountingStage(StageWorkload):
    """Books a proportional fee per invoice into revenue buckets."""

    name = "FEE-stage"

    def __init__(
        self,
        num_buckets: int = 64,
        *,
        fee_rate: float = 0.01,
        num_partitions: int = 8,
    ):
        super().__init__(num_partitions)
        if num_buckets < 1:
            raise WorkloadError("need at least one revenue bucket")
        if not 0.0 < fee_rate < 1.0:
            raise WorkloadError("fee_rate must be in (0, 1)")
        self.num_buckets = num_buckets
        self.fee_rate = fee_rate
        self._table_sizes = {REVENUE: num_buckets}

    def initial_state(self) -> StateStore:
        return StateStore({REVENUE: {b: 0.0 for b in range(self.num_buckets)}})

    def generate(self, num_events: int, seed: int = 0):
        raise WorkloadError(
            "FeeAccountingStage consumes upstream invoices; it does not "
            "generate its own events"
        )

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if event.kind != "invoice":
            raise WorkloadError(f"unexpected event kind {event.kind!r}")
        (amount,) = event.payload
        bucket = event.seq % self.num_buckets
        op = Operation(
            uid=uid_base,
            txn_id=event.seq,
            ts=event.seq,
            ref=StateRef(REVENUE, bucket),
            func="deposit",
            params=(round(abs(amount) * self.fee_rate, 9),),
        )
        return Transaction(event.seq, event.seq, event, (op,))

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        if not committed:  # pragma: no cover - fee booking never aborts
            return ("fee", "aborted")
        return ("fee", round(op_values[txn.ops[0].uid], 9))

    def emit_from_output(self, seq: int, output: tuple) -> Optional[Event]:
        # Terminal stage: nothing flows further downstream.
        return None
