"""Multi-operator streaming topologies with group-committed epochs.

The paper's failure model spans a *topology* of operators: a state
transaction triggered by one input event may flow through several
stateful stages, and §III-B adapts the database-style logging schemes
by "grouping all state transactions triggered by a single input event
across the streaming topology and committing them together".

This package implements that adaptation:

- :class:`~repro.topology.stage.StageWorkload` — a transactional
  operator: the usual workload contract plus ``emit_from_output``,
  which deterministically derives the event forwarded downstream from
  the operator's output (or filters it);
- :class:`~repro.topology.engine.TopologyEngine` — a linear chain of
  stages sharing one epoch clock: input events are persisted only at
  the topology ingress, every stage applies its chosen fault-tolerance
  scheme to its own state, epochs group-commit across all stages, and
  recovery replays the chain — downstream inputs are *regenerated* from
  upstream replay, never persisted twice.
"""

from repro.topology.engine import TopologyEngine, TopologyRecoveryReport, TopologyRuntimeReport
from repro.topology.stage import StageWorkload
from repro.topology.stages import FeeAccountingStage, LedgerStage
from repro.topology.verify import topology_ground_truth, verify_topology

__all__ = [
    "TopologyEngine",
    "TopologyRuntimeReport",
    "TopologyRecoveryReport",
    "StageWorkload",
    "LedgerStage",
    "FeeAccountingStage",
    "topology_ground_truth",
    "verify_topology",
]
