"""Topology engine: chained operators, one epoch clock, group commit.

The engine owns a linear chain of :class:`StageWorkload` operators,
each protected by the *same* fault-tolerance scheme class applied to
its own state (stage-local disk for snapshots and logs).  One shared
virtual machine accumulates the time of all stages, and epochs are the
group-commit unit across the whole chain (§III-B):

- **runtime**: input events are persisted once, at the topology ingress
  (the spout); each epoch flows through every stage in order, and each
  stage's outputs deterministically generate the next stage's events;
- **crash**: every stage loses its volatile state; only the ingress
  store, the stage-local durable stores and the sinks survive;
- **recovery**: stages restore their checkpoints (taken at the same
  epoch boundaries, so they are mutually consistent), then each lost
  epoch replays *through the chain* — the upstream stage's regenerated
  outputs feed the downstream stage's replay, so downstream inputs are
  never persisted and exactly-once holds end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro import buckets
from repro.engine.events import Event
from repro.engine.state import StateStore
from repro.errors import ConfigError, RecoveryError
from repro.ft.base import FTScheme
from repro.sim.clock import Machine
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import ParallelExecutor
from repro.storage.stores import Disk
from repro.topology.stage import StageWorkload


@dataclass
class TopologyRuntimeReport:
    """Aggregate runtime metrics plus per-stage event counts."""

    events_processed: int
    epochs: int
    elapsed_seconds: float
    throughput_eps: float
    buckets: Dict[str, float]
    stage_event_counts: List[int]
    bytes_durable: int


@dataclass
class TopologyRecoveryReport:
    """Aggregate recovery metrics across the chain."""

    events_replayed: int
    epochs_replayed: int
    elapsed_seconds: float
    throughput_eps: float
    buckets: Dict[str, float]


class TopologyEngine:
    """A linear chain of transactional operators under one FT scheme."""

    def __init__(
        self,
        stages: Sequence[StageWorkload],
        scheme_cls: Type[FTScheme],
        *,
        num_workers: int = 8,
        epoch_len: int = 256,
        snapshot_interval: int = 5,
        costs: CostModel = DEFAULT_COSTS,
        **scheme_kwargs,
    ):
        if not stages:
            raise ConfigError("a topology needs at least one stage")
        self.num_workers = num_workers
        self.epoch_len = epoch_len
        self.snapshot_interval = snapshot_interval
        self.costs = costs
        self.machine = Machine(num_workers)
        #: topology-level ingress: the only place raw events persist.
        self.ingress = Disk()
        self.stages = list(stages)
        self.schemes: List[FTScheme] = []
        for stage in self.stages:
            scheme = scheme_cls(
                stage,
                num_workers=num_workers,
                epoch_len=epoch_len,
                snapshot_interval=snapshot_interval,
                costs=costs,
                machine=self.machine,
                **scheme_kwargs,
            )
            # Downstream inputs are regenerated from upstream replay;
            # only the topology ingress persists events.
            scheme.persists_events = False
            self.schemes.append(scheme)
        self._pending_events: List[Event] = []
        self._next_epoch = 0
        self._events_processed = 0
        self._stage_event_counts = [0] * len(self.stages)
        self._crashed = False
        self._crash_epoch: Optional[int] = None

    @property
    def sink(self):
        """The terminal operator's output sink."""
        return self.schemes[-1].sink

    def stage_sink(self, index: int):
        return self.schemes[index].sink

    def stage_store(self, index: int) -> Optional[StateStore]:
        return self.schemes[index].store

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------

    def process_stream(self, events: Sequence[Event]) -> TopologyRuntimeReport:
        """Run ``events`` through the whole chain, epoch by epoch."""
        if self._crashed:
            raise RecoveryError("topology has crashed; call recover() first")
        incoming = list(events)
        if incoming and self._persists():
            io_s = self.ingress.events.append_events(
                [e.encoded() for e in incoming]
            )
            self.schemes[0]._charge_runtime_io(io_s, len(incoming) * 24)
        queue = self._pending_events + incoming
        start_elapsed = self.machine.elapsed()
        start_events = self._events_processed
        while len(queue) >= self.epoch_len:
            batch, queue = queue[: self.epoch_len], queue[self.epoch_len :]
            self._process_epoch(batch)
        self._pending_events = queue
        elapsed = self.machine.elapsed() - start_elapsed
        events_done = self._events_processed - start_events
        return TopologyRuntimeReport(
            events_processed=events_done,
            epochs=self._next_epoch,
            elapsed_seconds=elapsed,
            throughput_eps=events_done / elapsed if elapsed > 0 else 0.0,
            buckets=self.machine.bucket_breakdown(),
            stage_event_counts=list(self._stage_event_counts),
            bytes_durable=self.ingress.bytes_stored
            + sum(s.disk.bytes_stored for s in self.schemes),
        )

    def _persists(self) -> bool:
        return type(self.schemes[0]).persists_events

    def _process_epoch(self, batch: Sequence[Event]) -> None:
        epoch_id = self._next_epoch
        if self._persists():
            io_s = self.ingress.events.seal_epoch(epoch_id, len(batch))
            self.schemes[0]._charge_runtime_io(io_s, 16)
        stage_events: Sequence[Event] = batch
        for index, (stage, scheme) in enumerate(zip(self.stages, self.schemes)):
            self._stage_event_counts[index] += len(stage_events)
            outputs = scheme._process_epoch(list(stage_events))
            stage_events = self._forward(stage, outputs)
        self._next_epoch += 1
        self._events_processed += len(batch)

    @staticmethod
    def _forward(stage: StageWorkload, outputs) -> List[Event]:
        forwarded = []
        for seq, output in outputs:
            event = stage.emit_from_output(seq, output)
            if event is not None:
                if event.seq != seq:
                    raise ConfigError(
                        f"stage {stage.name} changed sequence {seq} -> "
                        f"{event.seq}; forwarded events must preserve it"
                    )
                forwarded.append(event)
        return forwarded

    # ------------------------------------------------------------------
    # failure and recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Single-node stoppage: all operators lose volatile state."""
        if self._next_epoch == 0:
            raise RecoveryError("cannot crash before any epoch was processed")
        for scheme in self.schemes:
            scheme.crash()
        self._crashed = True
        self._crash_epoch = self._next_epoch - 1
        self._pending_events = []

    def recover(self) -> TopologyRecoveryReport:
        """Restore every stage and replay lost epochs through the chain."""
        if not self._crashed:
            raise RecoveryError("recover() called without a crash")
        if not type(self.schemes[0]).takes_snapshots:
            raise RecoveryError(
                f"{self.schemes[0].name} cannot recover a topology"
            )
        machine = Machine(self.num_workers)
        executor = ParallelExecutor(
            machine, self.costs.sync_handoff, self.costs.remote_fetch
        )

        # Checkpoints were taken on the same group-commit boundaries, so
        # every stage must hold the same latest snapshot epoch.
        snap_epochs = {
            scheme.disk.snapshots.latest_epoch() for scheme in self.schemes
        }
        if len(snap_epochs) != 1 or None in snap_epochs:
            raise RecoveryError(
                f"inconsistent stage checkpoints: {snap_epochs}"
            )
        snap_epoch = snap_epochs.pop()

        stores: List[StateStore] = []
        for scheme in self.schemes:
            state, io_s = scheme.disk.snapshots.load(snap_epoch)
            store = StateStore()
            store.restore(state)
            machine.spend_all(buckets.RELOAD, io_s)
            stores.append(store)

        events_replayed = 0
        epochs = 0
        for epoch_id in range(snap_epoch + 1, self._crash_epoch + 1):
            raw, io_e = self.ingress.events.read_epochs(epoch_id, epoch_id)
            machine.spend_all(buckets.RELOAD, io_e)
            stage_events: List[Event] = [Event.from_encoded(r) for r in raw]
            events_replayed += len(stage_events)
            for stage, scheme, store in zip(
                self.stages, self.schemes, stores
            ):
                outputs = scheme._recover_epoch(
                    machine, executor, store, epoch_id, stage_events
                )
                for seq, output in outputs:
                    scheme.sink.deliver(seq, output)
                stage_events = self._forward(stage, outputs)
            machine.barrier(buckets.WAIT)
            epochs += 1

        raw_pending, io_p = self.ingress.events.read_pending()
        if raw_pending:
            machine.spend_all(buckets.RELOAD, io_p)
            self._pending_events = [Event.from_encoded(r) for r in raw_pending]

        for scheme, store in zip(self.schemes, stores):
            scheme.store = store
            scheme._crashed = False
        self._crashed = False
        elapsed = machine.elapsed()
        return TopologyRecoveryReport(
            events_replayed=events_replayed,
            epochs_replayed=epochs,
            elapsed_seconds=elapsed,
            throughput_eps=events_replayed / elapsed if elapsed > 0 else 0.0,
            buckets=machine.bucket_breakdown(),
        )
