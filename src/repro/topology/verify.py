"""Topology ground truth: chained serial execution for verification.

The single-operator harness verifies against
:func:`repro.harness.runner.ground_truth`; for a topology the reference
is the serial execution of the whole chain — each stage executed
serially over the (deterministically forwarded) output of the previous
one.  Tests and benches compare every stage's store and the terminal
sink against this.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.engine.state import StateStore
from repro.topology.stage import StageWorkload


def topology_ground_truth(
    stages: Sequence[StageWorkload], events: Sequence[Event]
) -> Tuple[List[StateStore], List[Dict[int, tuple]]]:
    """Per-stage final stores and per-stage outputs of the ideal run."""
    stores: List[StateStore] = []
    outputs_per_stage: List[Dict[int, tuple]] = []
    stage_events: Sequence[Event] = events
    for stage in stages:
        store = stage.initial_state()
        txns = preprocess(stage_events, stage, 0)
        outcome = execute_serial(store, txns)
        outputs = {
            txn.event.seq: stage.output_for(
                txn, txn.txn_id not in outcome.aborted, outcome.op_values
            )
            for txn in txns
        }
        stores.append(store)
        outputs_per_stage.append(outputs)
        forwarded: List[Event] = []
        for seq in sorted(outputs):
            event = stage.emit_from_output(seq, outputs[seq])
            if event is not None:
                forwarded.append(event)
        stage_events = forwarded
    return stores, outputs_per_stage


def verify_topology(engine, stages, events) -> None:
    """Assert an engine's stores and terminal sink match the ground truth.

    Raises ``AssertionError`` with a diagnostic diff on divergence.
    """
    stores, outputs = topology_ground_truth(stages, events)
    for index, expected in enumerate(stores):
        actual = engine.stage_store(index)
        assert actual is not None and actual.equals(expected), (
            f"stage {index} diverged: {actual.diff(expected, 5)}"
        )
    assert engine.sink.outputs() == outputs[-1], "terminal outputs diverged"
