"""CLI exit codes — one table, shared by every subcommand and CI job.

These are contracts: CI greps for specific codes to tell *why* a step
went red (a verification failure reruns under the same seed, a backend
failure skips the job on unsupported hosts, an invariant violation
uploads its minimized counterexample).  Changing a value is a breaking
change to every workflow that consumes it; add new codes at the end.
"""

from __future__ import annotations

#: Success: every verification, gate and invariant held.
EXIT_OK = 0
#: Generic failure: silent divergence, SLO breach, perf regression,
#: data loss, or a crash-point coverage gap in ``repro check``.
EXIT_FAILURE = 1
#: Usage error: bad flags or malformed input files.
EXIT_USAGE = 2
#: The selected execution backend cannot run (unsupported platform,
#: worker count < 1) — distinct so CI can tell "host can't do it"
#: from "recovery was wrong".
EXIT_BACKEND = 3
#: ``repro check`` found (or ``--replay`` reproduced) an invariant
#: violation — there is a concrete fault schedule under which recovery
#: is *wrong*, with a minimized repro file naming it.
EXIT_INVARIANT = 4
