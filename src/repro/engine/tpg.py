"""Task precedence graph (TPG) construction.

MorphStream's TxnManager turns a batch of state transactions into a
graph whose vertices are state access operations and whose edges are
the fine-grained dependencies of §II-A:

- **TD** (temporal): previous operation writing the same record;
- **PD** (parametric): for every cross-key read (operation read sets and
  condition refs), the most recent earlier-timestamp writer of that
  record inside the batch — or the base state if none;
- **LD** (logical): every non-validator operation depends on its
  transaction's condition-variable-check (first operation).

Timestamp order is a topological order of this graph (all edges point
from smaller to strictly smaller-or-equal-txn sources), which the
executors rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.engine.transactions import Transaction

#: (ref, source op uid or None): where a read's value comes from.
ReadSource = Tuple[StateRef, Optional[int]]


@dataclass
class TaskPrecedenceGraph:
    """The dependency structure of one batch of transactions."""

    txns: Tuple[Transaction, ...]
    #: All operations in timestamp (and hence topological) order.
    ops: Tuple[Operation, ...] = ()
    #: Per-record operation chains, timestamp-sorted.
    chains: Dict[StateRef, List[Operation]] = field(default_factory=dict)
    #: op uid -> uid of the previous writer of the same record (TD).
    td_prev: Dict[int, int] = field(default_factory=dict)
    #: op uid -> read sources for ``op.reads`` in order (PD).
    pd_sources: Dict[int, Tuple[ReadSource, ...]] = field(default_factory=dict)
    #: txn id -> read sources for the union of condition refs (PD).
    cond_sources: Dict[int, Tuple[ReadSource, ...]] = field(default_factory=dict)
    #: txn id -> uid of the condition-variable-check operation (LD hub).
    validator_uid: Dict[int, int] = field(default_factory=dict)
    op_by_uid: Dict[int, Operation] = field(default_factory=dict)
    txn_by_id: Dict[int, Transaction] = field(default_factory=dict)

    def dependencies(self, op: Operation) -> List[int]:
        """All dependency uids of ``op`` (TD + PD + LD), deduplicated."""
        deps: List[int] = []
        prev = self.td_prev.get(op.uid)
        if prev is not None:
            deps.append(prev)
        for _ref, src in self.pd_sources.get(op.uid, ()):
            if src is not None:
                deps.append(src)
        validator = self.validator_uid[op.txn_id]
        if op.uid == validator:
            for _ref, src in self.cond_sources.get(op.txn_id, ()):
                if src is not None:
                    deps.append(src)
        else:
            deps.append(validator)
        # Deduplicate while preserving order.
        seen: set = set()
        unique = []
        for uid in deps:
            if uid not in seen and uid != op.uid:
                seen.add(uid)
                unique.append(uid)
        return unique

    def edge_counts(self) -> Dict[str, int]:
        """Number of TD / PD / LD edges — sizing for logs and costs."""
        td = len(self.td_prev)
        pd = sum(
            1
            for sources in self.pd_sources.values()
            for _ref, src in sources
            if src is not None
        )
        pd += sum(
            1
            for sources in self.cond_sources.values()
            for _ref, src in sources
            if src is not None
        )
        ld = sum(len(txn.ops) - 1 for txn in self.txns)
        return {"td": td, "pd": pd, "ld": ld}


def build_tpg(txns: Sequence[Transaction]) -> TaskPrecedenceGraph:
    """Construct the TPG for ``txns`` (any order; sorted by timestamp)."""
    ordered = tuple(sorted(txns, key=lambda t: t.ts))
    tpg = TaskPrecedenceGraph(txns=ordered)
    last_writer: Dict[StateRef, int] = {}
    ops: List[Operation] = []

    for txn in ordered:
        tpg.txn_by_id[txn.txn_id] = txn
        tpg.validator_uid[txn.txn_id] = txn.ops[0].uid

        # Resolve sources against writers of strictly earlier
        # transactions: the last_writer map is updated only after the
        # whole transaction is processed (snapshot read semantics).
        cond_refs: List[StateRef] = []
        seen_cond: set = set()
        for cond in txn.conditions:
            for ref in cond.refs:
                if ref not in seen_cond:
                    seen_cond.add(ref)
                    cond_refs.append(ref)
        tpg.cond_sources[txn.txn_id] = tuple(
            (ref, last_writer.get(ref)) for ref in cond_refs
        )

        for op in txn.ops:
            ops.append(op)
            tpg.op_by_uid[op.uid] = op
            tpg.pd_sources[op.uid] = tuple(
                (ref, last_writer.get(ref)) for ref in op.reads
            )
            prev = last_writer.get(op.ref)
            if prev is not None:
                tpg.td_prev[op.uid] = prev
            tpg.chains.setdefault(op.ref, []).append(op)

        for op in txn.ops:
            last_writer[op.ref] = op.uid

    tpg.ops = tuple(ops)
    return tpg
