"""Shared execution machinery: value-passing parallel execution of a TPG
plus the translation of executed operations into costed simulator tasks.

Two layers live here:

1. :func:`execute_tpg` — the *semantic* layer.  It computes the result
   of a batch using only edge-local information (each operation's
   inputs come from its TD predecessor, its PD sources and the base
   state — never from a global cursor).  This is exactly the
   information a parallel worker has, so equality with
   :func:`repro.engine.serial.execute_serial` (enforced by tests)
   certifies that any dependency-respecting parallel schedule is
   conflict-equivalent to timestamp order.

2. :func:`build_op_tasks` / :func:`op_cost` — the *timing* layer.  It
   converts the executed operations into :class:`~repro.sim.SimTask`
   DAGs for the list-scheduling simulator, charging the calibrated cost
   model per primitive actually performed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.engine.events import Event
from repro.engine.functions import apply_state_function, evaluate_condition
from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.engine.serial import SerialOutcome
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph
from repro.engine.transactions import Transaction
from repro.sim.costs import CostModel
from repro.storage.codec import encode
from repro.sim.executor import SimTask

WorkerOf = Callable[[StateRef], int]


def execute_tpg(store: StateStore, tpg: TaskPrecedenceGraph) -> SerialOutcome:
    """Execute a batch through its TPG, mutating ``store``.

    Each operation's inputs are resolved strictly through graph edges;
    the final value of every record is the value after the last
    operation of its chain.  Returns the same outcome structure as the
    serial executor.
    """
    outcome = SerialOutcome()
    base: Dict[StateRef, float] = {}
    value_after: Dict[int, float] = {}

    def base_value(ref: StateRef) -> float:
        if ref not in base:
            base[ref] = store.get(ref)
        return base[ref]

    def resolve(ref: StateRef, source: Optional[int]) -> float:
        return value_after[source] if source is not None else base_value(ref)

    for txn in tpg.txns:
        cond_vals = {
            ref: resolve(ref, src)
            for ref, src in tpg.cond_sources.get(txn.txn_id, ())
        }
        outcome.cond_values[txn.txn_id] = cond_vals
        committed = all(
            evaluate_condition(
                cond.func, [cond_vals[r] for r in cond.refs], cond.params
            )
            for cond in txn.conditions
        )
        for op in txn.ops:
            reads = tuple(
                resolve(ref, src) for ref, src in tpg.pd_sources[op.uid]
            )
            outcome.read_values[op.uid] = reads
            prev = tpg.td_prev.get(op.uid)
            own = value_after[prev] if prev is not None else base_value(op.ref)
            if committed:
                value = apply_state_function(op.func, own, reads, op.params)
                outcome.op_values[op.uid] = value
            else:
                value = own  # aborted operations leave the record unchanged
            value_after[op.uid] = value
        if not committed:
            outcome.aborted.add(txn.txn_id)
        outcome.decisions.append((txn.event.seq, committed))

    for ref, chain in tpg.chains.items():
        store.set(ref, value_after[chain[-1].uid])
    return outcome


def preprocess(
    events: Sequence[Event], workload, uid_base: int = 0
) -> List[Transaction]:
    """Deterministically turn events into transactions (step ① of §II-B).

    ``workload`` must expose ``build_transaction(event, uid_base)``
    returning a :class:`Transaction` whose operation uids start at
    ``uid_base`` and are contiguous.  Events are processed in sequence
    order so uids are globally timestamp-ordered.
    """
    txns: List[Transaction] = []
    next_uid = uid_base
    for event in sorted(events, key=lambda e: e.seq):
        txn = workload.build_transaction(event, next_uid)
        next_uid += len(txn.ops)
        txns.append(txn)
    return txns


def stable_hash(ref: StateRef) -> int:
    """Process-independent hash of a state ref.

    Python's built-in ``hash`` of strings is salted per process
    (PYTHONHASHSEED), which would make experiments non-reproducible;
    use CRC32 over the codec encoding instead.
    """
    return crc32(encode(ref.encoded()))


def hash_worker_of(num_workers: int) -> WorkerOf:
    """MorphStream's default placement: records hash to workers.

    All operations of one chain land on one worker (chains are the unit
    of data locality); different chains spread by a deterministic,
    process-independent hash of the ref.
    """

    def worker_of(ref: StateRef) -> int:
        return stable_hash(ref) % num_workers

    return worker_of


def op_cost(
    op: Operation,
    tpg: TaskPrecedenceGraph,
    outcome: SerialOutcome,
    costs: CostModel,
    charge_conditions: bool = True,
) -> float:
    """CPU seconds one operation costs during (re-)execution.

    Own write + each cross-key read are state accesses; committed
    operations additionally run the UDF; the validator resolves and
    checks every condition of its transaction.
    """
    txn = tpg.txn_by_id[op.txn_id]
    committed = txn.txn_id not in outcome.aborted
    if committed:
        seconds = costs.state_access * (1 + len(op.reads)) + costs.udf
    else:
        # An aborted transaction's operations are visited but never
        # resolve their reads or run the UDF — only the no-op pass over
        # the record (the rollback itself is charged separately).
        seconds = costs.state_access
    if charge_conditions and op.uid == tpg.validator_uid[op.txn_id]:
        num_cond_refs = len(tpg.cond_sources.get(op.txn_id, ()))
        seconds += costs.state_access * num_cond_refs
        seconds += costs.condition_check * len(txn.conditions)
    return seconds


def build_op_tasks(
    tpg: TaskPrecedenceGraph,
    outcome: SerialOutcome,
    costs: CostModel,
    worker_of: WorkerOf,
    bucket: str = "execute",
    include_pd: bool = True,
    include_ld: bool = True,
    charge_aborts: bool = True,
    abort_bucket: str = "abort",
    extra_cost_per_op: float = 0.0,
    explore_per_dep: float = 0.0,
    explore_bucket: str = "explore",
    extra_per_op: Tuple[Tuple[str, float], ...] = (),
) -> List[SimTask]:
    """Build the costed task DAG for dependency-respecting execution.

    One :class:`SimTask` per operation, pinned to ``worker_of(op.ref)``
    (chain locality).  ``include_pd`` / ``include_ld`` let recovery
    schemes that have eliminated those dependency classes drop the
    corresponding edges — that is the whole point of MorphStreamR.
    Aborted transactions charge ``abort_transaction`` on their
    validator's worker (rollback handling) unless ``charge_aborts`` is
    off (abort pushdown).
    """
    tasks: List[SimTask] = []
    for op in tpg.ops:
        deps: List[int] = []
        prev = tpg.td_prev.get(op.uid)
        if prev is not None:
            deps.append(prev)
        validator = tpg.validator_uid[op.txn_id]
        committed = op.txn_id not in outcome.aborted
        if include_pd and committed:
            # Aborted transactions never resolve their reads, so their
            # operations impose no parametric waits — higher abort
            # ratios genuinely thin the dependency graph.
            for _ref, src in tpg.pd_sources.get(op.uid, ()):
                if src is not None:
                    deps.append(src)
        if include_pd and op.uid == validator:
            # Condition reads are always resolved (they decide the abort).
            for _ref, src in tpg.cond_sources.get(op.txn_id, ()):
                if src is not None:
                    deps.append(src)
        if include_ld and op.uid != validator:
            deps.append(validator)
        seconds = op_cost(op, tpg, outcome, costs, charge_conditions=include_ld)
        seconds += extra_cost_per_op
        unique_deps = tuple(dict.fromkeys(d for d in deps if d != op.uid))
        extra = list(extra_per_op)
        if explore_per_dep and unique_deps:
            extra.append((explore_bucket, explore_per_dep * len(unique_deps)))
        tasks.append(
            SimTask(
                uid=op.uid,
                worker=worker_of(op.ref),
                cost=seconds,
                deps=unique_deps,
                bucket=bucket,
                extra=tuple(extra),
            )
        )
    if charge_aborts and outcome.aborted:
        # Rollback handling runs where the validator ran; model it as a
        # synthetic follow-up task in the abort bucket so the recovery
        # breakdown (Fig. 11) can report it separately.  Synthetic uids
        # are negative, which never collides with operation uids.
        worker_by_uid = {t.uid: t.worker for t in tasks}
        for txn_id in sorted(outcome.aborted):
            validator = tpg.validator_uid[txn_id]
            tasks.append(
                SimTask(
                    uid=-(txn_id + 1),
                    worker=worker_by_uid[validator],
                    cost=costs.abort_transaction,
                    deps=(validator,),
                    bucket=abort_bucket,
                )
            )
    return tasks
