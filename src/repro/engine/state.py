"""Shared mutable state: tables of numeric records.

The two-table layout of Streaming Ledger (accounts, assets), the
single-table Grep&Sum store and the two-table Toll Processing store all
fit the same model: named tables mapping keys to float values.  The
store supports codec-friendly snapshots (used for global checkpoints)
and exact-equality comparison (used by every recovery test).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.engine.refs import Key, StateRef
from repro.errors import ConfigError, TransactionError


class StateStore:
    """In-memory multi-table key/value store of float records."""

    def __init__(self, tables: Mapping[str, Mapping[Key, float]] = ()):
        self._tables: Dict[str, Dict[Key, float]] = {}
        if tables:
            for name, records in tables.items():
                self.create_table(name, records)

    def create_table(self, name: str, records: Mapping[Key, float] = ()) -> None:
        if name in self._tables:
            raise ConfigError(f"table {name!r} already exists")
        self._tables[name] = dict(records)

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def num_records(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def get(self, ref: StateRef) -> float:
        try:
            return self._tables[ref.table][ref.key]
        except KeyError:
            raise TransactionError(f"no record at {ref}") from None

    def peek(self, ref: StateRef):
        """Non-raising read: the record's value, or ``None`` if absent.

        Used by the degraded-serving path, which reads records out of a
        restored checkpoint snapshot and must distinguish "key was never
        part of the state" from a transaction-level error.
        """
        table = self._tables.get(ref.table)
        if table is None:
            return None
        return table.get(ref.key)

    def set(self, ref: StateRef, value: float) -> None:
        table = self._tables.get(ref.table)
        if table is None or ref.key not in table:
            raise TransactionError(f"no record at {ref}")
        table[ref.key] = value

    def refs(self) -> Iterable[StateRef]:
        for name, table in self._tables.items():
            for key in table:
                yield StateRef(name, key)

    def snapshot(self) -> Dict[str, Dict[Key, float]]:
        """Deep, codec-serializable copy of every table."""
        return {name: dict(table) for name, table in self._tables.items()}

    def restore(self, snapshot: Mapping[str, Mapping[Key, float]]) -> None:
        """Replace all contents with ``snapshot`` (as taken by :meth:`snapshot`)."""
        self._tables = {name: dict(table) for name, table in snapshot.items()}

    def copy(self) -> "StateStore":
        fresh = StateStore()
        fresh._tables = self.snapshot()
        return fresh

    def equals(self, other: "StateStore", tolerance: float = 0.0) -> bool:
        """Exact (or toleranced) equality of all tables and records."""
        if set(self._tables) != set(other._tables):
            return False
        for name, table in self._tables.items():
            other_table = other._tables[name]
            if set(table) != set(other_table):
                return False
            for key, value in table.items():
                if tolerance:
                    if abs(value - other_table[key]) > tolerance:
                        return False
                elif value != other_table[key]:
                    return False
        return True

    def diff(self, other: "StateStore", limit: int = 10) -> list:
        """First ``limit`` differing records — recovery-failure diagnostics."""
        differences = []
        for name in sorted(set(self._tables) | set(other._tables)):
            mine = self._tables.get(name, {})
            theirs = other._tables.get(name, {})
            for key in sorted(set(mine) | set(theirs), key=str):
                a, b = mine.get(key), theirs.get(key)
                if a != b:
                    differences.append((StateRef(name, key), a, b))
                    if len(differences) >= limit:
                        return differences
        return differences
