"""Schedule validation: is an execution order conflict-equivalent?

A parallel schedule is correct iff it is conflict-equivalent to
timestamp order (§II-A).  For any proposed execution order of a batch's
operations, that reduces to: every operation appears exactly once, and
every TD/PD/LD predecessor of an operation appears before it.

:func:`assert_schedule_valid` checks this against a TPG and raises
:class:`~repro.errors.SchedulingError` with a precise diagnosis on the
first violation.  The shadow-exploration tests and the MorphStreamR
recovery tests use it to certify the orders the system actually runs;
it is also a public API for anyone extending the scheduler.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.engine.operations import Operation
from repro.engine.tpg import TaskPrecedenceGraph
from repro.errors import SchedulingError


def assert_schedule_valid(
    order: Sequence[Operation],
    tpg: TaskPrecedenceGraph,
    ignore_pd: bool = False,
    ignore_ld: bool = False,
) -> None:
    """Verify ``order`` is a valid linearization of ``tpg``.

    ``ignore_pd`` / ``ignore_ld`` relax the corresponding edge classes —
    a schedule produced after dependency *elimination* (view lookups,
    abort pushdown) is valid without them, because the eliminated edges
    are satisfied by recorded intermediate results rather than ordering.
    """
    position: Dict[int, int] = {}
    for index, op in enumerate(order):
        if op.uid in position:
            raise SchedulingError(f"operation {op.uid} scheduled twice")
        position[op.uid] = index

    expected = {op.uid for op in tpg.ops}
    missing = expected - set(position)
    if missing:
        raise SchedulingError(
            f"{len(missing)} operations never scheduled "
            f"(first: {sorted(missing)[:5]})"
        )
    extra = set(position) - expected
    if extra:
        raise SchedulingError(
            f"schedule contains unknown operations {sorted(extra)[:5]}"
        )

    for op in order:
        prev = tpg.td_prev.get(op.uid)
        if prev is not None and position[prev] > position[op.uid]:
            raise SchedulingError(
                f"TD violation: {op.uid} ran before its chain "
                f"predecessor {prev}"
            )
        validator = tpg.validator_uid[op.txn_id]
        if not ignore_ld and op.uid != validator:
            if position[validator] > position[op.uid]:
                raise SchedulingError(
                    f"LD violation: {op.uid} ran before validator {validator}"
                )
        if ignore_pd:
            continue
        for _ref, src in tpg.pd_sources.get(op.uid, ()):
            if src is not None and position[src] > position[op.uid]:
                raise SchedulingError(
                    f"PD violation: {op.uid} read from {src} before it ran"
                )
        if op.uid == validator:
            for _ref, src in tpg.cond_sources.get(op.txn_id, ()):
                if src is not None and position[src] > position[op.uid]:
                    raise SchedulingError(
                        f"PD violation: validator {op.uid} checked a "
                        f"condition before source {src} ran"
                    )


def is_schedule_valid(
    order: Sequence[Operation],
    tpg: TaskPrecedenceGraph,
    ignore_pd: bool = False,
    ignore_ld: bool = False,
) -> bool:
    """Boolean form of :func:`assert_schedule_valid`."""
    try:
        assert_schedule_valid(order, tpg, ignore_pd, ignore_ld)
    except SchedulingError:
        return False
    return True
