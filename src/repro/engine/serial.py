"""Serial ground-truth executor.

Executes a batch of state transactions strictly in timestamp order with
the TSP semantics of §II-A: all reads of a transaction observe the
state after every earlier transaction and before the transaction's own
writes; a transaction whose conditions fail aborts atomically.

Every parallel scheme in this repository must produce a final state
identical to this executor's — that is the conflict-equivalence
correctness criterion, and the property tests enforce it.

Besides the final state, the outcome captures exactly the artifacts the
fault-tolerance schemes need to log:

- ``aborted``: transaction ids whose conditions failed (the content of
  MorphStreamR's AbortView);
- ``op_values``: per-operation written value;
- ``read_values``: per-operation resolved values of its cross-key reads
  (the content of the ParametricView);
- ``cond_values``: per-transaction resolved condition-ref values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.engine.functions import apply_state_function, evaluate_condition
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction


@dataclass
class SerialOutcome:
    """Everything observable about one serially executed batch."""

    aborted: Set[int] = field(default_factory=set)
    #: op uid -> value written (committed ops only).
    op_values: Dict[int, float] = field(default_factory=dict)
    #: op uid -> tuple of resolved values for ``op.reads`` (all ops).
    read_values: Dict[int, Tuple[float, ...]] = field(default_factory=dict)
    #: txn id -> {ref: resolved value} for condition refs.
    cond_values: Dict[int, Dict[StateRef, float]] = field(default_factory=dict)
    #: (event seq, committed flag) in timestamp order.
    decisions: List[Tuple[int, bool]] = field(default_factory=list)


def execute_serial(store: StateStore, txns: Sequence[Transaction]) -> SerialOutcome:
    """Execute ``txns`` in timestamp order, mutating ``store``.

    ``txns`` may be supplied in any order; they are sorted by timestamp
    first.  Returns the :class:`SerialOutcome` ground truth.
    """
    outcome = SerialOutcome()
    for txn in sorted(txns, key=lambda t: t.ts):
        # Resolve every value the transaction may read, against the
        # pre-transaction state (snapshot semantics).
        cond_refs: Dict[StateRef, float] = {}
        for cond in txn.conditions:
            for ref in cond.refs:
                if ref not in cond_refs:
                    cond_refs[ref] = store.get(ref)
        outcome.cond_values[txn.txn_id] = cond_refs

        committed = all(
            evaluate_condition(
                cond.func, [cond_refs[r] for r in cond.refs], cond.params
            )
            for cond in txn.conditions
        )

        writes: List[Tuple[StateRef, float]] = []
        for op in txn.ops:
            reads = tuple(store.get(ref) for ref in op.reads)
            outcome.read_values[op.uid] = reads
            if committed:
                own = store.get(op.ref)
                value = apply_state_function(op.func, own, reads, op.params)
                outcome.op_values[op.uid] = value
                writes.append((op.ref, value))

        if committed:
            for ref, value in writes:
                store.set(ref, value)
        else:
            outcome.aborted.add(txn.txn_id)
        outcome.decisions.append((txn.event.seq, committed))
    return outcome
