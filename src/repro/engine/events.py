"""Input events.

An event is the unit of the delivery guarantee: it must affect state
exactly once and produce exactly one output (§II-C).  ``seq`` is the
global arrival sequence number and doubles as the timestamp of the
state transaction the event triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Event:
    """One input event: ``(seq, kind, payload)``.

    ``kind`` selects the transaction template in the workload (e.g.
    ``"transfer"`` vs ``"deposit"`` in Streaming Ledger); ``payload``
    carries the template's parameters and must be codec-serializable.
    """

    seq: int
    kind: str
    payload: Tuple = ()

    def encoded(self) -> tuple:
        return (self.seq, self.kind, self.payload)

    @staticmethod
    def from_encoded(raw: tuple) -> "Event":
        seq, kind, payload = raw
        return Event(seq, kind, tuple(payload))
