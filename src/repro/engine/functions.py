"""Registry of deterministic state functions and abort conditions.

The TSP model (§II-A, Def. 1) writes ``W_t(k, v)`` with
``v = f(k_1, ..., k_n)`` for a *user-defined function* ``f``.  To make
transactions replayable from command logs, ``f`` must be named and
deterministic; this module is the name → function registry.

Two kinds of callables are registered:

- **state functions** ``f(own, reads, params) -> float`` where ``own``
  is the current value of the written key, ``reads`` are the resolved
  values of ``op.reads`` in order, and ``params`` are the event's
  immutable parameters;
- **conditions** ``c(values, params) -> bool`` evaluated against the
  resolved values of the condition's refs; any ``False`` aborts the
  whole transaction (the logical-dependency semantics of §II-A).

Workloads may register additional functions; names already taken raise
:class:`~repro.errors.ConfigError` to keep replay unambiguous.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.errors import ConfigError, TransactionError

StateFn = Callable[[float, Sequence[float], Tuple], float]
ConditionFn = Callable[[Sequence[float], Tuple], bool]

_STATE_FUNCTIONS: Dict[str, StateFn] = {}
_CONDITIONS: Dict[str, ConditionFn] = {}


def register_state_function(name: str, fn: StateFn) -> None:
    """Register a named deterministic state function."""
    if name in _STATE_FUNCTIONS:
        raise ConfigError(f"state function {name!r} already registered")
    _STATE_FUNCTIONS[name] = fn


def register_condition(name: str, fn: ConditionFn) -> None:
    """Register a named deterministic abort condition."""
    if name in _CONDITIONS:
        raise ConfigError(f"condition {name!r} already registered")
    _CONDITIONS[name] = fn


def state_function(name: str) -> StateFn:
    try:
        return _STATE_FUNCTIONS[name]
    except KeyError:
        raise TransactionError(f"unknown state function {name!r}") from None


def condition_function(name: str) -> ConditionFn:
    try:
        return _CONDITIONS[name]
    except KeyError:
        raise TransactionError(f"unknown condition {name!r}") from None


def apply_state_function(
    name: str, own: float, reads: Sequence[float], params: Tuple
) -> float:
    """Evaluate a registered state function."""
    return state_function(name)(own, reads, params)


def evaluate_condition(name: str, values: Sequence[float], params: Tuple) -> bool:
    """Evaluate a registered condition."""
    return condition_function(name)(values, params)


# --------------------------------------------------------------------------
# Built-in functions used by the paper's three benchmark applications.
# --------------------------------------------------------------------------

def _deposit(own: float, reads: Sequence[float], params: Tuple) -> float:
    """SL deposit: add ``params[0]`` to the account/asset balance."""
    return own + params[0]


def _debit(own: float, reads: Sequence[float], params: Tuple) -> float:
    """SL transfer source: subtract the transferred amount."""
    return own - params[0]


def _credit(own: float, reads: Sequence[float], params: Tuple) -> float:
    """SL transfer destination: add the transferred amount."""
    return own + params[0]


def _credit_from(own: float, reads: Sequence[float], params: Tuple) -> float:
    """SL transfer destination reading the source record (Fig. 3, f3).

    The credited amount is capped by the source's pre-transaction
    balance — the parametric dependency on the debited state.  With the
    sufficient-balance condition holding, the cap never binds, so the
    transfer stays symmetric with the debit side.
    """
    return own + min(params[0], reads[0])


def _write_sum(own: float, reads: Sequence[float], params: Tuple) -> float:
    """GS sum: write the summation of the read list (plus own) back."""
    return own + sum(reads)


def _grep_sum(own: float, reads: Sequence[float], params: Tuple) -> float:
    """Numerically stable GS summation.

    The literal ``own + sum(reads)`` diverges to infinity over long
    skewed streams, which would mask state-equality bugs in tests.
    This variant writes a *scaled* summation plus the event's own
    contribution (``params[0]``): still "read a list, write a summation
    result back to the first state", but contractive so values stay
    finite and distinguishable.
    """
    scale = 0.5 / (len(reads) + 1) if reads else 0.5
    return own * 0.5 + sum(reads) * scale + params[0]


def _scale_add(own: float, reads: Sequence[float], params: Tuple) -> float:
    """Generic ``own * params[0] + params[1]`` update."""
    return own * params[0] + params[1]


def _ewma(own: float, reads: Sequence[float], params: Tuple) -> float:
    """TP road speed: exponentially weighted moving average.

    ``params = (reported_speed, alpha)``.
    """
    speed, alpha = params
    return own * (1.0 - alpha) + speed * alpha


def _increment(own: float, reads: Sequence[float], params: Tuple) -> float:
    """TP vehicle count: bump by one."""
    return own + 1.0


def _set_value(own: float, reads: Sequence[float], params: Tuple) -> float:
    """Blind write of ``params[0]``."""
    return float(params[0])


def _identity(own: float, reads: Sequence[float], params: Tuple) -> float:
    """Pure read: the record's value, unchanged (Def. 1's ``R_t(k)``).

    A read is modeled as a write of the unchanged value, so it takes a
    position in the record's chain (it must observe the value at its
    timestamp) while leaving the state untouched.
    """
    return own


def _cond_ge(values: Sequence[float], params: Tuple) -> bool:
    """values[0] >= params[0] — e.g. sufficient balance."""
    return values[0] >= params[0]


def _cond_gt(values: Sequence[float], params: Tuple) -> bool:
    return values[0] > params[0]


def _cond_lt(values: Sequence[float], params: Tuple) -> bool:
    return values[0] < params[0]


def _cond_always(values: Sequence[float], params: Tuple) -> bool:
    return True


def _cond_never(values: Sequence[float], params: Tuple) -> bool:
    """Deterministic forced abort (workload-controlled abort ratio)."""
    return False


register_state_function("deposit", _deposit)
register_state_function("debit", _debit)
register_state_function("credit", _credit)
register_state_function("credit_from", _credit_from)
register_state_function("write_sum", _write_sum)
register_state_function("grep_sum", _grep_sum)
register_state_function("scale_add", _scale_add)
register_state_function("ewma", _ewma)
register_state_function("increment", _increment)
register_state_function("set_value", _set_value)
register_state_function("identity", _identity)

register_condition("ge", _cond_ge)
register_condition("gt", _cond_gt)
register_condition("lt", _cond_lt)
register_condition("always", _cond_always)
register_condition("never", _cond_never)
