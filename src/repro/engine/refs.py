"""References to shared mutable state records.

A :class:`StateRef` names one record: ``(table, key)``.  It is the unit
of temporal dependencies (two operations conflict iff they target the
same ref) and the vertex key for operation chains.
"""

from __future__ import annotations

from typing import NamedTuple, Union

Key = Union[int, str]


class StateRef(NamedTuple):
    """Immutable (table, key) address of one shared state record."""

    table: str
    key: Key

    def encoded(self) -> tuple:
        """Codec-friendly representation (plain tuple)."""
        return (self.table, self.key)

    @staticmethod
    def from_encoded(raw: tuple) -> "StateRef":
        return StateRef(raw[0], raw[1])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}[{self.key}]"
