"""State transactions (Def. 2): all state accesses of one input event.

Invariants enforced at construction time:

- all operations share the transaction's timestamp;
- no two operations write the same record (within-transaction reads see
  the pre-transaction snapshot, so a double write would be ambiguous);
- the first operation is the designated *condition-variable-check*
  (§VI-A2): it is the operation on which every other operation in the
  transaction logically depends, and it evaluates all conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.errors import TransactionError


@dataclass(frozen=True)
class Transaction:
    """One state transaction: ordered operations plus abort conditions."""

    txn_id: int
    ts: int
    event: Event
    ops: Tuple[Operation, ...]
    conditions: Tuple[Condition, ...] = ()

    def __post_init__(self) -> None:
        if not self.ops:
            raise TransactionError(f"transaction {self.txn_id} has no operations")
        seen: set = set()
        for op in self.ops:
            if op.ts != self.ts or op.txn_id != self.txn_id:
                raise TransactionError(
                    f"operation {op.uid} has ts/txn ({op.ts}, {op.txn_id}) "
                    f"!= transaction ({self.ts}, {self.txn_id})"
                )
            if op.ref in seen:
                raise TransactionError(
                    f"transaction {self.txn_id} writes {op.ref} twice"
                )
            seen.add(op.ref)

    @property
    def validator(self) -> Operation:
        """The condition-variable-check operation (first state access)."""
        return self.ops[0]

    def write_set(self) -> FrozenSet[StateRef]:
        return frozenset(op.ref for op in self.ops)

    def read_set(self) -> FrozenSet[StateRef]:
        """Every record the transaction reads (ops' reads + condition refs)."""
        refs = set()
        for op in self.ops:
            refs.update(op.reads)
        for cond in self.conditions:
            refs.update(cond.refs)
        return frozenset(refs)

    def num_state_accesses(self) -> int:
        """Reads + writes performed, the cost weight used for scheduling."""
        return len(self.ops) + sum(len(op.reads) for op in self.ops) + sum(
            len(c.refs) for c in self.conditions
        )
