"""State access operations and transaction-level abort conditions.

Following Def. 1 of the paper, every operation is a timestamped write
``W_t(k, f(k_1, ..., k_n))``; pure reads appear as the read set of a
write (the workloads in §VIII have no standalone reads either).  The
cross-key reads in ``reads`` are exactly what induces *parametric
dependencies*; the per-transaction :class:`Condition` list is what
induces *logical dependencies* (one failing condition aborts every
operation of the transaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.engine.refs import StateRef


@dataclass(frozen=True)
class Condition:
    """A transaction-level abort predicate.

    ``func`` names a registered condition; ``refs`` are the state
    records whose (pre-transaction) values are passed to it, and
    ``params`` the event parameters.  Per §VI-A2 the engine designates
    the transaction's first operation as the *condition-variable-check*
    that evaluates all conditions; other operations logically depend on
    it.
    """

    func: str
    refs: Tuple[StateRef, ...] = ()
    params: Tuple = ()

    def encoded(self) -> tuple:
        return (self.func, tuple(r.encoded() for r in self.refs), self.params)

    @staticmethod
    def from_encoded(raw: tuple) -> "Condition":
        func, refs, params = raw
        return Condition(func, tuple(StateRef.from_encoded(r) for r in refs), tuple(params))


@dataclass(frozen=True)
class Operation:
    """One timestamped write to a shared state record.

    ``uid`` is unique within a processing batch and assigned in
    timestamp order by preprocessing, so ascending-uid order is a
    topological order of the TPG.  ``reads`` lists the *other* records
    the state function consumes; the operation's own record is passed
    separately as ``own``.
    """

    uid: int
    txn_id: int
    ts: int
    ref: StateRef
    func: str
    params: Tuple = ()
    reads: Tuple[StateRef, ...] = ()

    def encoded(self) -> tuple:
        return (
            self.uid,
            self.txn_id,
            self.ts,
            self.ref.encoded(),
            self.func,
            self.params,
            tuple(r.encoded() for r in self.reads),
        )

    @staticmethod
    def from_encoded(raw: tuple) -> "Operation":
        uid, txn_id, ts, ref, func, params, reads = raw
        return Operation(
            uid=uid,
            txn_id=txn_id,
            ts=ts,
            ref=StateRef.from_encoded(ref),
            func=func,
            params=tuple(params),
            reads=tuple(StateRef.from_encoded(r) for r in reads),
        )
