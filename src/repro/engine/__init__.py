"""MorphStream substrate: the host TSPE the paper builds on.

This package implements the transactional stream processing model of
§II — shared mutable state tables, state access operations, state
transactions with temporal/logical/parametric dependencies, the
three-step programming model (preprocessing → state access →
postprocessing) — plus the task precedence graph (TPG) and the
dual-phase execution pipeline of MorphStream that every fault-tolerance
scheme in :mod:`repro.ft` and :mod:`repro.core` runs on.
"""

from repro.engine.events import Event
from repro.engine.operations import Condition, Operation
from repro.engine.refs import StateRef
from repro.engine.serial import SerialOutcome, execute_serial
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph, build_tpg
from repro.engine.transactions import Transaction

__all__ = [
    "Event",
    "StateRef",
    "Operation",
    "Condition",
    "Transaction",
    "StateStore",
    "SerialOutcome",
    "execute_serial",
    "TaskPrecedenceGraph",
    "build_tpg",
]
