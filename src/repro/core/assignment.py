"""Optimized task assignment (§V-B3): greedy LPT scheduling.

After abort pushdown and operation restructuring only temporal
dependencies remain, so a task's execution time is essentially its
operation count.  Tasks are sorted by weight (descending) and each is
assigned to the worker with the minimum accumulated load — the classic
longest-processing-time-first greedy, whose makespan is within 4/3 of
optimal.  The tests check the 2x-lower-bound guarantee.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.errors import ConfigError


def lpt_assign(
    weights: Sequence[float], num_workers: int
) -> Tuple[List[int], List[float]]:
    """Assign ``weights[i]`` to a worker; returns (assignment, loads).

    Deterministic: equal-weight tasks keep index order, equal-load
    workers break ties on worker id.
    """
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    for w in weights:
        if w < 0:
            raise ConfigError("task weights must be >= 0")
    assignment = [0] * len(weights)
    loads = [0.0] * num_workers
    heap: List[Tuple[float, int]] = [(0.0, wid) for wid in range(num_workers)]
    heapq.heapify(heap)
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for i in order:
        load, wid = heapq.heappop(heap)
        assignment[i] = wid
        load += weights[i]
        loads[wid] = load
        heapq.heappush(heap, (load, wid))
    return assignment, loads


def round_robin_assign(
    weights: Sequence[float], num_workers: int
) -> Tuple[List[int], List[float]]:
    """Unoptimized baseline: tasks dealt to workers in index order.

    This is what the factor analysis (Fig. 11d) runs before
    ``+OptTaskAssign`` is enabled.
    """
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    assignment = [i % num_workers for i in range(len(weights))]
    loads = [0.0] * num_workers
    for i, w in enumerate(weights):
        loads[assignment[i]] += w
    return assignment, loads


def makespan(loads: Sequence[float]) -> float:
    """The schedule length implied by per-worker loads."""
    return max(loads) if loads else 0.0
