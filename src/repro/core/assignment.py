"""Optimized task assignment (§V-B3): greedy LPT scheduling.

After abort pushdown and operation restructuring only temporal
dependencies remain, so a task's execution time is essentially its
operation count.  Tasks are sorted by weight (descending) and each is
assigned to the worker with the minimum accumulated load — the classic
longest-processing-time-first greedy, whose makespan is within 4/3 of
optimal.  The tests check the 2x-lower-bound guarantee.

Recovery itself can lose workers (a recovery worker dies or straggles
mid-replay); :func:`lpt_reassign` re-balances only the *residual*
weights — chains not yet finished — onto the surviving workers,
preserving completed work.  The same LPT guarantee then holds for the
residual schedule over the survivors.
"""

from __future__ import annotations

import heapq
import math
from typing import Collection, List, Sequence, Tuple

from repro.errors import ConfigError, ReassignmentError


def _check_weights(weights: Sequence[float]) -> None:
    """Reject weights that would silently poison the heap ordering."""
    for i, w in enumerate(weights):
        if isinstance(w, float) and math.isnan(w):
            raise ConfigError(f"task weight {i} is NaN")
        if math.isinf(w):
            raise ConfigError(f"task weight {i} is infinite")
        if w < 0:
            raise ConfigError("task weights must be >= 0")


def lpt_assign(
    weights: Sequence[float], num_workers: int
) -> Tuple[List[int], List[float]]:
    """Assign ``weights[i]`` to a worker; returns (assignment, loads).

    Deterministic: equal-weight tasks keep index order, equal-load
    workers break ties on worker id.  When there are more workers than
    tasks only the first ``len(weights)`` workers enter the heap (the
    rest can never receive a task, so seeding them would be pure churn);
    ``loads`` still has one entry per worker.
    """
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    _check_weights(weights)
    assignment = [0] * len(weights)
    loads = [0.0] * num_workers
    active = min(num_workers, len(weights))
    heap: List[Tuple[float, int]] = [(0.0, wid) for wid in range(active)]
    heapq.heapify(heap)
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for i in order:
        load, wid = heapq.heappop(heap)
        assignment[i] = wid
        load += weights[i]
        loads[wid] = load
        heapq.heappush(heap, (load, wid))
    return assignment, loads


def lpt_reassign(
    weights: Sequence[float],
    assignment: Sequence[int],
    completed: Collection[int],
    dead_workers: Collection[int],
    num_workers: int,
) -> Tuple[List[int], List[float]]:
    """Re-balance unfinished tasks onto surviving workers.

    ``weights[i]`` was originally pinned to ``assignment[i]``; the
    workers in ``dead_workers`` have failed.  Tasks in ``completed``
    keep their original assignment (their work is done and must not be
    re-executed); every *residual* task — finished or not, on a dead or
    surviving worker — is LPT-scheduled afresh across the survivors, so
    the residual makespan inherits the LPT guarantee over the reduced
    machine.  Returns ``(new_assignment, residual_loads)`` where
    ``residual_loads`` has one entry per worker (zero for dead workers
    and for workers holding only completed tasks).
    """
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    if len(assignment) != len(weights):
        raise ConfigError(
            f"assignment has {len(assignment)} entries for "
            f"{len(weights)} weights"
        )
    _check_weights(weights)
    dead = set(dead_workers)
    for wid in dead:
        if not 0 <= wid < num_workers:
            raise ConfigError(f"dead worker {wid} out of range")
    for i, wid in enumerate(assignment):
        if not 0 <= wid < num_workers:
            raise ConfigError(f"task {i} assigned to unknown worker {wid}")
    survivors = [w for w in range(num_workers) if w not in dead]
    if not survivors:
        # A recovery condition, not a usage bug: every worker died, so
        # the residual weights have nowhere to go.  Raise the typed
        # recovery error *before* touching the heap — an empty survivor
        # list would otherwise surface as an index error (or a silent
        # no-op re-pinning work to dead workers) deep in the LPT loop.
        raise ReassignmentError("no surviving workers to re-assign onto")
    done = set(completed)
    residual = [i for i in range(len(weights)) if i not in done]

    new_assignment = list(assignment)
    loads = [0.0] * num_workers
    active = min(len(survivors), len(residual))
    heap: List[Tuple[float, int]] = [
        (0.0, pos) for pos in range(active)
    ]
    heapq.heapify(heap)
    order = sorted(residual, key=lambda i: (-weights[i], i))
    for i in order:
        load, pos = heapq.heappop(heap)
        wid = survivors[pos]
        new_assignment[i] = wid
        load += weights[i]
        loads[wid] = load
        heapq.heappush(heap, (load, pos))
    return new_assignment, loads


def round_robin_assign(
    weights: Sequence[float], num_workers: int
) -> Tuple[List[int], List[float]]:
    """Unoptimized baseline: tasks dealt to workers in index order.

    This is what the factor analysis (Fig. 11d) runs before
    ``+OptTaskAssign`` is enabled.
    """
    if num_workers < 1:
        raise ConfigError("num_workers must be >= 1")
    assignment = [i % num_workers for i in range(len(weights))]
    loads = [0.0] * num_workers
    for i, w in enumerate(weights):
        loads[assignment[i]] += w
    return assignment, loads


def makespan(loads: Sequence[float]) -> float:
    """The schedule length implied by per-worker loads."""
    return max(loads) if loads else 0.0
