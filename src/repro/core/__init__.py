"""MorphStreamR: the paper's primary contribution.

Fast parallel recovery (§V) built from intermediate results of resolved
dependencies, plus the runtime-overhead mitigations of §VI:

- :mod:`repro.core.views` — AbortView / ParametricView (Fig. 5);
- :mod:`repro.core.abortpushdown` — abort pushdown (§V-B1);
- :mod:`repro.core.restructure` — operation restructuring (§V-B2);
- :mod:`repro.core.assignment` — optimized task assignment (§V-B3);
- :mod:`repro.core.partition` — graph-based partitioning for selective
  logging (§VI-A1);
- :mod:`repro.core.shadow` — shadow-based exploration (§VI-A2);
- :mod:`repro.core.commitment` — workload-aware log commitment (§VI-B);
- :mod:`repro.core.logmanager` — the Logging Manager (LM);
- :mod:`repro.core.ftmanager` — the Fault-tolerance Manager (FM);
- :mod:`repro.core.morphstreamr` — the engine tying it all together.
"""

from repro.core.assignment import lpt_assign
from repro.core.commitment import AdaptiveCommitController, WorkloadProfile
from repro.core.ftmanager import FaultToleranceManager, MarkerSchedule
from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.core.partition import ChainGraph, build_chain_graph, greedy_partition
from repro.core.shadow import explore_chains
from repro.core.views import AbortView, ParametricView

__all__ = [
    "MorphStreamR",
    "MSROptions",
    "AbortView",
    "ParametricView",
    "ChainGraph",
    "build_chain_graph",
    "greedy_partition",
    "lpt_assign",
    "explore_chains",
    "AdaptiveCommitController",
    "WorkloadProfile",
    "FaultToleranceManager",
    "MarkerSchedule",
]
