"""Abort pushdown (§V-B1).

During recovery, input events whose transactions are known (from the
AbortView) to abort are discarded *before preprocessing*: their
read/write sets are never built, their logical dependencies never need
verification, and no rollback work is ever scheduled.  The surviving
events carry only transactions guaranteed to commit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.views import AbortView
from repro.engine.events import Event


def push_down_aborts(
    events: Sequence[Event], abort_view: AbortView
) -> Tuple[List[Event], List[Event]]:
    """Split an epoch's events into (surviving, discarded).

    The transaction id of an event equals its sequence number, so the
    verdict is a set-membership check per event — the entire cost of
    abort handling under MorphStreamR recovery.
    """
    surviving: List[Event] = []
    discarded: List[Event] = []
    for event in events:
        if event.seq in abort_view:
            discarded.append(event)
        else:
            surviving.append(event)
    return surviving, discarded
