"""MorphStreamR (MSR): fast parallel recovery for TSP (§IV–§VI).

Runtime (§VI-C): besides the base pipeline, every epoch

1. partitions the chain graph (selective logging, §VI-A1) and tracks
   only dependencies crossing partitions;
2. records intermediate results of resolved dependencies — aborted
   transaction ids (AbortView) and cross-partition read values
   (ParametricView) — into the Logging Manager;
3. group-commits the views on the Fault-tolerance Manager's commit
   markers, optionally resizing the punctuation epoch through the
   workload-aware commitment controller (§VI-B).

Recovery (§V-C): for every lost epoch whose views were committed,

1. reload and index the views (steps ③–④ of Fig. 7);
2. *abort pushdown*: discard doomed events before preprocessing (⑤);
3. *operation restructuring*: rebuild surviving operations into
   independent per-record chains, resolving cross-partition reads from
   the ParametricView and leaving intra-partition reads to shadow
   exploration (⑥);
4. *optimized task assignment*: LPT-schedule partition bundles onto
   workers (⑦) and execute with zero cross-worker synchronization.

Every optimization is individually switchable through
:class:`MSROptions` — that is how the factor analysis of Fig. 11d runs.
Epochs whose views were still buffered at the crash (commit interval
greater than one epoch) fall back to full reprocessing, which is the
mechanism behind the commitment trade-off of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import buckets
from repro.core.abortpushdown import push_down_aborts
from repro.core.assignment import lpt_assign, round_robin_assign
from repro.core.commitment import AdaptiveCommitController, profile_epoch
from repro.core.ftmanager import COMMIT, FaultToleranceManager, MarkerSchedule
from repro.core.logmanager import LoggingManager, ViewSegment
from repro.core.partition import build_chain_graph, greedy_partition
from repro.core.restructure import (
    ReadClass,
    RestructuredEpoch,
    chains_by_partition,
    restructure_operations,
)
from repro.core.shadow import explore_chains
from repro.core.views import CONDITION_INDEX, AbortView, ParametricView
from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.functions import apply_state_function
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import ConfigError
from repro.ft.base import EpochContext, FTScheme
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor, SimTask


@dataclass(frozen=True)
class MSROptions:
    """Feature switches for the factor/ablation studies.

    The Fig. 11d increments correspond to::

        Simple          MSROptions(op_restructure=False,
                                   abort_pushdown=False,
                                   opt_task_assign=False)
        +OpRestructure  MSROptions(abort_pushdown=False,
                                   opt_task_assign=False)
        +AbortPD        MSROptions(opt_task_assign=False)
        +OptTaskAssign  MSROptions()                      # full MSR
    """

    selective_logging: bool = True
    op_restructure: bool = True
    abort_pushdown: bool = True
    opt_task_assign: bool = True
    #: Chain-graph partitions per worker.  More partitions give the
    #: optimized task assignment finer granularity to balance (at the
    #: price of more cross-partition dependencies to log).
    partitions_per_worker: int = 2


class MorphStreamR(FTScheme):
    """The paper's engine: views at runtime, dependency-free recovery."""

    name = "MSR"
    log_streams = ("msr",)

    def __init__(
        self,
        workload,
        *,
        options: MSROptions = MSROptions(),
        commit_every: int = 1,
        controller: Optional[AdaptiveCommitController] = None,
        **kwargs,
    ):
        super().__init__(workload, **kwargs)
        if self.snapshot_interval % commit_every:
            raise ConfigError(
                "snapshot_interval must be a multiple of commit_every"
            )
        self.options = options
        self.lm = LoggingManager(self.disk)
        self.fm = FaultToleranceManager(
            MarkerSchedule(
                commit_every=commit_every,
                snapshot_every=self.snapshot_interval,
            ),
            controller=controller,
            base_epoch_len=self.epoch_len,
        )

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------

    def _on_epoch(self, ctx: EpochContext) -> None:
        costs = self.costs
        tpg, outcome = ctx.tpg, ctx.outcome

        partition_map = None
        if self.options.selective_logging:
            graph = build_chain_graph(tpg)
            partition_map = greedy_partition(graph, self._num_partitions())
            self._charge_tracking(
                [costs.partition_vertex] * len(graph.vertices)
                + [costs.partition_edge] * len(graph.edges)
            )

        abort_view = AbortView(ctx.epoch_id, frozenset(outcome.aborted))
        pview = ParametricView(ctx.epoch_id)
        recorded = 0
        for txn in ctx.txns:
            validator_ref = txn.ops[0].ref
            for ref, src in tpg.cond_sources.get(txn.txn_id, ()):
                if src is None or self._intra(partition_map, ref, validator_ref):
                    continue
                pview.record(
                    txn.txn_id,
                    CONDITION_INDEX,
                    ref,
                    validator_ref,
                    outcome.cond_values[txn.txn_id][ref],
                )
                recorded += 1
            if txn.txn_id in outcome.aborted:
                continue
            for idx, op in enumerate(txn.ops):
                reads = outcome.read_values[op.uid]
                for (ref, src), value in zip(tpg.pd_sources[op.uid], reads):
                    if src is None or self._intra(partition_map, ref, op.ref):
                        continue
                    pview.record(txn.txn_id, idx, ref, op.ref, value)
                    recorded += 1
        self._charge_tracking(
            [costs.view_record] * (recorded + len(abort_view))
        )

        self.lm.stage(
            ViewSegment(ctx.epoch_id, abort_view, pview, partition_map)
        )
        self._note_buffer(self.lm.buffered_bytes)
        if COMMIT in self.fm.markers_at(ctx.epoch_id):
            io_s, committed_bytes = self.lm.commit()
            self._charge_runtime_io(io_s, committed_bytes)

        if self.fm.controller is not None:
            spans = sum(
                1 for txn in ctx.txns if self.workload.spans_partitions(txn)
            )
            self.fm.observe(profile_epoch(tpg, outcome, spans))
            self.epoch_len = self.fm.epoch_len

    def _num_partitions(self) -> int:
        return self.num_workers * self.options.partitions_per_worker

    @staticmethod
    def _intra(
        partition_map: Optional[Dict[StateRef, int]],
        from_ref: StateRef,
        to_ref: StateRef,
    ) -> bool:
        """True when a dependency stays inside one partition (unlogged)."""
        if partition_map is None:
            return False
        return partition_map.get(from_ref) == partition_map.get(to_ref)

    def _drop_volatile(self) -> None:
        # Uncommitted view segments lived in volatile memory.
        self.lm.drop_buffer()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        opts = self.options
        if not self.lm.has_epoch(epoch_id):
            # Views lost with the crash (long commit interval): this
            # epoch recovers by plain reprocessing, like CKPT.
            return self._compute_epoch(machine, executor, store, events)[3]

        segment, io_s = self.lm.load_epoch(epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        index_entries = len(segment.parametric_view) + len(segment.abort_view)
        if segment.partition_map is not None:
            # The logged chain-partition map is part of the intermediate
            # results and must be indexed too — the "more overhead in
            # indexing intermediate results" of §VI-B.
            index_entries += len(segment.partition_map)
        machine.spend_parallel(
            buckets.CONSTRUCT,
            (costs.view_index_entry for _ in range(index_entries)),
        )

        if not opts.op_restructure:
            return self._recover_simple(machine, executor, store, events, segment)
        return self._recover_restructured(machine, executor, store, events, segment)

    def _recover_simple(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        events: Sequence[Event],
        segment: ViewSegment,
    ) -> List[Tuple[int, tuple]]:
        """The "Simple" baseline of Fig. 11d: full pipeline replay.

        Abort pushdown may still apply (it only needs the AbortView),
        which is the "+AbortPD without restructuring" ablation point.
        """
        if not self.options.abort_pushdown:
            return self._compute_epoch(machine, executor, store, events)[3]
        surviving, _discarded = push_down_aborts(events, segment.abort_view)
        machine.spend_parallel(
            buckets.ABORT, (self.costs.view_lookup for _ in events)
        )
        return self._compute_epoch(
            machine, executor, store, surviving, charge_aborts=False
        )[3]

    def _recover_restructured(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        events: Sequence[Event],
        segment: ViewSegment,
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        opts = self.options

        # (⑤) abort handling: either push doomed events down before
        # preprocessing, or pay classic per-transaction abort handling.
        surviving, discarded = push_down_aborts(events, segment.abort_view)
        if opts.abort_pushdown:
            machine.spend_parallel(
                buckets.ABORT, (costs.view_lookup for _ in events)
            )
        else:
            self._charge_classic_aborts(machine, discarded)

        # (⑥) restructuring: preprocess survivors, rebuild chains,
        # classify reads against the *logged* partition map.
        txns = preprocess(surviving, self.workload, 0)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in surviving)
        )
        restructured = restructure_operations(txns, segment.partition_map)
        machine.spend_parallel(
            buckets.CONSTRUCT,
            (costs.construct_node for _ in restructured.tpg.ops),
        )
        if not opts.abort_pushdown:
            self._charge_committed_condition_checks(machine, txns)

        # (⑦) task assignment over partition bundles.
        bundles = chains_by_partition(
            restructured, segment.partition_map, self._num_partitions()
        )
        weights = [
            float(sum(len(chain) for chain in bundle)) for bundle in bundles
        ]
        if opts.opt_task_assign:
            assignment, _loads = lpt_assign(weights, self.num_workers)
        else:
            assignment, _loads = round_robin_assign(weights, self.num_workers)
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.task_dispatch for _ in bundles)
        )

        op_values = self._execute_restructured(
            machine, executor, store, restructured, segment, bundles, assignment
        )
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in surviving)
        )
        return [
            (txn.event.seq, self.workload.output_for(txn, True, op_values))
            for txn in txns
        ]

    def _charge_classic_aborts(
        self, machine: Machine, discarded: Sequence[Event]
    ) -> None:
        """Cost of handling aborts without pushdown (ablation mode).

        Each doomed event is still preprocessed, its conditions resolved
        (through the views) and checked, its operations visited, and the
        transaction rolled back.
        """
        costs = self.costs
        items = []
        for event in discarded:
            txn = self.workload.build_transaction(event, 0)
            cond_refs = sum(len(c.refs) for c in txn.conditions)
            items.append(
                costs.preprocess_event
                + cond_refs * costs.view_lookup
                + len(txn.conditions) * costs.condition_check
                + len(txn.ops) * costs.state_access
                + costs.abort_transaction
            )
        machine.spend_parallel(buckets.ABORT, items)

    def _charge_committed_condition_checks(
        self, machine: Machine, txns: Sequence[Transaction]
    ) -> None:
        """Without pushdown, surviving transactions also re-verify."""
        costs = self.costs
        items = []
        for txn in txns:
            if not txn.conditions:
                continue
            cond_refs = sum(len(c.refs) for c in txn.conditions)
            items.append(
                cond_refs * costs.view_lookup
                + len(txn.conditions) * costs.condition_check
            )
        machine.spend_parallel(buckets.ABORT, items)

    def _execute_restructured(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        restructured: RestructuredEpoch,
        segment: ViewSegment,
        bundles,
        assignment: Sequence[int],
    ) -> Dict[int, float]:
        """Run shadow exploration per bundle; compute and apply values.

        Semantics: every operation's own input carries along its chain
        (the store is read only for epoch-base values and written only
        at chain tails); cross-key reads resolve per their
        classification.  Timing: one task per operation, pinned to its
        bundle's worker in exploration order, with zero cross-worker
        dependencies — the lock-contention-free execution the paper's
        restructuring buys.
        """
        costs = self.costs
        tpg = restructured.tpg
        value_after: Dict[int, float] = {}
        op_values: Dict[int, float] = {}
        chain_cursor: Dict[StateRef, float] = {}
        tasks: List[SimTask] = []
        recorder = self._real_recorder
        if recorder is not None:
            # Real backend: the restructured views already classified
            # every read, so the descriptor plan is recorded directly —
            # bundles become chain groups, VIEW reads pin their
            # materialized value, LOCAL reads stay worker-resolved.
            from repro.real.descriptors import BASE, LOCAL, PIN, OpSpec

        for bundle_index, bundle in enumerate(bundles):
            worker = assignment[bundle_index]
            bundle_ops = 0
            local_deps = {
                op.uid: restructured.local_deps[op.uid]
                for chain in bundle
                for op in chain
                if op.uid in restructured.local_deps
            }
            exploration = explore_chains(bundle, local_deps)
            for op in exploration.order:
                own = chain_cursor.get(op.ref)
                if own is None:
                    own = store.get(op.ref)
                    if recorder is not None:
                        recorder.add_base(
                            bundle_index, op.ref.table, op.ref.key, own
                        )
                reads: List[float] = []
                read_specs: List[tuple] = []
                view_lookups = 0
                for resolution in restructured.resolutions[op.uid]:
                    if resolution.read_class is ReadClass.BASE:
                        value_read = store.get(resolution.ref)
                        reads.append(value_read)
                        if recorder is not None:
                            read_specs.append(
                                (BASE, resolution.ref.table, resolution.ref.key)
                            )
                            recorder.add_base(
                                bundle_index,
                                resolution.ref.table,
                                resolution.ref.key,
                                value_read,
                            )
                    elif resolution.read_class is ReadClass.VIEW:
                        txn = tpg.txn_by_id[op.txn_id]
                        op_index = txn.ops.index(op)
                        value_read = segment.parametric_view.lookup(
                            op.txn_id, op_index, resolution.ref
                        )
                        reads.append(value_read)
                        if recorder is not None:
                            read_specs.append((PIN, value_read))
                        view_lookups += 1
                    else:
                        reads.append(value_after[resolution.source_uid])
                        if recorder is not None:
                            # Same-bundle dependency by construction.
                            read_specs.append((LOCAL, resolution.source_uid))
                value = apply_state_function(op.func, own, reads, op.params)
                if recorder is not None:
                    recorder.add_op(
                        bundle_index,
                        OpSpec(
                            uid=op.uid,
                            table=op.ref.table,
                            key=op.ref.key,
                            func=op.func,
                            params=tuple(op.params),
                            reads=tuple(read_specs),
                        ),
                    )
                value_after[op.uid] = value
                op_values[op.uid] = value
                chain_cursor[op.ref] = value

                explore_seconds = (
                    view_lookups * costs.view_lookup
                    + exploration.shadows_passed.get(op.uid, 0)
                    * costs.shadow_visit
                    + exploration.switches_for.get(op.uid, 0)
                    * costs.chain_switch
                )
                extra = (
                    ((buckets.EXPLORE, explore_seconds),)
                    if explore_seconds
                    else ()
                )
                tasks.append(
                    SimTask(
                        uid=op.uid,
                        worker=worker,
                        cost=costs.state_access * (1 + len(op.reads))
                        + costs.udf,
                        bucket=buckets.EXECUTE,
                        extra=extra,
                        # Bundles are the re-assignment unit: if this
                        # worker dies, the whole bundle moves to one
                        # survivor, keeping chain order intact.
                        group=bundle_index,
                    )
                )
                bundle_ops += 1
            if bundle_ops:
                # Per-chain progress watermark + the `recovery.chain`
                # crash point (a recovery worker can die between
                # bundles of the in-flight epoch).
                self._mark_chain_progress(segment.epoch_id)

        executor.run(tasks)
        for ref, value in chain_cursor.items():
            store.set(ref, value)
        return op_values
