"""Intermediate-result views: AbortView and ParametricView (Fig. 5).

MorphStreamR does not log dependencies — it logs the *results of
resolving them* at runtime, so recovery can consume the result instead
of re-coordinating:

- :class:`AbortView` — the logical-dependency results: ids of
  transactions that aborted.  During recovery these let the engine drop
  doomed events before preprocessing (abort pushdown).
- :class:`ParametricView` — the parametric-dependency results: for a
  consuming operation and a source record, the exact value the
  operation read at runtime.  During recovery a cross-partition read
  becomes a hash-table lookup instead of a cross-thread wait.

Entries are keyed by ``(txn_id, op_index, from_ref)`` — a *stable*
identity that survives abort pushdown (operation uids are assigned per
batch and would shift when doomed events are dropped before
preprocessing).  ``op_index`` is the operation's position inside its
transaction; index ``-1`` denotes the transaction's condition check.
The serialized form also carries the paper's ``(From_key, To_key)``
pair for each entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.engine.refs import StateRef
from repro.errors import RecoveryError

#: Pseudo operation index for condition-check (validator) reads.
CONDITION_INDEX = -1


@dataclass(frozen=True)
class AbortView:
    """Aborted transaction ids of one epoch (resolved LD results)."""

    epoch_id: int
    aborted: FrozenSet[int] = frozenset()

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self.aborted

    def __len__(self) -> int:
        return len(self.aborted)

    def encoded(self) -> tuple:
        return (self.epoch_id, tuple(sorted(self.aborted)))

    @staticmethod
    def from_encoded(raw: tuple) -> "AbortView":
        epoch_id, aborted = raw
        return AbortView(epoch_id, frozenset(aborted))


class ParametricView:
    """Resolved parametric-dependency values of one epoch.

    ``record`` is called by the Logging Manager whenever a tracked
    dependency is resolved at runtime; ``lookup`` is called by recovery
    to eliminate the dependency.  A miss on lookup is a recovery bug,
    not a soft condition, and raises :class:`RecoveryError`.
    """

    def __init__(self, epoch_id: int):
        self.epoch_id = epoch_id
        self._entries: Dict[Tuple[int, int, StateRef], Tuple[StateRef, float]] = {}

    def record(
        self,
        txn_id: int,
        op_index: int,
        from_ref: StateRef,
        to_ref: StateRef,
        value: float,
    ) -> None:
        self._entries[(txn_id, op_index, from_ref)] = (to_ref, value)

    def lookup(self, txn_id: int, op_index: int, from_ref: StateRef) -> float:
        try:
            return self._entries[(txn_id, op_index, from_ref)][1]
        except KeyError:
            raise RecoveryError(
                f"ParametricView epoch {self.epoch_id}: no intermediate "
                f"result for txn {txn_id} op {op_index} reading {from_ref}"
            ) from None

    def has(self, txn_id: int, op_index: int, from_ref: StateRef) -> bool:
        return (txn_id, op_index, from_ref) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def encoded(self) -> tuple:
        entries = [
            (txn_id, op_index, from_ref.encoded(), to_ref.encoded(), value)
            for (txn_id, op_index, from_ref), (to_ref, value) in sorted(
                self._entries.items()
            )
        ]
        return (self.epoch_id, tuple(entries))

    @staticmethod
    def from_encoded(raw: tuple) -> "ParametricView":
        epoch_id, entries = raw
        view = ParametricView(epoch_id)
        for txn_id, op_index, from_ref, to_ref, value in entries:
            view.record(
                txn_id,
                op_index,
                StateRef.from_encoded(from_ref),
                StateRef.from_encoded(to_ref),
                value,
            )
        return view
