"""Workload-aware log commitment (§VI-B).

Workload characteristics determine how the log-commitment epoch should
be sized (Fig. 9):

- **LSFD** (low skew, few dependencies): larger epochs batch more
  operations per commit and help both runtime and recovery — go big.
- **LSMD** (low skew, many dependencies): large epochs inflate the
  intermediate-result index that recovery must build, offsetting the
  group-commit benefit — stay moderate.
- **HSFD/HSMD** (high skew): runtime prefers *small* epochs (skewed
  chains grow with the epoch and unbalance workers) while recovery
  prefers *large* ones (more restructuring opportunity); the controller
  interpolates by the configured objective weight.

:class:`WorkloadProfile` captures the two factors of §VI-B1 — access
skewness and dependency count — from an executed epoch;
:class:`AdaptiveCommitController` turns a profile into an epoch length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.engine.refs import StateRef
from repro.engine.serial import SerialOutcome
from repro.engine.tpg import TaskPrecedenceGraph
from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of one processed epoch (§VI-B1)."""

    #: Write-concentration estimate in [0, 1]: excess share of writes
    #: hitting the ten hottest records (0 ~ uniform).
    skew: float
    #: LD+PD dependencies per operation.
    dependencies_per_op: float
    #: Fraction of transactions that aborted.
    abort_ratio: float
    #: Fraction of transactions spanning multiple partitions (if known).
    multi_partition_ratio: float = 0.0

    @property
    def regime(self) -> str:
        """The Fig. 9 quadrant this profile falls into."""
        skewed = self.skew >= SKEW_THRESHOLD
        dependent = self.dependencies_per_op >= DEPS_THRESHOLD
        if skewed:
            return "HSMD" if dependent else "HSFD"
        return "LSMD" if dependent else "LSFD"


#: Write concentration above which a workload counts as high-skew.
SKEW_THRESHOLD = 0.15
#: LD+PD edges per operation above which dependencies count as "many".
DEPS_THRESHOLD = 0.5


def profile_epoch(
    tpg: TaskPrecedenceGraph,
    outcome: SerialOutcome,
    partition_spans: int = 0,
) -> WorkloadProfile:
    """Profile one executed epoch for the commitment controller."""
    # Concentration is measured over *writes*: skewed writes are what
    # lengthen individual chains and unbalance workers (the load-
    # imbalance mechanism of §VI-B); uniformly spread reads of a few hot
    # records do not serialize anything.
    access_counts: Dict[StateRef, int] = {}
    total_accesses = 0
    for op in tpg.ops:
        access_counts[op.ref] = access_counts.get(op.ref, 0) + 1
        total_accesses += 1
    skew = 0.0
    if access_counts and total_accesses:
        # Share of accesses hitting the ten hottest records, in excess
        # of what a uniform spread would give them.  A fixed-size hot
        # set keeps the estimate stable across epoch lengths and key
        # spaces (a percentage-of-touched-records hot set does not).
        hot = min(10, len(access_counts))
        top = sorted(access_counts.values(), reverse=True)[:hot]
        hot_share = sum(top) / total_accesses
        uniform_share = hot / len(access_counts)
        skew = max(0.0, hot_share - uniform_share)
    counts = tpg.edge_counts()
    num_ops = max(1, len(tpg.ops))
    num_txns = max(1, len(tpg.txns))
    return WorkloadProfile(
        skew=skew,
        dependencies_per_op=(counts["pd"] + counts["ld"]) / num_ops,
        abort_ratio=len(outcome.aborted) / num_txns,
        multi_partition_ratio=partition_spans / num_txns,
    )


class AdaptiveCommitController:
    """Chooses the log-commitment epoch length from a profile (§VI-B2)."""

    def __init__(
        self,
        min_epoch: int = 128,
        max_epoch: int = 4096,
        recovery_weight: float = 0.5,
    ):
        if min_epoch < 1 or max_epoch < min_epoch:
            raise ConfigError("need 1 <= min_epoch <= max_epoch")
        if not 0.0 <= recovery_weight <= 1.0:
            raise ConfigError("recovery_weight must be in [0, 1]")
        self.min_epoch = min_epoch
        self.max_epoch = max_epoch
        #: 1.0 optimizes purely for recovery, 0.0 purely for runtime.
        self.recovery_weight = recovery_weight

    def _geometric(self, fraction: float) -> int:
        """Interpolate geometrically between min and max epoch."""
        span = math.log(self.max_epoch / self.min_epoch)
        return max(
            self.min_epoch,
            min(self.max_epoch, round(self.min_epoch * math.exp(span * fraction))),
        )

    def recommend(self, profile: WorkloadProfile) -> int:
        """Epoch length for the measured regime (policy of §VI-B2)."""
        regime = profile.regime
        if regime == "LSFD":
            # Both phases benefit from batching: go as large as allowed.
            return self.max_epoch
        if regime == "LSMD":
            # Batching helps runtime, but the recovery-side index cost
            # grows with the epoch; stop midway.
            return self._geometric(0.5)
        # High skew: runtime wants small epochs, recovery wants large —
        # interpolate by the operator's objective.
        return self._geometric(self.recovery_weight)
