"""Graph-based partitioning for selective logging (§VI-A1).

Each operation chain (all same-record operations, i.e. the TD-connected
unit) is a vertex weighted by its operation count; an edge between two
chains is weighted by the number of LDs and PDs connecting them.  The
greedy partitioner (after Yao et al. [31]) balances vertex weight
across ``k`` partitions while placing strongly connected chains
together, so that most dependencies become *intra*-partition — those
are resolved locally at recovery via shadow operations and never
logged.  Only the surviving *inter*-partition dependencies are tracked
and recorded by the Logging Manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.engine.refs import StateRef
from repro.engine.tpg import TaskPrecedenceGraph
from repro.errors import ConfigError


@dataclass
class ChainGraph:
    """Weighted chain-affinity graph of one epoch."""

    #: chain (record) -> number of operations.
    vertices: Dict[StateRef, int] = field(default_factory=dict)
    #: unordered chain pair -> number of LD+PD dependencies between them.
    edges: Dict[Tuple[StateRef, StateRef], int] = field(default_factory=dict)

    def add_edge(self, a: StateRef, b: StateRef, weight: int = 1) -> None:
        if a == b:
            return
        key = (a, b) if a <= b else (b, a)
        self.edges[key] = self.edges.get(key, 0) + weight

    def neighbors(self) -> Dict[StateRef, List[Tuple[StateRef, int]]]:
        adj: Dict[StateRef, List[Tuple[StateRef, int]]] = {
            v: [] for v in self.vertices
        }
        for (a, b), w in self.edges.items():
            adj[a].append((b, w))
            adj[b].append((a, w))
        return adj

    def total_weight(self) -> int:
        return sum(self.vertices.values())

    def cut_weight(self, assignment: Dict[StateRef, int]) -> int:
        """Dependencies crossing partitions under ``assignment``."""
        return sum(
            w
            for (a, b), w in self.edges.items()
            if assignment[a] != assignment[b]
        )


def build_chain_graph(tpg: TaskPrecedenceGraph) -> ChainGraph:
    """Chain graph of an epoch: TD chains as vertices, LD/PD as edges."""
    graph = ChainGraph()
    for ref, chain in tpg.chains.items():
        graph.vertices[ref] = len(chain)
    for txn in tpg.txns:
        validator_ref = txn.ops[0].ref
        # LD edges: every non-validator operation depends on the
        # condition-variable-check operation's chain.
        for op in txn.ops[1:]:
            graph.add_edge(op.ref, validator_ref)
        # PD edges: cross-key reads, both operation reads and condition
        # refs (which the validator resolves).
        for op in txn.ops:
            for _read_ref, src in tpg.pd_sources[op.uid]:
                if src is not None:
                    graph.add_edge(op.ref, tpg.op_by_uid[src].ref)
        for _ref, src in tpg.cond_sources.get(txn.txn_id, ()):
            if src is not None:
                graph.add_edge(validator_ref, tpg.op_by_uid[src].ref)
    return graph


def greedy_partition(
    graph: ChainGraph, num_partitions: int, imbalance: float = 1.2
) -> Dict[StateRef, int]:
    """Greedy balanced partitioning with affinity placement.

    Chains are placed heaviest-first.  Each chain goes to the partition
    with the highest edge affinity among those still under the balance
    cap (``imbalance`` x average load); with no affinity or no capacity
    it goes to the lightest partition.  Deterministic: ties break on
    partition index, vertices on (weight desc, ref).
    """
    if num_partitions < 1:
        raise ConfigError("num_partitions must be >= 1")
    if imbalance < 1.0:
        raise ConfigError("imbalance must be >= 1.0")
    assignment: Dict[StateRef, int] = {}
    if not graph.vertices:
        return assignment
    loads = [0.0] * num_partitions
    cap = graph.total_weight() / num_partitions * imbalance
    adjacency = graph.neighbors()
    order = sorted(graph.vertices.items(), key=lambda kv: (-kv[1], kv[0]))
    for ref, weight in order:
        affinity = [0.0] * num_partitions
        for neighbor, edge_weight in adjacency[ref]:
            placed = assignment.get(neighbor)
            if placed is not None:
                affinity[placed] += edge_weight
        best = None
        best_key = None
        for pid in range(num_partitions):
            if loads[pid] + weight > cap:
                continue
            key = (-affinity[pid], loads[pid], pid)
            if best_key is None or key < best_key:
                best_key = key
                best = pid
        if best is None:
            best = min(range(num_partitions), key=lambda p: (loads[p], p))
        assignment[ref] = best
        loads[best] += weight
    return assignment
