"""Shadow-based exploration (§VI-A2).

Selective logging leaves *intra*-partition dependencies unlogged, so a
recovering worker must still resolve them — but entirely locally, with
no lock contention.  The mechanism is the paper's shadow operations:

- every unlogged dependency of operation ``O`` inserts a *shadow* of
  ``O`` right after the operation it depends on, in that operation's
  chain;
- each operation carries a count of its unresolved dependencies;
- when a worker executes an operation it "passes" the shadows sitting
  behind it, decrementing each dependent's count (Fig. 8 step ②);
- when the head of the current chain still has unresolved
  dependencies, the worker *switches* to the chain containing the first
  unexecuted dependency and processes it until the dependency resolves
  (Fig. 8 step ④).

Shadows are placeholders only — they never introduce new dependencies —
so the traversal is guaranteed to terminate: every switch target's head
operation has a strictly smaller timestamp than the blocked operation,
and the minimum-timestamp unexecuted operation is always executable.

:func:`explore_chains` runs the real traversal and returns the exact
execution order plus per-operation accounting (shadow passes, chain
switches) that the cost model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.engine.operations import Operation
from repro.errors import SchedulingError


@dataclass
class ExplorationResult:
    """Execution order and accounting of one partition's exploration."""

    order: List[Operation] = field(default_factory=list)
    #: op uid -> number of shadow operations passed when it executed
    #: (i.e. dependents it notified).
    shadows_passed: Dict[int, int] = field(default_factory=dict)
    #: op uid -> chain switches triggered while unblocking this op.
    switches_for: Dict[int, int] = field(default_factory=dict)
    total_shadow_visits: int = 0
    total_chain_switches: int = 0


def explore_chains(
    chains: Sequence[Sequence[Operation]],
    local_deps: Dict[int, Tuple[int, ...]],
) -> ExplorationResult:
    """Traverse one partition's chains, resolving local deps via shadows.

    ``chains`` are timestamp-sorted operation chains of one partition;
    ``local_deps[uid]`` lists uids of *intra-partition* operations that
    must execute before ``uid`` (its shadow sources).  Every listed
    dependency must belong to one of the chains.  Returns the execution
    order (a valid topological order: tests assert it) and the shadow /
    switch counts.
    """
    result = ExplorationResult()
    if not chains:
        return result

    chain_of: Dict[int, int] = {}
    for ci, chain in enumerate(chains):
        for op in chain:
            if op.uid in chain_of:
                raise SchedulingError(f"operation {op.uid} appears twice")
            chain_of[op.uid] = ci

    # Shadow placement: dependents[src] are the operations whose shadow
    # sits behind src in src's chain.
    dependents: Dict[int, List[int]] = {}
    pending: Dict[int, int] = {}
    for uid, deps in local_deps.items():
        if uid not in chain_of:
            continue
        count = 0
        for src in deps:
            if src not in chain_of:
                raise SchedulingError(
                    f"operation {uid} has local dependency {src} outside "
                    "this partition"
                )
            dependents.setdefault(src, []).append(uid)
            count += 1
        if count:
            pending[uid] = count

    executed: set = set()
    pointer = [0] * len(chains)
    order = result.order

    def execute_head(ci: int) -> None:
        op = chains[ci][pointer[ci]]
        pointer[ci] += 1
        executed.add(op.uid)
        order.append(op)
        passed = 0
        for dependent in dependents.get(op.uid, ()):
            pending[dependent] -= 1
            passed += 1
        result.shadows_passed[op.uid] = passed
        result.total_shadow_visits += passed

    for start in range(len(chains)):
        if pointer[start] >= len(chains[start]):
            continue
        stack = [start]
        while stack:
            ci = stack[-1]
            if pointer[ci] >= len(chains[ci]):
                stack.pop()
                continue
            head = chains[ci][pointer[ci]]
            if pending.get(head.uid, 0) == 0:
                execute_head(ci)
                continue
            blocker = next(
                src
                for src in local_deps[head.uid]
                if src not in executed
            )
            target = chain_of[blocker]
            if target == ci:  # pragma: no cover - impossible by model
                raise SchedulingError(
                    f"operation {head.uid} blocked on {blocker} in its own chain"
                )
            result.switches_for[head.uid] = (
                result.switches_for.get(head.uid, 0) + 1
            )
            result.total_chain_switches += 1
            stack.append(target)

    executed_total = sum(len(c) for c in chains)
    if len(order) != executed_total:
        raise SchedulingError(
            f"exploration executed {len(order)} of {executed_total} operations"
        )
    return result
