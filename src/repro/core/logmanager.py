"""Logging Manager (LM): records and serves intermediate results.

At runtime the LM receives resolved-dependency results from the
Execution Managers (§VI-C step ②), organizes them into per-epoch
AbortView / ParametricView segments, and group-commits them on commit
markers.  The partition map used for selective logging is committed
alongside (it defines which dependencies were considered
cross-partition, and recovery must classify reads identically).

During recovery the LM reloads a segment and provides dependency
inspection: abort verdicts for abort pushdown and view lookups for
dependency elimination (§V-C step ③).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.views import AbortView, ParametricView
from repro.engine.refs import StateRef
from repro.errors import RecoveryError
from repro.storage.codec import encode
from repro.storage.stores import Disk

#: Log-store stream for MorphStreamR view segments.
STREAM = "msr"

#: On-disk format version of view segments.  Bumped on layout changes;
#: recovery refuses segments written by an unknown version instead of
#: misinterpreting them.
SEGMENT_VERSION = 1

PartitionMap = Optional[Dict[StateRef, int]]


@dataclass
class ViewSegment:
    """One epoch's intermediate results, ready to commit or just loaded."""

    epoch_id: int
    abort_view: AbortView
    parametric_view: ParametricView
    partition_map: PartitionMap

    def encoded(self) -> tuple:
        partition = (
            None
            if self.partition_map is None
            else tuple(
                (ref.encoded(), pid)
                for ref, pid in sorted(self.partition_map.items())
            )
        )
        return (
            SEGMENT_VERSION,
            self.epoch_id,
            self.abort_view.encoded(),
            self.parametric_view.encoded(),
            partition,
        )

    @staticmethod
    def from_encoded(raw: tuple) -> "ViewSegment":
        version = raw[0]
        if version != SEGMENT_VERSION:
            raise RecoveryError(
                f"view segment format version {version} is not supported "
                f"(this build reads version {SEGMENT_VERSION})"
            )
        _version, epoch_id, abort_raw, pview_raw, partition_raw = raw
        partition: PartitionMap
        if partition_raw is None:
            partition = None
        else:
            partition = {
                StateRef.from_encoded(ref): pid for ref, pid in partition_raw
            }
        return ViewSegment(
            epoch_id=epoch_id,
            abort_view=AbortView.from_encoded(abort_raw),
            parametric_view=ParametricView.from_encoded(pview_raw),
            partition_map=partition,
        )

    def byte_size(self) -> int:
        return len(encode(self.encoded()))


class LoggingManager:
    """Buffers view segments and group-commits them on commit markers."""

    def __init__(self, disk: Disk):
        self._disk = disk
        self._buffer: List[ViewSegment] = []

    @property
    def buffered_bytes(self) -> int:
        return sum(segment.byte_size() for segment in self._buffer)

    @property
    def buffered_epochs(self) -> int:
        return len(self._buffer)

    def stage(self, segment: ViewSegment) -> None:
        """Buffer one epoch's views until the next commit marker."""
        self._buffer.append(segment)

    def commit(self) -> Tuple[float, int]:
        """Flush all buffered segments; returns (io_seconds, bytes).

        Each epoch keeps its own durable segment so recovery can fetch
        exactly the epochs it replays.
        """
        io_seconds = 0.0
        total_bytes = 0
        faults = getattr(self._disk, "faults", None)
        for segment in self._buffer:
            blob = segment.encoded()
            io_seconds += self._disk.logs.commit_epoch(
                STREAM, segment.epoch_id, blob
            )
            total_bytes += segment.byte_size()
            # Crash point inside group commit: an injected crash lands
            # with some-but-not-all segments of this commit durable.
            if faults is not None:
                faults.maybe_crash()
        self._buffer = []
        return io_seconds, total_bytes

    def drop_buffer(self) -> None:
        """A crash destroys uncommitted segments (they were volatile)."""
        self._buffer = []

    def has_epoch(self, epoch_id: int) -> bool:
        return self._disk.logs.has_epoch(STREAM, epoch_id)

    def load_epoch(self, epoch_id: int) -> Tuple[ViewSegment, float]:
        """Reload one committed segment; returns (segment, io_seconds)."""
        if not self.has_epoch(epoch_id):
            raise RecoveryError(f"no committed view segment for epoch {epoch_id}")
        raw, io_seconds = self._disk.logs.read_epoch(STREAM, epoch_id)
        return ViewSegment.from_encoded(raw), io_seconds
