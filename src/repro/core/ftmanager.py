"""Fault-tolerance Manager (FM): marker orchestration (§IV, §VI-C).

The FM injects three marker types at reconfigurable intervals:

- **transaction markers** delimit punctuation epochs (the transition
  between stream processing and transaction processing) — every epoch;
- **commit markers** tell the Logging Manager to persist buffered
  intermediate results — every ``commit_every`` epochs (aligned with
  transaction markers by default);
- **snapshot markers** command a global state checkpoint — every
  ``snapshot_every`` epochs.

When an :class:`~repro.core.commitment.AdaptiveCommitController` is
attached, the FM re-derives the commit interval from the most recent
workload profile after each snapshot, implementing the workload-aware
commitment of §VI-B at the orchestration level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.commitment import AdaptiveCommitController, WorkloadProfile
from repro.errors import ConfigError

TRANSACTION = "transaction"
COMMIT = "commit"
SNAPSHOT = "snapshot"


@dataclass
class MarkerSchedule:
    """Marker intervals, in punctuation epochs."""

    commit_every: int = 1
    snapshot_every: int = 4

    def __post_init__(self) -> None:
        if self.commit_every < 1:
            raise ConfigError("commit_every must be >= 1")
        if self.snapshot_every < 1:
            raise ConfigError("snapshot_every must be >= 1")
        if self.snapshot_every % self.commit_every:
            raise ConfigError(
                "snapshot_every must be a multiple of commit_every so "
                "checkpoints always sit on commit boundaries"
            )


class FaultToleranceManager:
    """Decides which markers fire at the end of each epoch."""

    def __init__(
        self,
        schedule: Optional[MarkerSchedule] = None,
        controller: Optional[AdaptiveCommitController] = None,
        base_epoch_len: int = 512,
    ):
        self.schedule = schedule or MarkerSchedule()
        self.controller = controller
        self._epoch_len = base_epoch_len
        self._last_profile: Optional[WorkloadProfile] = None

    @property
    def epoch_len(self) -> int:
        """Current punctuation interval in events."""
        return self._epoch_len

    def markers_at(self, epoch_id: int) -> Set[str]:
        """Markers firing at the end of epoch ``epoch_id`` (0-based)."""
        markers = {TRANSACTION}
        if (epoch_id + 1) % self.schedule.commit_every == 0:
            markers.add(COMMIT)
        if (epoch_id + 1) % self.schedule.snapshot_every == 0:
            markers.add(SNAPSHOT)
        return markers

    def observe(self, profile: WorkloadProfile) -> None:
        """Feed the latest epoch profile to the adaptive controller."""
        self._last_profile = profile
        if self.controller is not None:
            self._epoch_len = self.controller.recommend(profile)

    @property
    def last_profile(self) -> Optional[WorkloadProfile]:
        return self._last_profile
