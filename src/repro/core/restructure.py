"""Operation restructuring (§V-B2).

With aborted transactions dropped (abort pushdown) and parametric
dependencies eliminable through the ParametricView, the surviving state
access operations can be rearranged into per-record, timestamp-sorted
chains.  This module builds those chains and classifies every cross-key
read of every operation into one of three resolution classes:

- ``BASE`` — no earlier in-epoch writer: read the checkpointed store;
- ``VIEW`` — the source chain lives in another partition (or selective
  logging is off): the value was recorded at runtime, resolve by view
  lookup with zero coordination;
- ``LOCAL`` — the source chain lives in the same partition: resolve
  during shadow-based exploration.

The classification depends only on record partitions (never on which
specific transactions committed), which is what makes the runtime-logged
view and the recovery-side classification agree — property tests
exercise this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.operations import Operation
from repro.engine.refs import StateRef
from repro.engine.tpg import TaskPrecedenceGraph, build_tpg
from repro.engine.transactions import Transaction


class ReadClass(Enum):
    """How one cross-key read is resolved during recovery."""

    BASE = "base"
    VIEW = "view"
    LOCAL = "local"


@dataclass(frozen=True)
class ReadResolution:
    """One classified read: where its value comes from."""

    ref: StateRef
    read_class: ReadClass
    #: uid of the in-partition source operation (LOCAL only).
    source_uid: Optional[int] = None


@dataclass
class RestructuredEpoch:
    """Chains plus classified reads for one epoch's surviving work."""

    tpg: TaskPrecedenceGraph
    #: record -> ts-sorted surviving operations.
    chains: Dict[StateRef, List[Operation]] = field(default_factory=dict)
    #: op uid -> classified resolutions for ``op.reads`` in order.
    resolutions: Dict[int, Tuple[ReadResolution, ...]] = field(
        default_factory=dict
    )
    #: op uid -> intra-partition source uids (input to shadow exploration).
    local_deps: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    num_view_reads: int = 0
    num_local_reads: int = 0


def restructure_operations(
    txns: Sequence[Transaction],
    partition_of: Optional[Dict[StateRef, int]],
) -> RestructuredEpoch:
    """Restructure surviving transactions into independent chains.

    ``txns`` are the committed transactions of one epoch (abort pushdown
    has already run).  ``partition_of`` is the chain partition map the
    runtime logged; ``None`` means selective logging is off, in which
    case *every* sourced read resolves through the view and chains are
    fully independent.
    """
    tpg = build_tpg(txns)
    result = RestructuredEpoch(tpg=tpg, chains=tpg.chains)
    for op in tpg.ops:
        resolutions: List[ReadResolution] = []
        local: List[int] = []
        for ref, src in tpg.pd_sources[op.uid]:
            if src is None:
                resolutions.append(ReadResolution(ref, ReadClass.BASE))
                continue
            same_partition = (
                partition_of is not None
                and partition_of.get(ref) == partition_of.get(op.ref)
            )
            if same_partition:
                resolutions.append(
                    ReadResolution(ref, ReadClass.LOCAL, source_uid=src)
                )
                local.append(src)
                result.num_local_reads += 1
            else:
                resolutions.append(ReadResolution(ref, ReadClass.VIEW))
                result.num_view_reads += 1
        result.resolutions[op.uid] = tuple(resolutions)
        if local:
            result.local_deps[op.uid] = tuple(dict.fromkeys(local))
    return result


def chains_by_partition(
    restructured: RestructuredEpoch,
    partition_of: Optional[Dict[StateRef, int]],
    num_partitions: int,
) -> List[List[List[Operation]]]:
    """Group chains into partition task bundles.

    With selective logging off every chain is its own bundle (fully
    independent tasks); otherwise chains sharing a partition form one
    bundle so their LOCAL reads can be shadow-resolved by one worker.
    Bundles and chains keep deterministic (first-timestamp) order.
    """
    ordered_chains = sorted(
        restructured.chains.items(), key=lambda kv: kv[1][0].uid
    )
    if partition_of is None:
        # With selective logging off, every dependency resolves through
        # the view, so chains are fully independent and any grouping is
        # valid; fold them into a bounded number of bundles to keep
        # dispatch cheap while giving LPT room to balance.
        num_bundles = max(1, min(len(ordered_chains), 4 * num_partitions))
        bundles = [[] for _ in range(num_bundles)]
        for index, (_ref, chain) in enumerate(ordered_chains):
            bundles[index % num_bundles].append(chain)
        return [b for b in bundles if b]
    bundles: List[List[List[Operation]]] = [[] for _ in range(num_partitions)]
    for ref, chain in ordered_chains:
        pid = partition_of.get(ref)
        if pid is None:
            # A record first written after the partition map was logged
            # cannot happen within an epoch (the map covers the epoch's
            # chains), but guard against misuse.
            pid = 0
        bundles[pid].append(chain)
    return [b for b in bundles if b]
