"""Exception hierarchy for the MorphStreamR reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base type.  Specific subclasses mark the subsystem
that failed, which keeps failure handling explicit at the harness level
(e.g. a :class:`RecoveryError` aborts an experiment while a
:class:`ConfigError` is a usage bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class StorageError(ReproError):
    """A simulated durable-storage operation failed or was misused."""


class SchedulingError(ReproError):
    """The parallel executor was given an inconsistent task graph."""


class TransactionError(ReproError):
    """A state transaction is malformed (e.g. duplicate write keys)."""


class RecoveryError(ReproError):
    """Failure recovery could not restore a consistent state."""


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible configuration."""
