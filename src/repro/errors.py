"""Exception hierarchy for the MorphStreamR reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base type.  Specific subclasses mark the subsystem
that failed, which keeps failure handling explicit at the harness level
(e.g. a :class:`RecoveryError` aborts an experiment while a
:class:`ConfigError` is a usage bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class BackendError(ConfigError):
    """The requested execution backend cannot run on this host/config.

    Raised at scheme construction (never mid-recovery) when the real
    multiprocessing backend is selected on a platform that cannot spawn
    worker processes, so callers fail loudly before any work starts.
    The CLI maps this to its own exit code.
    """


class StorageError(ReproError):
    """A simulated durable-storage operation failed or was misused."""


class TornSegmentError(StorageError):
    """A durable segment is a prefix of what was written (torn flush).

    A torn tail is the expected aftermath of a crash mid-flush: callers
    may truncate the segment to the last consistent prefix and degrade
    to a coarser recovery mechanism (truncate-and-continue).
    """


class CorruptSegmentError(StorageError):
    """A durable segment fails its checksum (bit rot / partial-page flip).

    Unlike a torn tail, corruption in the middle of retained history is
    not survivable by truncation alone; callers fall back to a coarser
    mechanism if one exists and otherwise must fail loudly.
    """


class MissingSegmentError(StorageError):
    """A durable segment that should exist is absent (dropped flush)."""


class VectorMismatchError(CorruptSegmentError):
    """A logged LSN vector disagrees with the recomputed partial order.

    Raised by LV/LVC recovery when a record's logged vector does not
    match the vector recomputed from the rebuilt committed-only TPG —
    the record decoded cleanly (its CRC passed) but its dependency
    payload is stale or corrupted, so replaying under it could violate
    the commit-order partial order.  Subclassing
    :class:`CorruptSegmentError` keeps it inside the degradable set: the
    fallback ladder quarantines the vector log and replays the epoch
    from the persisted event store (rung 2) instead of trusting it.
    """

    def __init__(self, message: str, epoch_id: int = -1, record_index: int = -1):
        super().__init__(message)
        self.epoch_id = epoch_id
        self.record_index = record_index


class ReadFaultError(StorageError):
    """The device returned an I/O error for a read (injected EIO)."""


class InjectedCrash(ReproError):
    """A chaos-layer crash fired mid-epoch (simulated process death).

    Raised after some-but-not-all durable writes of the current epoch
    landed; the scheme is left in the crashed state and the caller is
    expected to run :meth:`~repro.ft.base.FTScheme.recover`.
    """


class SchedulingError(ReproError):
    """The parallel executor was given an inconsistent task graph."""


class TransactionError(ReproError):
    """A state transaction is malformed (e.g. duplicate write keys)."""


class RecoveryError(ReproError):
    """Failure recovery could not restore a consistent state."""


class ReassignmentError(RecoveryError):
    """Recovery lost workers faster than it could re-assign their work.

    Raised when the bounded retry/backoff budget for re-assigning a dead
    recovery worker's unfinished chains is exhausted, or when no
    surviving worker remains.  The durable recovery-progress watermark
    is left intact, so a retry on healthy workers resumes rather than
    restarting from scratch.
    """


class ClusterDataLossError(RecoveryError):
    """A correlated failure destroyed every copy of some shard's state.

    Raised when the dead failure domains cover a shard's primary *and*
    all of its placement replicas — the replication factor was below the
    correlation width of the fault.  The cluster refuses to recover into
    a silently-wrong state; the error names the lost shards and the
    events whose effects cannot be reconstructed (the RPO of the
    incident).
    """

    def __init__(self, message: str, lost_shards=(), lost_events: int = 0):
        super().__init__(message)
        self.lost_shards = tuple(lost_shards)
        self.lost_events = lost_events


class InvariantViolationError(ReproError):
    """A checked recovery invariant failed under some fault schedule.

    Raised by the systematic explorer (:mod:`repro.check`) when a
    declarative invariant — bit-exact recovered state, exactly-once
    outputs, watermark monotonicity, bounded degraded-read staleness,
    ladder-rung monotonicity, loss only beyond the replication budget —
    does not hold for an observed run.  Carries the invariant name and
    the schedule fingerprint so the violation is reproducible.
    """

    def __init__(
        self,
        message: str,
        invariant: str = "",
        fingerprint: str = "",
    ):
        super().__init__(message)
        self.invariant = invariant
        self.fingerprint = fingerprint


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible configuration."""
