"""Key-space sharding and transaction localization.

A :class:`ShardMap` range-partitions every table across N shards with
the same arithmetic the workloads use for worker partitioning, so a
record's shard is deterministic and derivable from the ref alone.

:class:`ShardWorkload` adapts one global workload to a single shard: it
rebuilds the global transaction for an event, keeps only the operations
whose target record lives on this shard, and resolves everything that
crosses the shard boundary through the :class:`DependencyFrontier`:

* cross-shard *verdicts* become a pinned always-false condition (abort)
  or no condition at all (commit);
* cross-shard *reads* become the ``frontier_resolved`` state function,
  whose params carry the exact read values the coordinator observed —
  so shard-local (re-)execution reproduces the global serial result
  bit-for-bit without contacting any other shard.

Localization is deterministic: replaying the same events through the
same frontier always yields the same shard transaction, which is what
makes shard-local command logging and event replay sound.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set, Tuple

from repro.cluster.frontier import DependencyFrontier
from repro.engine.events import Event
from repro.engine.execution import stable_hash
from repro.engine.functions import apply_state_function, register_state_function
from repro.engine.operations import Condition
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.transactions import Transaction
from repro.errors import WorkloadError
from repro.workloads.base import Workload

#: Deterministic output sentinel for transactions whose home shard is
#: elsewhere; filtered out during cluster-level output aggregation.
SHARD_INTERNAL = "shard-internal"


def _frontier_resolved(own: float, reads: Tuple[float, ...], params: tuple) -> float:
    """Run the original state function with coordinator-pinned reads."""
    inner, vals, orig = params
    return apply_state_function(inner, own, tuple(vals), tuple(orig))


register_state_function("frontier_resolved", _frontier_resolved)


class ShardMap:
    """Deterministic record → shard mapping (range partitioning)."""

    def __init__(self, workload: Workload, num_shards: int):
        self.num_shards = num_shards
        self._sizes: Dict[str, int] = dict(workload._table_sizes)

    def shard_of(self, ref: StateRef) -> int:
        size = self._sizes.get(ref.table)
        if size is None or not isinstance(ref.key, int):
            return stable_hash(ref) % self.num_shards
        return ref.key * self.num_shards // size

    def shards_of_txn(self, txn: Transaction) -> Tuple[int, ...]:
        """Every shard a transaction touches (ops, reads and conditions)."""
        shards: Set[int] = {self.shard_of(op.ref) for op in txn.ops}
        for ref in txn.read_set():
            shards.add(self.shard_of(ref))
        return tuple(sorted(shards))

    def op_shards(self, txn: Transaction) -> Tuple[int, ...]:
        """Shards owning at least one written record of the transaction."""
        return tuple(sorted({self.shard_of(op.ref) for op in txn.ops}))

    def is_cross(self, txn: Transaction) -> bool:
        return len(self.shards_of_txn(txn)) > 1


class ShardWorkload(Workload):
    """One shard's view of a global workload.

    ``build_transaction`` localizes cross-shard transactions through the
    shard's dependency frontier; single-shard transactions pass through
    untouched.  ``generate`` is intentionally unsupported — the cluster
    generates one global stream and routes it.
    """

    def __init__(self, inner: Workload, shard_map: ShardMap, shard_id: int):
        super().__init__(inner.num_partitions)
        self.inner = inner
        self.shard_map = shard_map
        self.shard_id = shard_id
        self.name = f"{inner.name}/shard{shard_id}"
        self._table_sizes = dict(inner._table_sizes)
        self.frontier = DependencyFrontier()

    # ------------------------------------------------------------------
    # Workload contract
    # ------------------------------------------------------------------

    def initial_state(self) -> StateStore:
        """This shard's slice of the global initial tables."""
        full = self.inner.initial_state()
        sliced = {
            table: {
                key: value
                for key, value in records.items()
                if self.shard_map.shard_of(StateRef(table, key)) == self.shard_id
            }
            for table, records in full.snapshot().items()
        }
        return StateStore(sliced)

    def generate(self, num_events: int, seed: int = 0) -> List[Event]:
        raise WorkloadError(
            "shard workloads do not generate events; the cluster routes "
            "the global stream"
        )

    def build_transaction(self, event: Event, uid_base: int) -> Transaction:
        if not self.frontier.is_cross(event.seq):
            # Single-shard transaction: everything it touches lives here,
            # so the global template applies verbatim.
            return self.inner.build_transaction(event, uid_base)
        gtxn = self.inner.build_transaction(event, 0)
        entry = self.frontier.entry(event.seq)
        ops = []
        next_uid = uid_base
        for index, op in enumerate(gtxn.ops):
            if self.shard_map.shard_of(op.ref) != self.shard_id:
                continue
            if op.reads and not entry.aborted:
                vals = self.frontier.reads_for(event.seq, index)
                op = replace(
                    op,
                    uid=next_uid,
                    func="frontier_resolved",
                    params=(op.func, vals, op.params),
                    reads=(),
                )
            else:
                # Aborted operations never run their UDF; dropping the
                # reads just removes dangling cross-shard edges.
                op = replace(op, uid=next_uid, reads=())
            ops.append(op)
            next_uid += 1
        if not ops:
            raise WorkloadError(
                f"event {event.seq} routed to shard {self.shard_id} "
                "but owns no operation here"
            )
        # The cluster-wide verdict is pinned by the frontier: an aborted
        # transaction aborts on every shard via an always-false condition;
        # a committed one carries no conditions at all.
        conditions = (Condition("never"),) if entry.aborted else ()
        return Transaction(event.seq, event.seq, event, tuple(ops), conditions)

    def output_for(
        self, txn: Transaction, committed: bool, op_values: Dict[int, float]
    ) -> tuple:
        seq = txn.event.seq
        if self.frontier.is_cross(seq) and self.frontier.entry(seq).home != self.shard_id:
            return (SHARD_INTERNAL, self.shard_id)
        return self.inner.output_for(txn, committed, op_values)
