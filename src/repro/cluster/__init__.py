"""Sharded-cluster layer: failure domains, correlated faults, placement.

Public surface of the subsystem built for ROADMAP item 2 — N
shard-local MorphStreamR instances behind one topology, with
deterministic correlated fault injection and pluggable replica
placement.
"""

from repro.cluster.cluster import (
    ClusterRecoveryReport,
    ClusterRuntimeReport,
    FRONTIER_STREAM,
    ShardRecoveryRecord,
    ShardedCluster,
)
from repro.cluster.faultplan import ClusterFault, ClusterFaultPlan
from repro.cluster.frontier import DependencyFrontier, FederatedView, FrontierEntry
from repro.cluster.placement import (
    PLACEMENT_NAMES,
    CheckpointSpread,
    PlacementStrategy,
    StandbyReplay,
    get_placement,
)
from repro.cluster.sharding import SHARD_INTERNAL, ShardMap, ShardWorkload
from repro.cluster.topology import ClusterTopology, KillTarget, parse_kill

__all__ = [
    "FRONTIER_STREAM",
    "PLACEMENT_NAMES",
    "SHARD_INTERNAL",
    "CheckpointSpread",
    "ClusterFault",
    "ClusterFaultPlan",
    "ClusterRecoveryReport",
    "ClusterRuntimeReport",
    "ClusterTopology",
    "DependencyFrontier",
    "FederatedView",
    "FrontierEntry",
    "KillTarget",
    "PlacementStrategy",
    "ShardMap",
    "ShardRecoveryRecord",
    "ShardWorkload",
    "ShardedCluster",
    "StandbyReplay",
    "get_placement",
    "parse_kill",
]
