"""Failure-domain topology: process → node → rack.

A :class:`ClusterTopology` places N shard processes onto nodes and nodes
onto racks, following the correlated-failure model of Su & Zhou
(PAPERS.md): failures are not independent — a power feed or top-of-rack
switch takes out *every* process in its failure domain at once.  The
topology is the coordinate system for both fault injection (kill
targets name a domain) and replica placement (replicas must land in
*other* domains to survive a correlated kill).

Kill targets are written as ``shard:S`` (one process dies; its node's
storage survives), ``node:R.N`` (node N of rack R dies with its local
storage) or ``rack:R`` (every node of rack R dies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError

#: Kill-target kinds, from narrowest to widest failure domain.
KILL_KINDS = ("shard", "node", "rack")


@dataclass(frozen=True)
class KillTarget:
    """One failure domain to destroy, parsed from a ``kind:where`` spec."""

    kind: str
    rack: int = -1
    node: int = -1
    shard: int = -1

    def label(self) -> str:
        if self.kind == "shard":
            return f"shard:{self.shard}"
        if self.kind == "node":
            return f"node:{self.rack}.{self.node}"
        return f"rack:{self.rack}"


def parse_kill(spec: str) -> KillTarget:
    """Parse ``shard:S`` / ``node:R.N`` / ``rack:R`` into a target."""
    kind, _, where = spec.partition(":")
    if kind not in KILL_KINDS or not where:
        raise ConfigError(
            f"kill target {spec!r} must be shard:S, node:R.N or rack:R"
        )
    try:
        if kind == "shard":
            return KillTarget("shard", shard=int(where))
        if kind == "rack":
            return KillTarget("rack", rack=int(where))
        rack_part, _, node_part = where.partition(".")
        if not node_part:
            raise ValueError(where)
        return KillTarget("node", rack=int(rack_part), node=int(node_part))
    except ValueError:
        raise ConfigError(f"malformed kill target {spec!r}") from None


class ClusterTopology:
    """Shards spread over ``num_racks × nodes_per_rack`` nodes.

    Shards map to nodes by the same range arithmetic the workloads use
    for key partitioning (``shard * num_nodes // num_shards``), so the
    spread is even and deterministic.  Nodes are numbered globally
    (``rack * nodes_per_rack + node_in_rack``).
    """

    def __init__(self, num_shards: int, num_racks: int = 2, nodes_per_rack: int = 2):
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if num_racks < 1 or nodes_per_rack < 1:
            raise ConfigError("num_racks and nodes_per_rack must be >= 1")
        if num_shards < num_racks * nodes_per_rack:
            raise ConfigError(
                f"{num_shards} shard(s) cannot populate "
                f"{num_racks * nodes_per_rack} node(s); every node needs "
                "at least one shard"
            )
        self.num_shards = num_shards
        self.num_racks = num_racks
        self.nodes_per_rack = nodes_per_rack

    @property
    def num_nodes(self) -> int:
        return self.num_racks * self.nodes_per_rack

    def node_of_shard(self, shard: int) -> int:
        self._check_shard(shard)
        return shard * self.num_nodes // self.num_shards

    def rack_of_node(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_rack

    def rack_of_shard(self, shard: int) -> int:
        return self.rack_of_node(self.node_of_shard(shard))

    def shards_of_node(self, node: int) -> Tuple[int, ...]:
        self._check_node(node)
        return tuple(
            s for s in range(self.num_shards) if self.node_of_shard(s) == node
        )

    def nodes_of_rack(self, rack: int) -> Tuple[int, ...]:
        if not 0 <= rack < self.num_racks:
            raise ConfigError(f"rack {rack} out of range")
        base = rack * self.nodes_per_rack
        return tuple(range(base, base + self.nodes_per_rack))

    def nodes_killed(self, target: KillTarget) -> Tuple[int, ...]:
        """Nodes whose *storage* dies with the target (empty for shard kills)."""
        if target.kind == "shard":
            return ()
        if target.kind == "node":
            node = target.rack * self.nodes_per_rack + target.node
            self._check_node(node)
            if not 0 <= target.node < self.nodes_per_rack:
                raise ConfigError(
                    f"node {target.node} out of range for rack {target.rack}"
                )
            return (node,)
        return self.nodes_of_rack(target.rack)

    def shards_killed(self, target: KillTarget) -> Tuple[int, ...]:
        """Shard processes destroyed by the target."""
        if target.kind == "shard":
            self._check_shard(target.shard)
            return (target.shard,)
        return tuple(
            shard
            for node in self.nodes_killed(target)
            for shard in self.shards_of_node(node)
        )

    def validate(self, target: KillTarget) -> None:
        """Raise :class:`ConfigError` if the target is out of range."""
        self.shards_killed(target)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ConfigError(f"shard {shard} out of range")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range")
