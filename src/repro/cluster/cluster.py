"""ShardedCluster: N shard-local MorphStreamR instances + failure domains.

ROADMAP item 2's regime: the key space is range-partitioned across N
shards, each an independent MorphStreamR instance (own disk, own
simulated multicore) placed on a node of a rack.  One global event
stream is routed per cluster epoch:

1. the coordinator preprocesses the batch, detects cross-shard
   transactions and runs one *frontier pass* over a federated
   (read-through, write-buffered) view of all shard stores, pinning
   every cross-shard verdict and read value into the per-epoch
   :class:`DependencyFrontier`;
2. each touched shard durably commits its frontier slice as an extra
   ``"frontier"`` log stream, then processes its localized slice of the
   epoch through the ordinary FTScheme pipeline (selective logging,
   checkpoints, GC — all unchanged);
3. at the epoch boundary the :class:`ClusterFaultPlan` may kill a
   failure domain: every shard in it loses its volatile state, and for
   node/rack kills the node-local storage dies too — recovery is then
   only possible from placement replicas.

Recovery checks the placement survival verdict first (failing **loudly**
with :class:`ClusterDataLossError` when the correlated kill out-ran the
replication factor), then recovers each dead shard from durable bytes
alone — the frontier stream is reloaded from disk, so cross-shard
dependencies resolve without contacting any other shard, and concurrent
shard recoveries converge to the serial ground truth.  Dead shards'
recoveries are LPT-packed onto the surviving nodes and simulated via
the :class:`ResilientExecutor`; the resulting
:class:`ClusterRecoveryReport` carries per-shard and aggregate MTTR and
the availability-centric RTO/RPO metrics of Vogel et al.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import buckets
from repro.cluster.faultplan import ClusterFaultPlan
from repro.cluster.frontier import DependencyFrontier, FederatedView, FrontierEntry
from repro.cluster.placement import PlacementStrategy, get_placement
from repro.cluster.sharding import SHARD_INTERNAL, ShardMap, ShardWorkload
from repro.cluster.topology import ClusterTopology, KillTarget
from repro.core.assignment import lpt_assign
from repro.core.morphstreamr import MorphStreamR
from repro.engine.events import Event
from repro.engine.refs import StateRef
from repro.engine.execution import execute_tpg, preprocess
from repro.engine.state import StateStore
from repro.engine.tpg import build_tpg
from repro.engine.transactions import Transaction
from repro.errors import ClusterDataLossError, ConfigError, InjectedCrash, RecoveryError
from repro.ft.base import DegradedRead, FTScheme, OutputSink
from repro.sim.clock import Machine
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import ResilientExecutor, SimTask
from repro.storage.codec import encode
from repro.storage.device import StorageDevice
from repro.storage.stores import Disk

#: Log stream carrying each shard's slice of the dependency frontier.
FRONTIER_STREAM = "frontier"


@dataclass
class ClusterRuntimeReport:
    """What one runtime phase of the whole cluster measured."""

    num_shards: int
    events_processed: int
    epochs: int
    elapsed_seconds: float
    throughput_eps: float
    cross_shard_txns: int
    total_txns: int
    replication_bytes: int

    @property
    def cross_shard_ratio(self) -> float:
        return self.cross_shard_txns / self.total_txns if self.total_txns else 0.0


@dataclass
class ShardRecoveryRecord:
    """One dead shard's recovery, in cluster coordinates."""

    shard: int
    node: int
    rack: int
    mttr_seconds: float
    epochs_replayed: int
    events_replayed: int
    ladder: Dict[str, int]
    resumed: bool
    checkpoint_epoch: Optional[int]
    attempts: int
    watermark_degradations: int


@dataclass
class ClusterRecoveryReport:
    """Aggregate verdict of one correlated-failure recovery."""

    placement: str
    replication: int
    kills: Tuple[str, ...]
    shards_killed: Tuple[int, ...]
    nodes_killed: Tuple[int, ...]
    #: simultaneously-dead nodes — the k of the k-correlated failure.
    correlation_width: int
    detection_seconds: float
    #: wall-clock of the parallel shard recoveries on surviving nodes.
    makespan_seconds: float
    #: Recovery Time Objective actually achieved: detection + makespan.
    rto_seconds: float
    #: acknowledged events whose effects were lost (0 on success — the
    #: frontier + logs/checkpoints reconstruct everything acknowledged).
    rpo_events: int
    rpo_seconds: float
    mean_mttr_seconds: float
    max_mttr_seconds: float
    recovery_nodes: int
    per_shard: List[ShardRecoveryRecord]
    data_loss: bool = False
    lost_shards: Tuple[int, ...] = ()
    verdict: str = "survived"
    watermark_degradations: int = 0


class ShardedCluster:
    """N shard-local MSR instances under one failure-domain topology."""

    def __init__(
        self,
        workload,
        topology: ClusterTopology,
        *,
        placement: str = "checkpoint_spread",
        replication: int = 1,
        workers_per_shard: int = 2,
        epoch_len: int = 32,
        snapshot_interval: int = 4,
        gc_keep_checkpoints: int = 2,
        costs: CostModel = DEFAULT_COSTS,
        fault_plan: Optional[ClusterFaultPlan] = None,
        detection_seconds: float = 0.5,
        scheme_cls: type = MorphStreamR,
    ):
        if replication < 0:
            raise ConfigError("replication must be >= 0")
        if replication > topology.num_nodes - 1:
            raise ConfigError(
                f"replication {replication} exceeds the {topology.num_nodes - 1} "
                "other nodes available"
            )
        if epoch_len < 1:
            raise ConfigError("epoch_len must be >= 1")
        self.workload = workload
        self.topology = topology
        self.placement: PlacementStrategy = get_placement(placement)
        self.replication = replication
        self.epoch_len = epoch_len
        self.costs = costs
        self.detection_seconds = detection_seconds
        self.fault_plan = fault_plan or ClusterFaultPlan()
        self.fault_plan.validate(topology)
        self.shard_map = ShardMap(workload, topology.num_shards)
        self.sink = OutputSink()

        shard_kwargs: Dict[str, object] = dict(
            num_workers=workers_per_shard,
            epoch_len=epoch_len,
            snapshot_interval=snapshot_interval,
            gc_keep_checkpoints=gc_keep_checkpoints,
            costs=costs,
        )
        shard_kwargs.update(self.placement.shard_kwargs())
        self.shards: List[FTScheme] = []
        for sid in range(topology.num_shards):
            shard_workload = ShardWorkload(workload, self.shard_map, sid)
            disk = Disk(faults=self.fault_plan.injector_for(sid))
            self.shards.append(
                scheme_cls(
                    shard_workload,
                    disk=disk,
                    recovery_faults=self.fault_plan.recovery_faults_for(sid),
                    **shard_kwargs,
                )
            )

        #: bytes shipped to placement replicas (charged on shard machines).
        self.replication_bytes = 0
        self._replica_device = StorageDevice()
        self._disk_bytes = [s.disk.bytes_stored for s in self.shards]
        self._pending: List[Event] = []
        #: every event of a *completed* cluster epoch (volatile; only for
        #: ground-truth verification, mirroring the chaos harness).
        self._processed_events: List[Event] = []
        self._epochs_done = 0
        self._crashed = False
        self._dead_shards: Set[int] = set()
        self._dead_nodes: Set[int] = set()
        self._kills_applied: List[KillTarget] = []
        self._shard_records: Dict[int, ShardRecoveryRecord] = {}
        self._cross_txns = 0
        self._total_txns = 0
        #: batch + routes of a cluster epoch interrupted mid-flight by a
        #: shard's storage-fault crash (boundary kills never set this).
        self._inflight: Optional[List[Event]] = None
        self._inflight_routes: Dict[int, List[Event]] = {}

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def epochs_done(self) -> int:
        return self._epochs_done

    def elapsed_seconds(self) -> float:
        """Cluster wall-clock: shards run in parallel on distinct nodes."""
        return max(s.machine.elapsed() for s in self.shards)

    def process_stream(self, events: Sequence[Event]) -> ClusterRuntimeReport:
        """Route and process ``events`` cluster-epoch by cluster-epoch."""
        if self._crashed:
            raise RecoveryError(
                "cluster has failed shards; call recover() first"
            )
        queue = self._pending + list(events)
        self._pending = []
        start_elapsed = self.elapsed_seconds()
        start_events = len(self._processed_events)
        while len(queue) >= self.epoch_len and not self._crashed:
            batch, queue = queue[: self.epoch_len], queue[self.epoch_len :]
            self._process_cluster_epoch(batch)
        self._pending = queue
        elapsed = self.elapsed_seconds() - start_elapsed
        events_done = len(self._processed_events) - start_events
        return ClusterRuntimeReport(
            num_shards=self.topology.num_shards,
            events_processed=events_done,
            epochs=self._epochs_done,
            elapsed_seconds=elapsed,
            throughput_eps=events_done / elapsed if elapsed > 0 else 0.0,
            cross_shard_txns=self._cross_txns,
            total_txns=self._total_txns,
            replication_bytes=self.replication_bytes,
        )

    def _process_cluster_epoch(self, batch: Sequence[Event]) -> None:
        epoch_id = self._epochs_done
        self._inflight = list(batch)
        self._inflight_routes = self._coordinate(epoch_id, batch)
        crashed_now = False
        for sid, shard in enumerate(self.shards):
            if sid in self._dead_shards:
                continue
            try:
                self._run_shard_epoch(sid, self._inflight_routes.get(sid, []))
            except InjectedCrash:
                # A storage-fault crash killed this shard process
                # mid-epoch.  The other shards keep running; the cluster
                # stalls at this epoch until recover() brings the shard
                # back and the epoch is completed.
                shard._enter_crashed_state(shard._next_epoch - 1)
                self._dead_shards.add(sid)
                crashed_now = True
        if crashed_now:
            self._crashed = True
            return
        self._finish_epoch()

    def _finish_epoch(self) -> None:
        assert self._inflight is not None
        self._processed_events.extend(self._inflight)
        self._inflight = None
        self._inflight_routes = {}
        epoch_id = self._epochs_done
        self._epochs_done += 1
        for target in self.fault_plan.kills_after(epoch_id):
            self._apply_kill(target)

    def _apply_kill(self, target: KillTarget) -> None:
        """Destroy one failure domain at an epoch boundary."""
        for sid in self.topology.shards_killed(target):
            if sid not in self._dead_shards:
                self.shards[sid].crash()
                self._dead_shards.add(sid)
        self._dead_nodes.update(self.topology.nodes_killed(target))
        self._kills_applied.append(target)
        if self._dead_shards:
            self._crashed = True

    def kill(self, target: KillTarget) -> None:
        """Immediately destroy a failure domain (manual chaos)."""
        self.topology.validate(target)
        self._apply_kill(target)

    # ------------------------------------------------------------------
    # coordination: routing + dependency frontier
    # ------------------------------------------------------------------

    def _coordinate(
        self, epoch_id: int, batch: Sequence[Event]
    ) -> Dict[int, List[Event]]:
        """Route the batch and pin the epoch's cross-shard frontier."""
        gtxns = preprocess(batch, self.workload, 0)
        self._total_txns += len(gtxns)
        routes: Dict[int, List[Event]] = {}
        cross: List[Transaction] = []
        for txn in gtxns:
            for sid in self.shard_map.op_shards(txn):
                routes.setdefault(sid, []).append(txn.event)
            if len(self.shard_map.shards_of_txn(txn)) > 1:
                cross.append(txn)
        entries_by_shard: Dict[int, List[FrontierEntry]] = {}
        if cross:
            self._cross_txns += len(cross)
            # Frontier pass: execute the whole batch (cross-shard reads
            # may observe values written by single-shard transactions of
            # the same epoch) over a read-through view of all shard
            # stores; writes land in a discard-after buffer, so shard
            # state is untouched.
            view = FederatedView(
                self.shard_map.shard_of, [s.store for s in self.shards]
            )
            outcome = execute_tpg(view, build_tpg(gtxns))
            for txn in cross:
                aborted = txn.txn_id in outcome.aborted
                reads: Dict[int, Tuple[float, ...]] = {}
                if not aborted:
                    for index, op in enumerate(txn.ops):
                        if op.reads:
                            reads[index] = tuple(outcome.read_values[op.uid])
                entry = FrontierEntry(
                    seq=txn.event.seq,
                    home=self.shard_map.shard_of(txn.ops[0].ref),
                    aborted=aborted,
                    reads=reads,
                )
                for sid in self.shard_map.shards_of_txn(txn):
                    entries_by_shard.setdefault(sid, []).append(entry)
        # Every live shard durably commits its slice (possibly empty, so
        # recovery can rely on one frontier segment per epoch) and
        # learns the entries before processing its localized batch.
        for sid, shard in enumerate(self.shards):
            if sid in self._dead_shards:
                continue
            entries = entries_by_shard.get(sid, [])
            frontier = self._frontier_of(sid)
            for entry in entries:
                frontier.record(entry)
            if entries:
                shard._charge_tracking(
                    [self.costs.view_record] * len(entries)
                )
            if not shard.disk.logs.has_epoch(FRONTIER_STREAM, epoch_id):
                payload = [entry.encoded() for entry in entries]
                io_s = shard.disk.logs.commit_epoch(
                    FRONTIER_STREAM, epoch_id, payload
                )
                shard._charge_runtime_io(io_s, len(encode(payload)))
        return routes

    def _frontier_of(self, sid: int) -> DependencyFrontier:
        workload = self.shards[sid].workload
        assert isinstance(workload, ShardWorkload)
        return workload.frontier

    def _run_shard_epoch(self, sid: int, events_s: Sequence[Event]) -> None:
        shard = self.shards[sid]
        if shard._next_epoch != self._epochs_done:
            # Already past this epoch (catch-up re-entry after a
            # mid-epoch shard crash elsewhere).
            return
        if shard._pending_events:
            # A recovered shard re-enters here with the interrupted
            # epoch's slice restored from durable storage; it was
            # appended (and re-opened) there, so don't append again.
            batch = list(shard._pending_events)
            shard._pending_events = []
        else:
            batch = list(events_s)
            if batch:
                io_s = shard.disk.events.append_events(
                    [e.encoded() for e in batch]
                )
                shard._charge_runtime_io(io_s, len(batch) * 24)
        outputs = shard._process_epoch(batch)
        self._deliver(outputs)
        self._charge_replication(sid)

    def _deliver(self, outputs: Sequence[Tuple[int, tuple]]) -> None:
        for seq, output in outputs:
            if output and output[0] == SHARD_INTERNAL:
                continue
            self.sink.deliver(seq, output)

    def _charge_replication(self, sid: int) -> None:
        """Ship this epoch's durable byte delta to the f replicas."""
        shard = self.shards[sid]
        delta = shard.disk.bytes_stored - self._disk_bytes[sid]
        self._disk_bytes[sid] = shard.disk.bytes_stored
        if self.replication > 0 and delta > 0:
            shipped = delta * self.replication
            io_s = self._replica_device.write(shipped)
            shard._charge_runtime_io(io_s, 0)
            self.replication_bytes += shipped

    # ------------------------------------------------------------------
    # degraded-mode serving
    # ------------------------------------------------------------------

    def degraded_read(self, ref: StateRef) -> DegradedRead:
        """Answer a read during a partial outage, stale only if needed.

        The owning shard is derived from the ref alone (range
        partitioning), so routing needs no coordinator state:

        - a *surviving* shard answers from live state — tagged
          ``stale=False`` with staleness bound 0;
        - a *dead* shard answers through its checkpoint-backed degraded
          view (:meth:`~repro.ft.base.FTScheme.degraded_read`), tagged
          with the exact epoch staleness bound.

        This is the availability argument for sharded deployments: a
        rack kill degrades only the keys it owns, everything else keeps
        serving fresh.
        """
        sid = self.shard_map.shard_of(ref)
        shard = self.shards[sid]
        if sid in self._dead_shards or shard.store is None:
            return shard.degraded_read(ref)
        value = shard.store.get(ref)
        return DegradedRead(
            table=ref.table,
            key=ref.key,
            value=value,
            checkpoint_epoch=shard._next_epoch - 1,
            staleness_epochs=0,
            stale=False,
        )

    @property
    def dead_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._dead_shards))

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> ClusterRecoveryReport:
        """Recover every dead shard in parallel on the surviving nodes.

        Fails loudly — :class:`ClusterDataLossError` — when the
        correlated kill destroyed a shard's primary *and* every
        placement replica; partial attempts (a shard recovery raising)
        leave the cluster crashed so a retry resumes where it stopped.
        """
        if not self._crashed:
            raise RecoveryError("recover() called without a cluster failure")
        dead_shards = sorted(self._dead_shards)
        dead_nodes = sorted(self._dead_nodes)
        lost = [
            sid
            for sid in dead_shards
            if not self.placement.survives(
                sid, self.topology, self.replication, dead_nodes
            )
        ]
        if lost:
            lost_events = sum(
                self.shards[sid]._events_processed for sid in lost
            )
            raise ClusterDataLossError(
                f"DATA LOSS: correlated failure of nodes {dead_nodes} "
                f"destroyed every copy of shard(s) {lost} under "
                f"placement {self.placement.name!r} — replication factor "
                f"{self.replication} < correlation width {len(dead_nodes)}; "
                f"{lost_events} acknowledged events are unrecoverable",
                lost_shards=lost,
                lost_events=lost_events,
            )

        for sid in dead_shards:
            if sid in self._shard_records:
                continue  # recovered by an earlier (interrupted) attempt
            shard = self.shards[sid]
            frontier_io = self._reload_frontier(sid)
            report = shard.recover()
            # Recovered outputs converge with the pre-crash ones; the
            # sink deduplicates re-deliveries.
            self._deliver(list(shard.sink.outputs().items()))
            self._shard_records[sid] = ShardRecoveryRecord(
                shard=sid,
                node=self.topology.node_of_shard(sid),
                rack=self.topology.rack_of_shard(sid),
                mttr_seconds=report.elapsed_total_seconds + frontier_io,
                epochs_replayed=report.epochs_replayed,
                events_replayed=report.events_replayed,
                ladder=dict(report.ladder),
                resumed=report.resumed,
                checkpoint_epoch=report.checkpoint_epoch,
                attempts=report.attempts,
                watermark_degradations=report.watermark_degradations,
            )

        records = [self._shard_records[sid] for sid in dead_shards]
        surviving = [
            n for n in range(self.topology.num_nodes) if n not in dead_nodes
        ]
        makespan_s = self._aggregate_makespan(records, max(1, len(surviving)))
        report = ClusterRecoveryReport(
            placement=self.placement.name,
            replication=self.replication,
            kills=tuple(k.label() for k in self._kills_applied),
            shards_killed=tuple(dead_shards),
            nodes_killed=tuple(dead_nodes),
            correlation_width=len(dead_nodes),
            detection_seconds=self.detection_seconds,
            makespan_seconds=makespan_s,
            rto_seconds=self.detection_seconds + makespan_s,
            rpo_events=0,
            rpo_seconds=0.0,
            mean_mttr_seconds=(
                sum(r.mttr_seconds for r in records) / len(records)
                if records
                else 0.0
            ),
            max_mttr_seconds=max(
                (r.mttr_seconds for r in records), default=0.0
            ),
            recovery_nodes=len(surviving),
            per_shard=records,
            watermark_degradations=sum(
                r.watermark_degradations for r in records
            ),
        )
        self._dead_shards.clear()
        self._dead_nodes.clear()
        self._kills_applied = []
        self._shard_records = {}
        self._crashed = False
        if self._inflight is not None:
            self._complete_interrupted_epoch()
        return report

    def _reload_frontier(self, sid: int) -> float:
        """Rebuild the shard's frontier purely from its durable stream.

        Proves recovery never depends on coordinator memory: everything
        a shard needs to re-localize its transactions was group-committed
        alongside its other log streams.  Returns the I/O seconds spent
        (GC may have truncated epochs at or before the restart
        checkpoint — those are never replayed, so their entries are not
        needed).
        """
        shard = self.shards[sid]
        frontier = self._frontier_of(sid)
        frontier.clear()
        crash_epoch = shard.crash_epoch
        if crash_epoch is None:
            return 0.0
        io_total = 0.0
        for epoch_id in range(crash_epoch + 1):
            if shard.disk.logs.has_epoch(FRONTIER_STREAM, epoch_id):
                payload, io_s = shard.disk.logs.read_epoch(
                    FRONTIER_STREAM, epoch_id
                )
                frontier.load_epoch(payload)
                io_total += io_s
        return io_total

    def _aggregate_makespan(
        self, records: Sequence[ShardRecoveryRecord], num_nodes: int
    ) -> float:
        """Pack the dead shards' recoveries onto the surviving nodes.

        Each surviving node is one multicore box that can host one shard
        recovery at a time; LPT assignment + the resilient executor give
        the cluster-level recovery wall-clock.
        """
        if not records:
            return 0.0
        weights = [r.mttr_seconds for r in records]
        assignment, _loads = lpt_assign(weights, num_nodes)
        machine = Machine(num_nodes)
        executor = ResilientExecutor(
            machine, self.costs.sync_handoff, self.costs.remote_fetch
        )
        tasks = [
            SimTask(
                uid=i,
                worker=assignment[i],
                cost=weights[i],
                deps=(),
                bucket=buckets.EXECUTE,
                group=i,
            )
            for i in range(len(records))
        ]
        executor.run(tasks)
        return machine.elapsed()

    def _complete_interrupted_epoch(self) -> None:
        """Finish a cluster epoch a mid-flight shard crash interrupted."""
        for sid in range(self.topology.num_shards):
            self._run_shard_epoch(sid, self._inflight_routes.get(sid, []))
        self._finish_epoch()

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def merged_store(self) -> StateStore:
        """Union of all shard slices — comparable to a global store."""
        merged: Dict[str, Dict] = {}
        for shard in self.shards:
            if shard.store is None:
                raise RecoveryError(
                    "cannot merge stores while a shard is crashed"
                )
            for table, records in shard.store.snapshot().items():
                merged.setdefault(table, {}).update(records)
        return StateStore(merged)

    def verify_exact(self) -> bool:
        """Bit-exact equivalence with the serial single-instance run."""
        # Imported here: repro.harness pulls in the chaos layer, which
        # itself imports this package (sweep cells build clusters).
        from repro.harness.runner import ground_truth

        expected_state, expected_outputs = ground_truth(
            self.workload, self._processed_events
        )
        return (
            self.merged_store().equals(expected_state)
            and self.sink.outputs() == expected_outputs
        )
