"""Replica-placement strategies for shard durability.

Su & Zhou's correlated-failure analysis (PAPERS.md) shows that *where*
replicas land relative to failure domains decides whether a k-correlated
kill loses data: f replicas inside one rack survive any f process
crashes but zero rack losses.  Both strategies here therefore spread
replicas rack-first — the difference is *what* is replicated and hence
the RTO/RPO trade-off (Vogel et al.):

* ``checkpoint_spread`` ships every checkpoint and log segment to f
  other nodes.  Recovery starts from the newest replicated checkpoint —
  short RTO, and RPO 0 because the tail log is replicated too.
* ``standby_replay`` ships only the log to a cold standby; there are no
  running checkpoints to copy.  Recovery replays the dead shard's whole
  history from initial state — RPO 0 as well, but RTO grows linearly
  with the log length.  This is the classic low-overhead/slow-recovery
  end point the paper's Fig. 10 contrasts checkpointing against.

A shard *survives* a kill iff its primary node is alive (process-only
crash) or at least one replica node is alive.  With replication factor
below the correlation width of a kill, survival can fail — that is
detected and reported loudly as data loss, never papered over.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Tuple, Type

from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigError


class PlacementStrategy(ABC):
    """Where a shard's durable bytes live, and what recovery they allow."""

    name = "abstract"

    def replica_nodes(
        self, shard: int, topology: ClusterTopology, replication: int
    ) -> Tuple[int, ...]:
        """The f nodes holding copies of the shard's durable bytes.

        Rack-first spread: other racks before the primary's rack, nearer
        (cyclic node distance) before farther — so replication factor f
        tolerates f node losses and, while f < nodes_per_rack, each
        extra replica buys tolerance of one more *rack* loss.
        """
        primary = topology.node_of_shard(shard)
        primary_rack = topology.rack_of_node(primary)
        others = [n for n in range(topology.num_nodes) if n != primary]
        others.sort(
            key=lambda n: (
                topology.rack_of_node(n) == primary_rack,
                (n - primary) % topology.num_nodes,
            )
        )
        return tuple(others[:replication])

    def survives(
        self,
        shard: int,
        topology: ClusterTopology,
        replication: int,
        dead_nodes: Iterable[int],
    ) -> bool:
        """Can the shard be recovered after the given nodes died?"""
        dead = set(dead_nodes)
        primary = topology.node_of_shard(shard)
        if primary not in dead:
            return True
        return any(
            n not in dead
            for n in self.replica_nodes(shard, topology, replication)
        )

    @abstractmethod
    def shard_kwargs(self) -> Dict[str, object]:
        """Extra FTScheme kwargs the strategy imposes on every shard."""


class CheckpointSpread(PlacementStrategy):
    """Checkpoints + logs replicated to f other failure domains."""

    name = "checkpoint_spread"

    def shard_kwargs(self) -> Dict[str, object]:
        return {}


class StandbyReplay(PlacementStrategy):
    """Cold standby holding only the log; recovery replays from scratch.

    Disabling periodic checkpoints (a practically-infinite snapshot
    interval keeps only the initial epoch -1 snapshot) also disables log
    GC, so the standby always holds the full history needed for replay.
    """

    name = "standby_replay"

    #: Effectively "never checkpoint" — no run is this many epochs long.
    NO_CHECKPOINTS = 10**6

    def shard_kwargs(self) -> Dict[str, object]:
        return {"snapshot_interval": self.NO_CHECKPOINTS}


_STRATEGIES: Dict[str, Type[PlacementStrategy]] = {
    CheckpointSpread.name: CheckpointSpread,
    StandbyReplay.name: StandbyReplay,
}

PLACEMENT_NAMES: Tuple[str, ...] = tuple(sorted(_STRATEGIES))


def get_placement(name: str) -> PlacementStrategy:
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown placement {name!r}; choose from {PLACEMENT_NAMES}"
        ) from None
