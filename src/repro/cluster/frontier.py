"""Per-epoch cross-shard dependency frontier.

The single-instance MorphStreamR logs an AbortView and a ParametricView
so workers can recover independently (§V of the paper).  A sharded
cluster faces the same problem one level up: a transaction whose
operations span shards makes shard-local recovery depend on values
another shard produced.  The *dependency frontier* is the cluster
analog of those views — for every cross-shard transaction of an epoch
it pins

* the commit/abort verdict (abort view lifted to the cluster), and
* the exact value of every read a surviving operation performs
  (parametric view lifted to the cluster).

Each shard persists the slice of the frontier touching it as an extra
log stream (``"frontier"``), so shard recovery only ever consumes
durable local bytes — concurrent shard recoveries then converge to the
serial ground truth without any cross-shard RPC.

Frontier entries are keyed by ``(event seq, op index within the global
transaction)`` rather than operation uid: uids are assigned per run and
per localization, while seq/op-index are stable across both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.engine.refs import StateRef
from repro.errors import MissingSegmentError


@dataclass(frozen=True)
class FrontierEntry:
    """Pinned outcome of one cross-shard transaction."""

    seq: int
    home: int
    aborted: bool
    #: op index (position in the global transaction's ops) -> read values.
    reads: Dict[int, Tuple[float, ...]] = field(default_factory=dict)

    def encoded(self) -> list:
        return [
            self.seq,
            self.home,
            int(self.aborted),
            [[idx, list(vals)] for idx, vals in sorted(self.reads.items())],
        ]

    @staticmethod
    def decode(payload: list) -> "FrontierEntry":
        seq, home, aborted, reads = payload
        return FrontierEntry(
            seq=seq,
            home=home,
            aborted=bool(aborted),
            reads={idx: tuple(vals) for idx, vals in reads},
        )


class DependencyFrontier:
    """All frontier entries a shard has learned, keyed by event seq."""

    def __init__(self) -> None:
        self._entries: Dict[int, FrontierEntry] = {}

    def record(self, entry: FrontierEntry) -> None:
        self._entries[entry.seq] = entry

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def is_cross(self, seq: int) -> bool:
        return seq in self._entries

    def entry(self, seq: int) -> FrontierEntry:
        try:
            return self._entries[seq]
        except KeyError:
            raise MissingSegmentError(
                f"dependency frontier has no entry for event {seq}"
            ) from None

    def aborted(self, seq: int) -> bool:
        return self.entry(seq).aborted

    def reads_for(self, seq: int, op_index: int) -> Tuple[float, ...]:
        entry = self.entry(seq)
        try:
            return entry.reads[op_index]
        except KeyError:
            raise MissingSegmentError(
                f"frontier entry {seq} lacks reads for op {op_index}"
            ) from None

    def encode_epoch(self, seqs: List[int]) -> list:
        """Codec-friendly payload of the entries for the given seqs."""
        return [self._entries[s].encoded() for s in sorted(seqs)]

    def load_epoch(self, payload: list) -> None:
        for item in payload:
            self.record(FrontierEntry.decode(item))


class FederatedView:
    """Read-through view over every shard's live store, write-buffered.

    Used by the coordinator's frontier pass: it executes the epoch's
    global TPG against the union of shard states to learn exact read
    values and verdicts, without mutating any shard store (shards apply
    their own localized transactions afterwards).  Reads hit the write
    buffer first, then the owning shard's store.
    """

    def __init__(self, shard_of, stores) -> None:
        self._shard_of = shard_of
        self._stores = stores
        self._buffer: Dict[StateRef, float] = {}

    def get(self, ref: StateRef) -> float:
        if ref in self._buffer:
            return self._buffer[ref]
        return self._stores[self._shard_of(ref)].get(ref)

    def set(self, ref: StateRef, value: float) -> None:
        self._buffer[ref] = value
