"""Deterministic injection of correlated cluster failures.

A :class:`ClusterFaultPlan` schedules kills of whole failure domains at
cluster-epoch boundaries — the k-correlated regime of Su & Zhou, where
one event (rack power, ToR switch) takes out every shard in the domain
simultaneously.  The plan composes with the existing single-instance
fault machinery: per-shard storage :class:`FaultSpec` lists become the
shard disk's :class:`FaultInjector`, and per-shard
:class:`~repro.sim.executor.WorkerFault` lists feed the shard's
``recovery_faults`` — so node kills, torn shard segments and recovery
worker deaths can all be exercised in one deterministic run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterTopology, KillTarget, parse_kill
from repro.errors import ConfigError
from repro.sim.executor import WorkerFault
from repro.storage.faults import FaultInjector, FaultSpec


@dataclass(frozen=True)
class ClusterFault:
    """Kill one failure domain after the cluster finishes an epoch.

    ``after_epoch`` counts *completed* cluster epochs and must be >= 1:
    a shard that never processed an epoch has nothing to recover (and
    the per-shard schemes reject crashing at epoch 0).
    """

    target: str
    after_epoch: int = 1

    def __post_init__(self) -> None:
        parse_kill(self.target)  # syntax check; range check needs a topology
        if self.after_epoch < 1:
            raise ConfigError("after_epoch must be >= 1")

    def parsed(self) -> KillTarget:
        return parse_kill(self.target)


@dataclass
class ClusterFaultPlan:
    """Everything that goes wrong during one cluster run."""

    kills: Sequence[ClusterFault] = ()
    #: shard id -> storage fault specs for that shard's disk.
    storage_faults: Dict[int, Sequence[FaultSpec]] = field(default_factory=dict)
    #: shard id -> worker faults injected into that shard's recovery.
    recovery_faults: Dict[int, Sequence[WorkerFault]] = field(default_factory=dict)
    seed: int = 0

    def validate(self, topology: ClusterTopology) -> None:
        for kill in self.kills:
            topology.validate(kill.parsed())
        for shard in list(self.storage_faults) + list(self.recovery_faults):
            if not 0 <= shard < topology.num_shards:
                raise ConfigError(f"fault plan names unknown shard {shard}")

    def kills_after(self, epoch: int) -> List[KillTarget]:
        """Targets destroyed once cluster epoch ``epoch`` has completed."""
        return [
            k.parsed() for k in self.kills if k.after_epoch == epoch + 1
        ]

    def first_kill_epoch(self) -> Optional[int]:
        if not self.kills:
            return None
        return min(k.after_epoch for k in self.kills)

    def correlation_width(self, topology: ClusterTopology) -> int:
        """Distinct nodes whose storage the plan's kills destroy.

        This is the width the "no data loss while correlation width ≤
        replication" invariant compares against the replication factor.
        A shard-process kill contributes no node (its durable storage
        survives, width 0), and overlapping kills (a rack plus one of
        its nodes) count each node once.
        """
        nodes = set()
        for kill in self.kills:
            target = kill.parsed()
            topology.validate(target)
            nodes.update(topology.nodes_killed(target))
        return len(nodes)

    def injector_for(self, shard: int) -> Optional[FaultInjector]:
        specs = self.storage_faults.get(shard)
        if not specs:
            return None
        return FaultInjector(list(specs), seed=self.seed * 1000 + shard)

    def recovery_faults_for(self, shard: int) -> Tuple[WorkerFault, ...]:
        return tuple(self.recovery_faults.get(shard, ()))
