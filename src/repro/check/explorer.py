"""Budgeted systematic exploration of the fault-schedule space.

The explorer enumerates schedules breadth-first — per-scheme baselines
first (they anchor worker-fault timing and establish crash-point
coverage on the healthy path), then every single-atom schedule, then
atom pairs with cross-family pairs prioritized (a storage fault *plus*
a crash mid-recovery is where protocols break, not two variants of the
same fault).  Order within a tier is shuffled by the frontier seed so
different seeds explore different prefixes of the same space under a
tight budget, while one seed is always fully deterministic.

Every run is checked against the invariant registry.  A violation is
delta-debugged to a 1-minimal schedule (:mod:`repro.check.shrink`) and
packaged as a self-contained repro payload (``repro.check/v1``) that
``repro check --replay`` re-executes deterministically.  Coverage
accounting aggregates crash-point passes across all runs and — by
default — fails the exploration when a registered recovery-domain
point never fired: an unreachable crash point means a recovery
milestone the test surface silently stopped exercising.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.check.invariants import check_observation, get_invariant
from repro.check.runner import (
    CheckConfig,
    RunObservation,
    run_schedule,
)
from repro.check.schedule import (
    CLUSTER_SCHEME,
    FaultAtom,
    Schedule,
    cluster_atoms,
    expand,
    schedule_fingerprint,
    single_scheme_atoms,
)
from repro.crashpoints import DOMAIN_RECOVERY, registered_points
from repro.errors import ConfigError

#: Schema tag of counterexample repro files.
REPRO_SCHEMA = "repro.check/v1"
#: Schema tag of the ``repro check --json`` report.
REPORT_SCHEMA = "repro.check.report/v1"

#: Counterexamples shrunk and reported per exploration; further
#: violations of an already-reported (invariant, scheme) pair are
#: recorded as runs but not shrunk again.
MAX_COUNTEREXAMPLES = 8


@dataclass
class Counterexample:
    """One invariant violation, minimized and ready to replay."""

    invariant: str
    detail: str
    #: schedule the frontier found the violation with.
    found_with: Schedule
    #: 1-minimal schedule still violating the invariant.
    minimal: Schedule
    fingerprint: str
    frontier_seed: int
    shrink_runs: int
    observation: RunObservation


@dataclass
class CheckReport:
    """What one exploration ran, found, and covered."""

    config: CheckConfig
    #: per-schedule summaries in execution order.
    runs: List[Dict[str, object]] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: crash-point name -> passes observed across every run.
    coverage: Dict[str, int] = field(default_factory=dict)
    #: recovery-domain points the exploration was required to fire.
    required_points: Tuple[str, ...] = ()
    budget_spent: int = 0
    shrink_runs: int = 0
    #: schedules the budget did not reach.
    frontier_unexplored: int = 0

    @property
    def uncovered_points(self) -> List[str]:
        return [p for p in self.required_points if not self.coverage.get(p)]

    @property
    def coverage_ok(self) -> bool:
        return not self.uncovered_points

    @property
    def passed(self) -> bool:
        if self.counterexamples:
            return False
        if self.config.require_coverage and not self.coverage_ok:
            return False
        return True


def _required_points(cfg: CheckConfig) -> Tuple[str, ...]:
    names = []
    for point in registered_points(domain=DOMAIN_RECOVERY):
        if point.schemes and not set(point.schemes) & set(cfg.schemes):
            continue
        names.append(point.name)
    return tuple(names)


def build_frontier(cfg: CheckConfig) -> List[Schedule]:
    """The deterministic exploration order for one config."""
    rng = random.Random(cfg.seed)
    baselines = [Schedule(scheme, ()) for scheme in cfg.schemes]
    depth1: List[Schedule] = []
    vocab: Dict[str, List[FaultAtom]] = {}
    for scheme in cfg.schemes:
        vocab[scheme] = single_scheme_atoms(scheme)
        depth1.extend(Schedule(scheme, (a,)) for a in vocab[scheme])
    if cfg.include_cluster:
        vocab[CLUSTER_SCHEME] = cluster_atoms()
        depth1.extend(
            Schedule(CLUSTER_SCHEME, (a,)) for a in vocab[CLUSTER_SCHEME]
        )
    rng.shuffle(depth1)
    frontier = baselines + depth1
    if cfg.max_depth >= 2:
        seen = set(frontier)
        pairs: List[Schedule] = []
        for single in sorted(depth1, key=lambda s: s.label):
            for extended in expand(single, vocab[single.scheme]):
                if extended not in seen:
                    seen.add(extended)
                    pairs.append(extended)
        # Cross-family pairs first: a fault *and* a crash in its
        # recovery is the classic protocol-breaking combination.
        rng.shuffle(pairs)
        pairs.sort(key=lambda s: 0 if len({a.family for a in s.atoms}) > 1 else 1)
        frontier += pairs
    return frontier


def _run_summary(
    schedule: Schedule, obs: RunObservation, violations
) -> Dict[str, object]:
    return {
        "schedule": schedule.label,
        "outcome": obs.outcome,
        "detail": obs.detail,
        "violations": [v.invariant for v in violations],
    }


def explore(cfg: Optional[CheckConfig] = None) -> CheckReport:
    """Run one budgeted exploration. Deterministic for a given config."""
    cfg = cfg or CheckConfig()
    report = CheckReport(config=cfg, required_points=_required_points(cfg))
    frontier = build_frontier(cfg)
    shrunk_keys = set()
    for index, schedule in enumerate(frontier):
        if report.budget_spent >= cfg.budget:
            report.frontier_unexplored = len(frontier) - index
            break
        obs = run_schedule(schedule, cfg)
        report.budget_spent += 1
        for point, count in obs.points_passed.items():
            report.coverage[point] = report.coverage.get(point, 0) + count
        violations = check_observation(obs)
        report.runs.append(_run_summary(schedule, obs, violations))
        for violation in violations:
            key = (violation.invariant, schedule.scheme)
            if key in shrunk_keys:
                continue
            if len(report.counterexamples) >= MAX_COUNTEREXAMPLES:
                continue
            shrunk_keys.add(key)
            minimal, min_obs, runs = _shrink(schedule, cfg, violation.invariant)
            min_violations = check_observation(min_obs)
            detail = next(
                (
                    v.detail
                    for v in min_violations
                    if v.invariant == violation.invariant
                ),
                violation.detail,
            )
            report.shrink_runs += runs
            report.counterexamples.append(
                Counterexample(
                    invariant=violation.invariant,
                    detail=detail,
                    found_with=schedule,
                    minimal=minimal,
                    fingerprint=schedule_fingerprint(
                        minimal, cfg.scenario_payload()
                    ),
                    frontier_seed=cfg.seed,
                    shrink_runs=runs,
                    observation=min_obs,
                )
            )
    return report


def _shrink(schedule: Schedule, cfg: CheckConfig, invariant: str):
    from repro.check.shrink import shrink_schedule

    return shrink_schedule(schedule, cfg, invariant)


def repro_payload(ce: Counterexample, cfg: CheckConfig) -> Dict[str, object]:
    """Self-contained replayable counterexample document."""
    return {
        "schema": REPRO_SCHEMA,
        "invariant": ce.invariant,
        "detail": ce.detail,
        "fingerprint": ce.fingerprint,
        "frontier_seed": ce.frontier_seed,
        "scenario": cfg.scenario_payload(),
        "schedule": ce.minimal.to_payload(),
        "found_with": ce.found_with.to_payload(),
        "shrink_runs": ce.shrink_runs,
        "observed": {
            "outcome": ce.observation.outcome,
            "detail": ce.observation.detail,
        },
    }


def load_repro_payload(payload: object) -> Dict[str, object]:
    """Validate a repro document; tolerate unknown fields.

    Unknown top-level keys are ignored (same forward-compatibility
    stance as the soak trajectory loader), but the schema tag must
    match and the schedule must parse.
    """
    if not isinstance(payload, dict):
        raise ConfigError("repro payload must be a JSON object")
    schema = payload.get("schema")
    if schema != REPRO_SCHEMA:
        raise ConfigError(
            f"unsupported repro schema {schema!r} (expected {REPRO_SCHEMA})"
        )
    try:
        schedule = Schedule.from_payload(payload["schedule"])
        invariant = str(payload["invariant"])
    except KeyError as exc:
        raise ConfigError(f"repro payload missing field: {exc}")
    get_invariant(invariant)
    scenario = payload.get("scenario", {})
    if not isinstance(scenario, dict):
        raise ConfigError("repro payload scenario must be an object")
    return {
        "schedule": schedule,
        "invariant": invariant,
        "scenario": scenario,
        "fingerprint": str(payload.get("fingerprint", "")),
        "frontier_seed": payload.get("frontier_seed"),
    }


def config_for_replay(schedule: Schedule, scenario: Dict[str, object]) -> CheckConfig:
    """Rebuild the scenario a repro file was recorded under.

    Scenario keys that CheckConfig does not know are dropped — a repro
    recorded by a newer version still replays on the knobs both sides
    understand.
    """
    known = {f.name for f in fields(CheckConfig)}
    kwargs = {k: v for k, v in scenario.items() if k in known}
    if schedule.scheme != CLUSTER_SCHEME:
        kwargs["schemes"] = (schedule.scheme,)
    return CheckConfig(**kwargs)


def replay_repro(payload: object) -> Dict[str, object]:
    """Re-run a repro file's minimal schedule; report whether it still fails."""
    loaded = load_repro_payload(payload)
    schedule: Schedule = loaded["schedule"]
    cfg = config_for_replay(schedule, loaded["scenario"])
    obs = run_schedule(schedule, cfg)
    violations = check_observation(obs)
    hit = next(
        (v for v in violations if v.invariant == loaded["invariant"]), None
    )
    return {
        "reproduced": hit is not None,
        "invariant": loaded["invariant"],
        "fingerprint": loaded["fingerprint"]
        or schedule_fingerprint(schedule, cfg.scenario_payload()),
        "frontier_seed": loaded["frontier_seed"],
        "schedule": schedule.label,
        "outcome": obs.outcome,
        "detail": hit.detail if hit else obs.detail,
        "other_violations": [
            v.invariant for v in violations if v.invariant != loaded["invariant"]
        ],
    }


def report_payload(report: CheckReport) -> Dict[str, object]:
    """The JSON document ``repro check --json`` exports."""
    from dataclasses import asdict

    return {
        "schema": REPORT_SCHEMA,
        "config": asdict(report.config),
        "passed": report.passed,
        "budget_spent": report.budget_spent,
        "shrink_runs": report.shrink_runs,
        "frontier_unexplored": report.frontier_unexplored,
        "coverage": dict(report.coverage),
        "required_points": list(report.required_points),
        "uncovered_points": report.uncovered_points,
        "coverage_ok": report.coverage_ok,
        "counterexamples": [
            {
                "invariant": ce.invariant,
                "detail": ce.detail,
                "fingerprint": ce.fingerprint,
                "frontier_seed": ce.frontier_seed,
                "found_with": ce.found_with.label,
                "minimal": ce.minimal.label,
                "minimal_atoms": len(ce.minimal.atoms),
                "shrink_runs": ce.shrink_runs,
            }
            for ce in report.counterexamples
        ],
        "runs": list(report.runs),
    }
