"""Counterexample shrinking: delta-debug a schedule to a minimal fault set.

A violating schedule found at depth 2 may owe the violation to only one
of its atoms.  The shrinker greedily removes one atom at a time and
re-runs the schedule, keeping any removal after which the *same
invariant* still fails — the classic ddmin move, which terminates
because every accepted step strictly shrinks the schedule.  The result
is 1-minimal: removing any single remaining atom makes the violation
disappear, which is exactly the property that makes a repro file worth
reading.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.check.runner import CheckConfig, RunObservation, run_schedule
from repro.check.schedule import Schedule


def violates(
    schedule: Schedule, cfg: CheckConfig, invariant: str
) -> Tuple[bool, RunObservation]:
    """Re-run a schedule and ask whether the named invariant still fails."""
    from repro.check.invariants import check_observation

    obs = run_schedule(schedule, cfg)
    hit = any(v.invariant == invariant for v in check_observation(obs))
    return hit, obs


def shrink_schedule(
    schedule: Schedule,
    cfg: CheckConfig,
    invariant: str,
    on_step: Callable[[Schedule, bool], None] = lambda s, kept: None,
) -> Tuple[Schedule, RunObservation, int]:
    """1-minimal schedule still violating ``invariant``.

    Returns ``(minimal_schedule, its_observation, runs_spent)``.  The
    input schedule is assumed to violate already (the explorer only
    shrinks confirmed counterexamples), so the observation returned is
    always a violating one.
    """
    _, best_obs = violates(schedule, cfg, invariant)
    runs = 1
    current = schedule
    changed = True
    while changed and current.atoms:
        changed = False
        for atom in current.atoms:
            candidate = current.without(atom)
            hit, obs = violates(candidate, cfg, invariant)
            runs += 1
            on_step(candidate, hit)
            if hit:
                current = candidate
                best_obs = obs
                changed = True
                break
    return current, best_obs, runs
