"""Systematic fault-schedule exploration with invariant checking.

A FoundationDB/Jepsen-style deterministic model checker for the
recovery stack: :mod:`repro.check.schedule` defines the fault-atom
vocabulary (storage damage, mid-epoch crashes, recovery worker faults,
crashes at registered ``recovery.*`` milestones, correlated cluster
kills) and composes them into schedules; :mod:`repro.check.runner`
executes one schedule on the virtual-time simulator and records a
structured observation; :mod:`repro.check.invariants` checks every
observation against the declarative invariant registry;
:mod:`repro.check.explorer` enumerates schedules breadth-first under a
run budget with crash-point coverage accounting; and
:mod:`repro.check.shrink` delta-debugs a violating schedule down to a
minimal failing fault set, exported as a self-contained repro file
that ``repro check --replay`` re-triggers deterministically.

Keep this ``__init__`` import-light: :mod:`repro.check.mutations` is
imported lazily from :mod:`repro.ft.base`, and pulling the explorer in
here would cycle through the scheme layer.
"""

__all__ = [
    "explorer",
    "invariants",
    "mutations",
    "runner",
    "schedule",
    "shrink",
]
