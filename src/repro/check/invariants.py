"""The declarative invariant registry the explorer checks every run against.

Each invariant is a named predicate over one :class:`RunObservation`.
They encode the recovery contracts the rest of the repo promises
piecemeal — here they are stated once, checked against *every* explored
fault schedule, and referenced by name in counterexample repro files:

- ``recovered-state-exact`` — a run that claims recovery holds state
  bit-identical to the serial ground truth.
- ``exactly-once-outputs`` — delivered outputs match the ground truth
  exactly once (no loss, no duplication).
- ``no-undocumented-failure`` — every run ends in a documented state:
  recovered, or loudly failed with nothing installed.  Undocumented
  exceptions and non-convergent recovery are violations.
- ``watermark-monotonic`` — durable progress watermarks for one crash
  never move backwards across recovery attempts.
- ``degraded-staleness-bounded`` — a stale read's value matches the
  ground truth at the checkpoint it claims to be served from, and the
  staleness label equals the actual lag.
- ``ladder-monotonic`` — after k checkpoint fallbacks, recovery reports
  the (k+1)-th newest candidate — it never skips a rung silently.
- ``no-silent-data-loss`` — the cluster reports data loss only when the
  correlated kill was genuinely wider than the replication budget, and
  a recovered cluster matches the serial run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.check.runner import (
    OUTCOME_FAILED_LOUD,
    OUTCOME_RECOVERED,
    RunObservation,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class Violation:
    """One invariant broken by one observed run."""

    invariant: str
    detail: str


@dataclass(frozen=True)
class Invariant:
    name: str
    description: str
    #: returns a human-readable detail string on violation, else None.
    check: Callable[[RunObservation], Optional[str]]


def _check_state_exact(obs: RunObservation) -> Optional[str]:
    if obs.outcome != OUTCOME_RECOVERED:
        return None
    if obs.schedule.scheme == "CLUSTER":
        if obs.cluster_exact is False:
            return "recovered cluster state diverges from the serial run"
        return None
    if obs.state_exact is False:
        return obs.detail or "recovered state diverges from ground truth"
    return None


def _check_outputs_exact(obs: RunObservation) -> Optional[str]:
    if obs.outcome != OUTCOME_RECOVERED:
        return None
    if obs.outputs_exact is False:
        return obs.detail or "outputs violate exactly-once delivery"
    return None


def _check_documented_failure(obs: RunObservation) -> Optional[str]:
    if obs.outcome == OUTCOME_RECOVERED:
        return None
    if obs.outcome == OUTCOME_FAILED_LOUD:
        if obs.installed_after_failure:
            return "loud failure left recovered state installed"
        return None
    return f"{obs.outcome}: {obs.detail}"


def _check_watermark_monotonic(obs: RunObservation) -> Optional[str]:
    if obs.watermark_degradations:
        # A torn watermark slot legitimately resets resume progress;
        # the runner records the reset, so skip the monotonicity claim.
        return None
    last_by_crash: Dict[object, int] = {}
    for crash_epoch, next_epoch in obs.watermarks:
        if not isinstance(next_epoch, int):
            continue
        prev = last_by_crash.get(crash_epoch)
        if prev is not None and next_epoch < prev:
            return (
                f"watermark for crash epoch {crash_epoch} moved "
                f"backwards: {prev} -> {next_epoch}"
            )
        last_by_crash[crash_epoch] = next_epoch
    return None


def _check_degraded_staleness(obs: RunObservation) -> Optional[str]:
    probe = obs.degraded_probe
    if not probe or "error" in probe:
        # No probe taken, or the read failed loudly (its own documented
        # outcome — e.g. every checkpoint unreadable).
        return None
    if not probe.get("stale"):
        return "degraded read not labelled stale"
    checkpoint_epoch = probe["checkpoint_epoch"]
    crash_epoch = probe["crash_epoch"]
    if probe["staleness_epochs"] != crash_epoch - checkpoint_epoch:
        return (
            f"staleness label {probe['staleness_epochs']} != actual lag "
            f"{crash_epoch} - {checkpoint_epoch}"
        )
    if probe["value"] != probe["expected"]:
        return (
            f"stale value {probe['value']} is not the ground truth "
            f"{probe['expected']} at checkpoint {checkpoint_epoch}"
        )
    return None


def _check_ladder_monotonic(obs: RunObservation) -> Optional[str]:
    if obs.outcome != OUTCOME_RECOVERED or obs.checkpoint_epoch is None:
        return None
    candidates = obs.snapshot_candidates
    k = obs.checkpoint_fallbacks
    if not candidates or k >= len(candidates):
        return None
    if obs.checkpoint_epoch != candidates[k]:
        return (
            f"after {k} fallback(s) over candidates {candidates}, "
            f"recovery reported checkpoint {obs.checkpoint_epoch} "
            f"instead of {candidates[k]}"
        )
    return None


def _check_no_silent_data_loss(obs: RunObservation) -> Optional[str]:
    if obs.schedule.scheme != "CLUSTER":
        return None
    if obs.data_loss:
        width = obs.correlation_width or 0
        repl = obs.replication or 0
        if width <= repl:
            return (
                f"data loss reported for correlation width {width} "
                f"within replication budget {repl}"
            )
    return None


INVARIANTS = (
    Invariant(
        "recovered-state-exact",
        "recovered state is bit-identical to the serial ground truth",
        _check_state_exact,
    ),
    Invariant(
        "exactly-once-outputs",
        "delivered outputs match the ground truth exactly once",
        _check_outputs_exact,
    ),
    Invariant(
        "no-undocumented-failure",
        "every run ends recovered or loudly failed with nothing installed",
        _check_documented_failure,
    ),
    Invariant(
        "watermark-monotonic",
        "durable progress watermarks never move backwards within a crash",
        _check_watermark_monotonic,
    ),
    Invariant(
        "degraded-staleness-bounded",
        "stale reads match the ground truth at their labelled checkpoint",
        _check_degraded_staleness,
    ),
    Invariant(
        "ladder-monotonic",
        "checkpoint fallbacks walk the candidate ladder rung by rung",
        _check_ladder_monotonic,
    ),
    Invariant(
        "no-silent-data-loss",
        "data loss is reported iff the kill out-ran the replication budget",
        _check_no_silent_data_loss,
    ),
)

_BY_NAME = {inv.name: inv for inv in INVARIANTS}


def get_invariant(name: str) -> Invariant:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown invariant {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def check_observation(obs: RunObservation) -> List[Violation]:
    """All invariant violations in one observed run (usually empty)."""
    violations = []
    for inv in INVARIANTS:
        detail = inv.check(obs)
        if detail is not None:
            violations.append(Violation(invariant=inv.name, detail=detail))
    return violations
