"""Execute one fault schedule and record a structured observation.

The runner is deliberately a thin composition of pieces the repo
already trusts: the chaos harness's workload and fault placement
(:mod:`repro.harness.chaos`), the virtual-time simulator underneath
every scheme, and the sharded-cluster harness for kill schedules.  It
never judges the outcome — it only *observes* (recovered state vs
ground truth, watermark history, ladder rungs taken, crash points
crossed, degraded-read answers) and leaves the judging to
:mod:`repro.check.invariants`.  Everything is seeded, so the same
(schedule, config) pair always yields the same observation — the
property replay and shrinking depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import SCHEMES
from repro.check.schedule import (
    CLUSTER_SCHEME,
    FAMILY_CRASH,
    FAMILY_KILL,
    FAMILY_RPOINT,
    FAMILY_STORAGE,
    FAMILY_WORKER,
    Schedule,
)
from repro.cluster import (
    ClusterFault,
    ClusterFaultPlan,
    ClusterTopology,
    ShardedCluster,
)
from repro.engine.refs import StateRef
from repro.errors import (
    ClusterDataLossError,
    ConfigError,
    InjectedCrash,
    ReassignmentError,
    ReproError,
    StorageError,
)
from repro.harness.chaos import (
    make_workload,
    placed_fault_specs,
    worker_fault_plan,
)
from repro.harness.runner import ground_truth
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stores import Disk
from repro.workloads.streaming_ledger import ACCOUNTS

#: Outcomes an observed run may end in.
OUTCOME_RECOVERED = "recovered"
OUTCOME_FAILED_LOUD = "failed-loud"
OUTCOME_NO_CONVERGE = "no-converge"
OUTCOME_UNEXPECTED = "unexpected-error"


@dataclass(frozen=True)
class CheckConfig:
    """One exploration: vocabulary scope, scenario knobs, run budget."""

    schemes: Tuple[str, ...] = ("MSR", "WAL", "PACMAN", "LVC", "CKPT")
    include_cluster: bool = True
    #: largest number of fault atoms combined in one schedule.
    max_depth: int = 2
    #: schedule executions the frontier may spend (baselines excluded).
    budget: int = 96
    #: orders the frontier among equal priorities; echoed on failures.
    seed: int = 7
    num_workers: int = 4
    epoch_len: int = 32
    snapshot_interval: int = 4
    total_epochs: int = 6
    gc_keep_checkpoints: int = 2
    max_recovery_attempts: int = 8
    cluster_shards: int = 4
    cluster_racks: int = 2
    cluster_nodes_per_rack: int = 2
    cluster_replication: int = 1
    cluster_placement: str = "checkpoint_spread"
    #: fail the exploration when a registered recovery-domain crash
    #: point never fired across the whole run.
    require_coverage: bool = True

    def __post_init__(self) -> None:
        unknown = set(self.schemes) - set(SCHEMES)
        if unknown:
            raise ConfigError(f"unknown schemes: {sorted(unknown)}")
        if self.max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if self.budget < 1:
            raise ConfigError("budget must be >= 1")
        if self.total_epochs <= self.snapshot_interval:
            raise ConfigError(
                "total_epochs must exceed snapshot_interval so crashes "
                "lose epochs past the checkpoint"
            )

    @property
    def num_events(self) -> int:
        return self.epoch_len * self.total_epochs

    def scenario_payload(self) -> Dict[str, object]:
        """The knobs that shape a run — fingerprinted with the schedule."""
        return {
            "seed": self.seed,
            "num_workers": self.num_workers,
            "epoch_len": self.epoch_len,
            "snapshot_interval": self.snapshot_interval,
            "total_epochs": self.total_epochs,
            "gc_keep_checkpoints": self.gc_keep_checkpoints,
            "max_recovery_attempts": self.max_recovery_attempts,
            "cluster_shards": self.cluster_shards,
            "cluster_racks": self.cluster_racks,
            "cluster_nodes_per_rack": self.cluster_nodes_per_rack,
            "cluster_replication": self.cluster_replication,
            "cluster_placement": self.cluster_placement,
        }


@dataclass
class RunObservation:
    """Everything the invariant registry judges about one run."""

    schedule: Schedule
    outcome: str = OUTCOME_UNEXPECTED
    detail: str = ""
    #: recovered state is bit-identical to the serial ground truth.
    state_exact: Optional[bool] = None
    #: delivered outputs match the ground truth exactly once.
    outputs_exact: Optional[bool] = None
    #: checkpoint epochs the ladder walked, newest first (empty when
    #: the final attempt resumed past the ladder).
    snapshot_candidates: List[int] = field(default_factory=list)
    checkpoint_epoch: Optional[int] = None
    checkpoint_fallbacks: int = 0
    ladder: Dict[str, int] = field(default_factory=dict)
    #: durable (crash_epoch, next_epoch) watermark writes, in order.
    watermarks: List[Tuple[Optional[int], Optional[int]]] = field(
        default_factory=list
    )
    #: watermark slots found damaged and discarded (legitimate resets).
    watermark_degradations: int = 0
    #: degraded-read probe taken while crashed, or None if not probed.
    degraded_probe: Optional[Dict[str, object]] = None
    #: a loud failure left recovered state installed (it must not).
    installed_after_failure: bool = False
    #: crash-point name -> times crossed (armed or not).
    points_passed: Dict[str, int] = field(default_factory=dict)
    attempts: int = 0
    resumed: bool = False
    #: virtual recovery seconds, all attempts summed.
    mttr_seconds: float = 0.0
    events_processed: int = 0
    #: cluster-only observations.
    correlation_width: Optional[int] = None
    replication: Optional[int] = None
    data_loss: bool = False
    lost_shards: Tuple[int, ...] = ()
    cluster_exact: Optional[bool] = None


#: Failure-free recovery MTTR per (scheme, config) — anchors worker
#: fault timing, exactly as the chaos sweep anchors its worker cells.
_BASELINE_MTTR: Dict[Tuple[str, CheckConfig], float] = {}


def baseline_mttr(scheme_name: str, cfg: CheckConfig) -> float:
    key = (scheme_name, cfg)
    if key not in _BASELINE_MTTR:
        obs = run_schedule(Schedule(scheme_name, ()), cfg)
        _BASELINE_MTTR[key] = obs.mttr_seconds
    return _BASELINE_MTTR[key]


def _schedule_specs(
    schedule: Schedule, cfg: CheckConfig, stream: Optional[str]
) -> List[FaultSpec]:
    crash_atoms = schedule.atoms_of(FAMILY_CRASH)
    storage_atoms = schedule.atoms_of(FAMILY_STORAGE)
    crash_point = crash_atoms[0].kind if crash_atoms else "boundary"
    fault_kind = storage_atoms[0].kind if storage_atoms else "none"
    specs = placed_fault_specs(
        fault_kind,
        crash_point,
        stream,
        snapshot_interval=cfg.snapshot_interval,
        total_epochs=cfg.total_epochs,
    )
    for atom in schedule.atoms_of(FAMILY_RPOINT):
        specs.append(
            FaultSpec("crash_point", target="any", nth=atom.nth, point=atom.kind)
        )
    return specs


def _probe_degraded(scheme, workload, events, cfg: CheckConfig) -> Dict[str, object]:
    """One stale read while the node is down, judged against the truth.

    The expected value is the serial ground truth at the *checkpoint*
    the read claims to be served from — if the label and the bytes
    disagree, the staleness contract is broken even though the value
    may look plausible.
    """
    ref = StateRef(ACCOUNTS, 0)
    try:
        dr = scheme.degraded_read(ref)
    except ReproError as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}
    prefix = events[: (dr.checkpoint_epoch + 1) * cfg.epoch_len]
    truth_state, _ = ground_truth(workload, prefix)
    return {
        "value": dr.value,
        "expected": truth_state.peek(ref),
        "checkpoint_epoch": dr.checkpoint_epoch,
        "staleness_epochs": dr.staleness_epochs,
        "crash_epoch": scheme._crash_epoch,
        "stale": dr.stale,
    }


def _run_scheme_schedule(schedule: Schedule, cfg: CheckConfig) -> RunObservation:
    workload = make_workload()
    events = workload.generate(cfg.num_events, cfg.seed)
    scheme_cls = SCHEMES[schedule.scheme]
    stream = scheme_cls.log_streams[0] if scheme_cls.log_streams else None
    injector = FaultInjector(_schedule_specs(schedule, cfg, stream), seed=cfg.seed)
    worker_atoms = schedule.atoms_of(FAMILY_WORKER)
    recovery_faults = ()
    if worker_atoms:
        recovery_faults = worker_fault_plan(
            worker_atoms[0].kind,
            baseline_mttr(schedule.scheme, cfg),
            cfg.num_workers,
        )
    scheme = scheme_cls(
        workload,
        num_workers=cfg.num_workers,
        epoch_len=cfg.epoch_len,
        snapshot_interval=cfg.snapshot_interval,
        disk=Disk(faults=injector),
        gc_keep_checkpoints=cfg.gc_keep_checkpoints,
        recovery_faults=recovery_faults,
    )
    obs = RunObservation(schedule=schedule)
    try:
        mid_crash = False
        try:
            scheme.process_stream(events)
        except InjectedCrash:
            mid_crash = True
        if not mid_crash:
            scheme.crash()
        if not any(a.kind == "read-error" for a in schedule.atoms_of(FAMILY_STORAGE)):
            # Probing consumes nth-counted snapshot *read* faults meant
            # for recovery, so skip the probe when one is scheduled —
            # write damage is persistent and probes through it fine.
            obs.degraded_probe = _probe_degraded(scheme, workload, events, cfg)
        report = None
        attempts = 0
        while report is None:
            attempts += 1
            try:
                report = scheme.recover()
            except InjectedCrash:
                if attempts >= cfg.max_recovery_attempts:
                    obs.outcome = OUTCOME_NO_CONVERGE
                    obs.detail = (
                        "recovery did not converge within "
                        f"{cfg.max_recovery_attempts} attempts"
                    )
                    obs.points_passed = injector.points_passed
                    return obs
            except (StorageError, ReassignmentError) as exc:
                obs.outcome = OUTCOME_FAILED_LOUD
                obs.detail = f"{type(exc).__name__}: {exc}"
                obs.installed_after_failure = scheme.store is not None
                obs.points_passed = injector.points_passed
                obs.watermarks = list(scheme.disk.progress.watermark_history)
                return obs
        obs.attempts = report.attempts
        obs.resumed = report.resumed
        obs.mttr_seconds = report.elapsed_total_seconds
        obs.snapshot_candidates = list(report.checkpoint_candidates)
        obs.checkpoint_epoch = report.checkpoint_epoch
        obs.checkpoint_fallbacks = report.checkpoint_fallbacks
        obs.ladder = dict(report.ladder)
        obs.watermark_degradations = report.watermark_degradations
        injector.disarm()
        scheme.process_stream([])
        obs.points_passed = injector.points_passed
        obs.watermarks = list(scheme.disk.progress.watermark_history)
        obs.events_processed = scheme._events_processed
        processed = events[: scheme._events_processed]
        expected_state, expected_outputs = ground_truth(workload, processed)
        obs.state_exact = scheme.store.equals(expected_state)
        obs.outputs_exact = scheme.sink.outputs() == expected_outputs
        obs.outcome = OUTCOME_RECOVERED
        if not obs.state_exact:
            obs.detail = "state diverges: " + scheme.store.diff(expected_state, 3)
        elif not obs.outputs_exact:
            obs.detail = "outputs diverge from exactly-once ground truth"
    except Exception as exc:  # noqa: BLE001 — the explorer must observe, not die
        obs.outcome = OUTCOME_UNEXPECTED
        obs.detail = f"{type(exc).__name__}: {exc}"
        obs.points_passed = injector.points_passed
    return obs


def _run_cluster_schedule(schedule: Schedule, cfg: CheckConfig) -> RunObservation:
    workload = make_workload()
    events = workload.generate(cfg.num_events, cfg.seed)
    kill_epoch = max(1, cfg.total_epochs // 2)
    topology = ClusterTopology(
        cfg.cluster_shards, cfg.cluster_racks, cfg.cluster_nodes_per_rack
    )
    plan = ClusterFaultPlan(
        kills=[
            ClusterFault(atom.kind, after_epoch=kill_epoch)
            for atom in schedule.atoms_of(FAMILY_KILL)
        ]
    )
    obs = RunObservation(schedule=schedule)
    obs.correlation_width = plan.correlation_width(topology)
    obs.replication = cfg.cluster_replication
    cluster = ShardedCluster(
        workload,
        topology,
        placement=cfg.cluster_placement,
        replication=cfg.cluster_replication,
        workers_per_shard=max(1, cfg.num_workers // 2),
        epoch_len=cfg.epoch_len,
        snapshot_interval=cfg.snapshot_interval,
        gc_keep_checkpoints=cfg.gc_keep_checkpoints,
        fault_plan=plan,
    )
    try:
        cluster.process_stream(events)
        if not cluster.crashed:
            obs.outcome = OUTCOME_UNEXPECTED
            obs.detail = "scheduled kill never fired"
            return obs
        try:
            report = cluster.recover()
        except ClusterDataLossError as exc:
            obs.outcome = OUTCOME_FAILED_LOUD
            obs.data_loss = True
            obs.lost_shards = tuple(exc.lost_shards)
            obs.detail = (
                f"lost shards {list(exc.lost_shards)} ({exc.lost_events} events)"
            )
            return obs
        obs.attempts = max((r.attempts for r in report.per_shard), default=1)
        obs.resumed = any(r.resumed for r in report.per_shard)
        obs.mttr_seconds = report.rto_seconds
        cluster.process_stream([])
        obs.cluster_exact = cluster.verify_exact()
        obs.outcome = OUTCOME_RECOVERED
        if not obs.cluster_exact:
            obs.detail = (
                "recovered cluster state does not match the serial "
                "single-instance run"
            )
    except Exception as exc:  # noqa: BLE001 — the explorer must observe, not die
        obs.outcome = OUTCOME_UNEXPECTED
        obs.detail = f"{type(exc).__name__}: {exc}"
    return obs


def run_schedule(schedule: Schedule, cfg: CheckConfig) -> RunObservation:
    """Run one schedule to completion and observe it. Deterministic."""
    if schedule.scheme == CLUSTER_SCHEME:
        return _run_cluster_schedule(schedule, cfg)
    return _run_scheme_schedule(schedule, cfg)
