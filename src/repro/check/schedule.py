"""Fault-schedule vocabulary for the systematic explorer.

A :class:`Schedule` is an ordered set of :class:`FaultAtom` values, each
naming one fault from the vocabulary the rest of the repo already
speaks: storage damage (:mod:`repro.storage.faults`), mid-epoch crash
placements (the chaos harness's cells), recovery worker faults
(:class:`repro.sim.executor.WorkerFault`), crashes at registered
recovery milestones (:mod:`repro.crashpoints`), and correlated cluster
kills (:class:`repro.cluster.faultplan.ClusterFaultPlan`).  Schedules
are pure data — hashable, canonically ordered, JSON round-trippable —
so the explorer can enumerate, dedupe, shrink, and replay them
deterministically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crashpoints import DOMAIN_RECOVERY, registered_points, validate_point
from repro.errors import ConfigError

# Atom families.  One schedule combines at most a handful of atoms;
# the per-family constraints in validate_atoms() keep the enumeration
# space meaningful (two mid-commit crashes in one run is not a new
# scenario, it is the same scenario twice).
FAMILY_CRASH = "crash"
FAMILY_STORAGE = "storage"
FAMILY_WORKER = "worker"
FAMILY_RPOINT = "rpoint"
FAMILY_KILL = "kill"

#: kind vocabulary per family.
CRASH_KINDS = ("mid-commit", "mid-checkpoint")
STORAGE_KINDS = ("torn", "bitflip", "drop", "read-error")
WORKER_KINDS = ("die-early", "die-mid", "straggle")
KILL_KINDS = ("shard:0", "node:0.0", "node:1.0", "rack:0")

_FAMILY_KINDS = {
    FAMILY_CRASH: CRASH_KINDS,
    FAMILY_STORAGE: STORAGE_KINDS,
    FAMILY_WORKER: WORKER_KINDS,
    FAMILY_KILL: KILL_KINDS,
}

#: Scheme label used for cluster-level schedules, which run on the
#: sharded cluster harness instead of a single FTScheme.
CLUSTER_SCHEME = "CLUSTER"


@dataclass(frozen=True, order=True)
class FaultAtom:
    """One indivisible fault in a schedule.

    ``family`` picks the injection mechanism, ``kind`` the specific
    fault within it, and ``nth`` the occurrence index where that is
    meaningful (crashes at the nth pass of a recovery point, so
    ``nth=2`` exercises nested recovery-during-recovery).
    """

    family: str
    kind: str
    nth: int = 1

    def __post_init__(self):
        if self.family == FAMILY_RPOINT:
            validate_point(self.kind)
            if self.nth not in (1, 2):
                raise ConfigError(
                    f"rpoint atom nth must be 1 or 2, got {self.nth}"
                )
        elif self.family in _FAMILY_KINDS:
            if self.kind not in _FAMILY_KINDS[self.family]:
                raise ConfigError(
                    f"unknown {self.family} atom kind {self.kind!r}; "
                    f"known: {list(_FAMILY_KINDS[self.family])}"
                )
            if self.nth != 1:
                raise ConfigError(
                    f"{self.family} atoms do not take nth (got {self.nth})"
                )
        else:
            raise ConfigError(f"unknown fault-atom family {self.family!r}")

    @property
    def label(self) -> str:
        if self.family == FAMILY_RPOINT and self.nth != 1:
            return f"{self.family}:{self.kind}#{self.nth}"
        return f"{self.family}:{self.kind}"

    def to_payload(self) -> Dict[str, object]:
        return {"family": self.family, "kind": self.kind, "nth": self.nth}

    @classmethod
    def from_payload(cls, payload: object) -> "FaultAtom":
        if not isinstance(payload, dict):
            raise ConfigError(f"fault atom payload must be a dict, got {payload!r}")
        try:
            return cls(
                family=str(payload["family"]),
                kind=str(payload["kind"]),
                nth=int(payload.get("nth", 1)),
            )
        except KeyError as exc:
            raise ConfigError(f"fault atom payload missing field: {exc}")


def validate_atoms(atoms: Sequence[FaultAtom], scheme: str) -> None:
    """Reject schedules outside the explored vocabulary.

    Per-family caps keep the frontier meaningful; the cluster harness
    speaks only kill atoms and the single-scheme harness none.
    """
    seen = set()
    counts: Dict[str, int] = {}
    for atom in atoms:
        if atom in seen:
            raise ConfigError(f"duplicate fault atom {atom.label}")
        seen.add(atom)
        counts[atom.family] = counts.get(atom.family, 0) + 1
    if scheme == CLUSTER_SCHEME:
        bad = [a.label for a in atoms if a.family != FAMILY_KILL]
        if bad:
            raise ConfigError(f"cluster schedules take only kill atoms, got {bad}")
        if counts.get(FAMILY_KILL, 0) > 2:
            raise ConfigError("at most 2 kill atoms per cluster schedule")
        return
    if counts.get(FAMILY_KILL, 0):
        raise ConfigError(f"kill atoms require the {CLUSTER_SCHEME} scheme")
    for family, cap in (
        (FAMILY_CRASH, 1),
        (FAMILY_STORAGE, 1),
        (FAMILY_WORKER, 1),
        (FAMILY_RPOINT, 2),
    ):
        if counts.get(family, 0) > cap:
            raise ConfigError(f"at most {cap} {family} atom(s) per schedule")


@dataclass(frozen=True)
class Schedule:
    """A canonically-ordered fault set bound to one scheme under test."""

    scheme: str
    atoms: Tuple[FaultAtom, ...]

    def __post_init__(self):
        ordered = tuple(sorted(self.atoms))
        if ordered != self.atoms:
            object.__setattr__(self, "atoms", ordered)
        validate_atoms(self.atoms, self.scheme)

    @property
    def label(self) -> str:
        inner = "+".join(a.label for a in self.atoms) or "baseline"
        return f"{self.scheme}[{inner}]"

    def atoms_of(self, family: str) -> List[FaultAtom]:
        return [a for a in self.atoms if a.family == family]

    def without(self, atom: FaultAtom) -> "Schedule":
        return Schedule(self.scheme, tuple(a for a in self.atoms if a != atom))

    def to_payload(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "atoms": [a.to_payload() for a in self.atoms],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "Schedule":
        if not isinstance(payload, dict):
            raise ConfigError(f"schedule payload must be a dict, got {payload!r}")
        try:
            scheme = str(payload["scheme"])
            atoms_raw = payload["atoms"]
        except KeyError as exc:
            raise ConfigError(f"schedule payload missing field: {exc}")
        if not isinstance(atoms_raw, list):
            raise ConfigError("schedule payload atoms must be a list")
        return cls(scheme, tuple(FaultAtom.from_payload(a) for a in atoms_raw))


def schedule_fingerprint(schedule: Schedule, scenario: Dict[str, object]) -> str:
    """Short stable id for one (schedule, scenario-knobs) pair.

    Echoed on every failure so a CI log line alone is enough to rerun
    the exact scenario locally.
    """
    blob = json.dumps(
        {"schedule": schedule.to_payload(), "scenario": scenario},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def recovery_point_atoms(scheme: str) -> List[FaultAtom]:
    """rpoint atoms for every registered recovery-domain crash point.

    Driven by the central registry, so a newly registered recovery
    milestone is enumerated (and coverage-checked) with no explorer
    change.
    """
    atoms = []
    for point in registered_points(domain=DOMAIN_RECOVERY, scheme=scheme):
        for nth in (1, 2):
            atoms.append(FaultAtom(FAMILY_RPOINT, point.name, nth))
    return atoms


def single_scheme_atoms(scheme: str) -> List[FaultAtom]:
    """The depth-1 vocabulary for one FTScheme."""
    atoms: List[FaultAtom] = []
    atoms.extend(FaultAtom(FAMILY_CRASH, k) for k in CRASH_KINDS)
    atoms.extend(FaultAtom(FAMILY_STORAGE, k) for k in STORAGE_KINDS)
    atoms.extend(FaultAtom(FAMILY_WORKER, k) for k in WORKER_KINDS)
    atoms.extend(recovery_point_atoms(scheme))
    return atoms


def cluster_atoms() -> List[FaultAtom]:
    """The depth-1 vocabulary for the sharded cluster."""
    return [FaultAtom(FAMILY_KILL, k) for k in KILL_KINDS]


def expand(schedule: Schedule, vocabulary: Iterable[FaultAtom]) -> List[Schedule]:
    """All valid one-atom extensions of ``schedule``."""
    out = []
    for atom in vocabulary:
        if atom in schedule.atoms:
            continue
        try:
            out.append(Schedule(schedule.scheme, schedule.atoms + (atom,)))
        except ConfigError:
            continue
    return out
