"""Seeded known-bug mutations: the checker's own validation harness.

A model checker that has never caught a bug proves nothing.  Each
mutation here re-introduces one *specific, silent* recovery bug behind
the ``REPRO_CHECK_MUTATION`` environment flag; the test suite arms a
mutation, runs the explorer, and asserts it (a) finds an invariant
violation within the default budget, (b) shrinks the schedule to a
minimal fault set, and (c) re-triggers the violation from the emitted
repro file.  Production code paths consult :func:`mutation_enabled`,
which is false unless the flag names that exact mutation — so shipping
builds are unaffected.

This module must stay a leaf (stdlib-only imports besides
:mod:`repro.errors`): it is imported lazily from the scheme layer and
must never pull the explorer back in.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

#: Environment variable arming one mutation by name.
MUTATION_ENV = "REPRO_CHECK_MUTATION"

#: Known mutations and the bug each one re-introduces.
MUTATIONS = {
    "skip-ladder-rung": (
        "checkpoint ladder reports the newest candidate's epoch even "
        "after falling back to an older checkpoint, so replay starts "
        "too late and silently skips the epochs in between"
    ),
}


def active_mutation() -> Optional[str]:
    """The armed mutation name, or ``None``.

    An unknown name raises :class:`ConfigError` — a typo'd flag
    silently testing nothing would defeat the whole validation.
    """
    name = os.environ.get(MUTATION_ENV, "").strip()
    if not name:
        return None
    if name not in MUTATIONS:
        raise ConfigError(
            f"{MUTATION_ENV}={name!r} names no known mutation; "
            f"known: {sorted(MUTATIONS)}"
        )
    return name


def mutation_enabled(name: str) -> bool:
    """True when the environment arms exactly this mutation."""
    if name not in MUTATIONS:
        raise ConfigError(f"unknown mutation {name!r}")
    return active_mutation() == name
