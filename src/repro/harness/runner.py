"""Run one fault-tolerance experiment: runtime → crash → recovery.

The runner sizes the stream so the crash lands ``recover_epochs``
punctuation epochs after the last checkpoint (snapshots fire every
``snapshot_interval`` epochs, so ``recover_epochs`` must stay below
it), then verifies two things against the serial ground truth:

1. the recovered state equals the state an ideal serial executor
   reaches at the crash point (correctness guarantee, §II-C);
2. the output sink holds exactly one output per event, each equal to
   the ground-truth output (delivery guarantee, §II-C).

Verification failures raise :class:`~repro.errors.RecoveryError` —
an experiment must never silently report timings for a wrong recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.engine.events import Event
from repro.engine.execution import preprocess
from repro.engine.serial import execute_serial
from repro.engine.state import StateStore
from repro.errors import ConfigError, RecoveryError
from repro.ft.base import FTScheme, RecoveryReport, RuntimeReport
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.workloads.base import Workload


def ground_truth(
    workload: Workload, events: Sequence[Event]
) -> Tuple[StateStore, Dict[int, tuple]]:
    """Serial reference execution: final state and per-event outputs."""
    store = workload.initial_state()
    txns = preprocess(events, workload, 0)
    outcome = execute_serial(store, txns)
    outputs = {
        txn.event.seq: workload.output_for(
            txn, txn.txn_id not in outcome.aborted, outcome.op_values
        )
        for txn in txns
    }
    return store, outputs


@dataclass
class ExperimentConfig:
    """One (workload, scheme) crash-recovery experiment."""

    workload_factory: Callable[[], Workload]
    scheme: Type[FTScheme]
    num_workers: int = 8
    epoch_len: int = 512
    snapshot_interval: int = 5
    #: Epochs lost between the last checkpoint and the crash.
    recover_epochs: int = 4
    seed: int = 7
    costs: CostModel = DEFAULT_COSTS
    scheme_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.recover_epochs < self.snapshot_interval:
            raise ConfigError(
                "recover_epochs must be in [0, snapshot_interval) so the "
                "crash lands between checkpoints"
            )

    @property
    def total_epochs(self) -> int:
        return self.snapshot_interval + self.recover_epochs

    @property
    def num_events(self) -> int:
        return self.epoch_len * self.total_epochs


@dataclass
class ExperimentResult:
    """Reports plus verification verdicts of one experiment."""

    scheme: str
    runtime: RuntimeReport
    recovery: Optional[RecoveryReport]
    state_verified: bool
    outputs_verified: bool
    events_total: int


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute one experiment end to end and verify it.

    Schemes that cannot recover (NAT) run the runtime phase only and
    report ``recovery=None``.
    """
    workload = config.workload_factory()
    events = workload.generate(config.num_events, config.seed)
    scheme = config.scheme(
        workload,
        num_workers=config.num_workers,
        epoch_len=config.epoch_len,
        snapshot_interval=config.snapshot_interval,
        costs=config.costs,
        **config.scheme_kwargs,
    )
    runtime = scheme.process_stream(events)

    if not scheme.persists_events:
        return ExperimentResult(
            scheme=scheme.name,
            runtime=runtime,
            recovery=None,
            state_verified=True,
            outputs_verified=True,
            events_total=len(events),
        )

    # With an adaptive commitment controller the punctuation interval
    # may change mid-stream, leaving a pending tail; verify against
    # exactly the prefix that was processed into epochs.
    processed = runtime.events_processed
    expected_state, expected_outputs = ground_truth(
        workload, events[:processed]
    )
    scheme.crash()
    recovery = scheme.recover()

    state_ok = scheme.store.equals(expected_state)
    recovery.state_verified = state_ok
    if not state_ok:
        raise RecoveryError(
            f"{scheme.name}: recovered state diverges from ground truth: "
            f"{scheme.store.diff(expected_state, 5)}"
        )

    delivered = scheme.sink.outputs()
    outputs_ok = delivered == expected_outputs
    if not outputs_ok:
        missing = sorted(set(expected_outputs) - set(delivered))[:5]
        raise RecoveryError(
            f"{scheme.name}: delivered outputs diverge from ground truth "
            f"(first missing/extra seqs: {missing})"
        )

    return ExperimentResult(
        scheme=scheme.name,
        runtime=runtime,
        recovery=recovery,
        state_verified=state_ok,
        outputs_verified=outputs_ok,
        events_total=processed,
    )


def run_matrix(
    configs: Sequence[ExperimentConfig],
) -> List[ExperimentResult]:
    """Run a list of experiments (a figure's sweep) in order."""
    return [run_experiment(cfg) for cfg in configs]
