"""Chaos harness: storage-fault × crash-point × scheme sweeps.

Each cell of the sweep runs one full experiment under an adversarial
storage plan: a :class:`~repro.storage.faults.FaultInjector` damages a
durable segment (torn flush, bit flip, dropped flush, injected read
error) and/or kills the process *mid-epoch* (during group commit or
during checkpointing), then recovery runs and the harness verifies the
outcome against the serial ground truth.

Beyond the storage grid, two failure families target recovery's *own*
machinery:

- **worker-failure cells** kill or straggle one recovery worker while
  parallel replay is in flight; the resilient executor must re-assign
  the dead worker's chains to survivors and still restore the exact
  state (re-assignment rounds and wasted partial work are reported);
- **crash-during-recovery cells** kill the recovering process at a
  named ``recovery.*`` milestone (after checkpoint load, after an epoch
  replay, after a watermark flush, between chains, at finalize) — and,
  in the nested cell, twice in a row.  Each re-run of ``recover()``
  must resume from the durable progress watermark and converge on the
  same exact state, with the wasted re-execution quantified.

Every cell must end in one of two documented states:

- **exact** — recovered state and exactly-once outputs match the ground
  truth, possibly via the fallback ladder (``exact-degraded`` labels the
  runs where a lower rung was taken, with the rung counts reported);
- **failed-loud** — recovery raised a documented
  :class:`~repro.errors.StorageError` subclass (e.g. the checkpoint
  itself was unreadable and no older one existed).

Anything else — an undocumented exception, or worse, a *silently*
divergent recovery — fails the sweep.  ``repro chaos`` drives this from
the command line and exits non-zero on any such cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import SCHEMES
from repro.cluster import (
    PLACEMENT_NAMES,
    ClusterFault,
    ClusterFaultPlan,
    ClusterTopology,
    ShardedCluster,
    parse_kill,
)
from repro.errors import (
    ClusterDataLossError,
    ConfigError,
    InjectedCrash,
    ReassignmentError,
    StorageError,
)
from repro.ft.base import DEGRADABLE_ERRORS, FTScheme, RecoveryReport
from repro.harness.runner import ground_truth
from repro.sim.executor import WorkerFault
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stores import Disk
from repro.workloads.streaming_ledger import StreamingLedger

#: Where the injected crash lands relative to the epoch lifecycle.
CRASH_POINTS = ("boundary", "mid-commit", "mid-checkpoint")
#: Storage damage injected alongside the crash.
FAULT_KINDS = ("none", "torn", "bitflip", "drop", "read-error")
#: Worker-level failures injected into the parallel recovery itself.
WORKER_FAULTS = ("die-early", "die-mid", "straggle")
#: Milestones inside recovery the crash-during-recovery cells target.
RECOVERY_CRASH_POINTS = (
    "recovery.checkpoint-loaded",
    "recovery.epoch-replayed",
    "recovery.watermark",
    "recovery.chain",
    "recovery.finalize",
)
#: Label of the nested (crash-the-crashed-recovery) cell.
NESTED_CELL = "recovery.epoch-replayed:x2"

#: Outcomes a chaos cell may legitimately end in.
OUTCOME_EXACT = "exact"
OUTCOME_DEGRADED = "exact-degraded"
OUTCOME_FAILED_LOUD = "failed-loud"
OUTCOME_UNEXPECTED = "UNEXPECTED"

#: Schema tag of the ``repro chaos --json`` export (same convention as
#: ``repro.soak/v1`` and ``repro.soak.bench/v1`` in harness/slo.py).
CHAOS_SCHEMA = "repro.chaos/v1"


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos sweep: the cross product of the three axes."""

    schemes: Tuple[str, ...] = (
        "MSR",
        "WAL",
        "PACMAN",
        "DL",
        "LV",
        "LVC",
        "CKPT",
    )
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    crash_points: Tuple[str, ...] = CRASH_POINTS
    #: worker-failure cells run per scheme (empty tuple disables them).
    worker_faults: Tuple[str, ...] = WORKER_FAULTS
    #: crash-during-recovery cells run per scheme (empty disables them).
    recovery_crash_points: Tuple[str, ...] = RECOVERY_CRASH_POINTS
    #: also run the nested cell: two successive crashes mid-recovery.
    nested_crash: bool = True
    #: recover() re-runs allowed before a cell counts as non-convergent.
    max_recovery_attempts: int = 6
    num_workers: int = 4
    epoch_len: int = 48
    snapshot_interval: int = 4
    total_epochs: int = 6
    #: retained checkpoints — gives the checkpoint ladder a place to land.
    gc_keep_checkpoints: int = 2
    seed: int = 7
    #: cluster cells: placement strategies × correlated-kill targets
    #: (empty tuples disable the family).  A kill may name several
    #: simultaneous domains joined by ``+`` (k-correlated failure).
    cluster_placements: Tuple[str, ...] = PLACEMENT_NAMES
    cluster_kills: Tuple[str, ...] = ("shard:0", "node:0.0", "rack:0")
    cluster_shards: int = 4
    cluster_racks: int = 2
    cluster_nodes_per_rack: int = 2
    cluster_replication: int = 1
    #: also run the overwhelm cell: a correlated kill wider than the
    #: replication budget, which must end in a *loud* data-loss error.
    cluster_overwhelm: bool = True
    #: execution backend for single-node cells ("sim" or "real"); the
    #: cluster cell family always runs sim (shards share one process).
    backend: str = "sim"

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "real"):
            raise ConfigError(
                f"unknown execution backend {self.backend!r} "
                "(expected 'sim' or 'real')"
            )
        unknown = set(self.schemes) - set(SCHEMES)
        if unknown:
            raise ConfigError(f"unknown schemes: {sorted(unknown)}")
        if "NAT" in self.schemes:
            raise ConfigError("NAT cannot recover; chaos needs FT schemes")
        if set(self.fault_kinds) - set(FAULT_KINDS):
            raise ConfigError(f"fault kinds must be among {FAULT_KINDS}")
        if set(self.crash_points) - set(CRASH_POINTS):
            raise ConfigError(f"crash points must be among {CRASH_POINTS}")
        if set(self.worker_faults) - set(WORKER_FAULTS):
            raise ConfigError(
                f"worker faults must be among {WORKER_FAULTS}"
            )
        if set(self.recovery_crash_points) - set(RECOVERY_CRASH_POINTS):
            raise ConfigError(
                f"recovery crash points must be among {RECOVERY_CRASH_POINTS}"
            )
        if self.max_recovery_attempts < 1:
            raise ConfigError("max_recovery_attempts must be >= 1")
        if self.total_epochs <= self.snapshot_interval:
            raise ConfigError(
                "total_epochs must exceed snapshot_interval so the crash "
                "loses epochs past the checkpoint"
            )
        unknown_placements = set(self.cluster_placements) - set(PLACEMENT_NAMES)
        if unknown_placements:
            raise ConfigError(
                f"cluster placements must be among {PLACEMENT_NAMES}"
            )
        for kill in self.cluster_kills:
            for part in kill.split("+"):
                parse_kill(part)
        if self.cluster_replication < 0:
            raise ConfigError("cluster_replication must be >= 0")

    @property
    def num_events(self) -> int:
        return self.epoch_len * self.total_epochs


@dataclass
class ChaosRun:
    """One cell of the sweep and how it ended."""

    scheme: str
    fault: str
    crash_point: str
    outcome: str
    ok: bool
    detail: str = ""
    #: the crash point that actually materialized (a mid-epoch crash
    #: cannot fire for a scheme that never writes the targeted store).
    actual_point: str = ""
    fault_fired: bool = False
    mid_crash: bool = False
    #: rung name -> epochs recovered via that rung.
    ladder: Dict[str, int] = field(default_factory=dict)
    checkpoint_fallbacks: int = 0
    #: virtual mean-time-to-recover, summed across every recover()
    #: attempt of this cell (crashed attempts included).
    mttr_seconds: float = 0.0
    #: recover() invocations this cell needed to converge.
    attempts: int = 1
    #: the final attempt resumed from a durable progress watermark.
    resumed: bool = False
    #: re-assignment rounds the resilient executor ran.
    reassign_rounds: int = 0
    #: chain tasks handed from dead workers to survivors.
    tasks_reassigned: int = 0
    #: recovery workers that died mid-replay.
    dead_workers: Tuple[int, ...] = ()
    #: events the final successful recovery replayed.
    events_replayed: int = 0
    #: events replayed by crashed attempts and replayed again later.
    wasted_events: int = 0
    #: chains re-executed because their chain mark was in flight.
    wasted_chains: int = 0
    #: wasted_events / (events_replayed + wasted_events).
    wasted_ratio: float = 0.0


@dataclass
class ChaosReport:
    """Sweep results plus the pass/fail verdict."""

    config: ChaosConfig
    runs: List[ChaosRun]

    @property
    def passed(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def failures(self) -> List[ChaosRun]:
        return [run for run in self.runs if not run.ok]

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for run in self.runs:
            counts[run.outcome] = counts.get(run.outcome, 0) + 1
        return counts


def smoke_config(seed: int = 7) -> ChaosConfig:
    """The reduced sweep CI runs on every push.

    Includes two worker-failure kinds (a death and a straggler) and two
    crash-during-recovery milestones plus the nested double-crash cell,
    so the resumable-recovery machinery is exercised on every push.
    """
    return ChaosConfig(
        schemes=("MSR", "WAL", "PACMAN", "LVC", "CKPT"),
        fault_kinds=("none", "torn"),
        crash_points=("boundary", "mid-commit"),
        worker_faults=("die-early", "straggle"),
        recovery_crash_points=(
            "recovery.epoch-replayed",
            "recovery.finalize",
        ),
        cluster_kills=("node:0.0", "rack:0"),
        seed=seed,
    )


def make_workload() -> StreamingLedger:
    """The canonical chaos workload, shared with the fault explorer.

    Both harnesses must stress the same mix (transfers, multi-partition
    chains, forced aborts) so a schedule found by ``repro check`` can be
    discussed in chaos-cell terms and vice versa.
    """
    return StreamingLedger(
        64,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


def placed_fault_specs(
    fault_kind: str,
    crash_point: str,
    stream: Optional[str],
    *,
    snapshot_interval: int,
    total_epochs: int,
) -> List[FaultSpec]:
    """Place the faults so they hit segments recovery will need.

    Schemes group-commit one log segment per epoch, so the N-th log
    write is epoch N-1's segment (1-based).  Snapshot write #1 is the
    epoch ``-1`` initial checkpoint; #2 is the first interval
    checkpoint.  Placement per crash point:

    - ``boundary``: damage the last epoch's segment; the crash is an
      ordinary end-of-stream stoppage and recovery must replay it.
    - ``mid-commit``: damage the first post-checkpoint epoch's segment,
      then crash *inside* the next epoch's group commit (that flush is
      itself torn) — recovery discards the debris, degrades for the
      damaged epoch, and returns the sealed-but-unprocessed epoch to
      the ingress tail.
    - ``mid-checkpoint``: damage an early segment, then crash inside
      the first interval checkpoint flush — recovery must fall back to
      the initial checkpoint and replay everything.
    """
    specs: List[FaultSpec] = []
    if crash_point == "mid-commit":
        specs.append(
            FaultSpec(
                "crash",
                target="log",
                nth=snapshot_interval + 2,
                stream=stream,
            )
        )
    elif crash_point == "mid-checkpoint":
        specs.append(FaultSpec("crash", target="snapshot", nth=2))
    if fault_kind == "none":
        return specs
    if stream is None:
        # The scheme commits no log segments (CKPT): aim the damage at
        # the snapshot store instead, exercising the checkpoint rung of
        # the ladder — and, when the *only* checkpoint is hit, the
        # fail-loud bottom rung.
        if fault_kind == "read-error":
            specs.append(FaultSpec("read_error", target="snapshot", nth=1))
        elif crash_point == "mid-checkpoint":
            # Damage the initial checkpoint; the interval checkpoint is
            # the crash's own debris, so no readable restore point
            # remains and recovery must fail loudly.
            specs.append(FaultSpec(fault_kind, target="snapshot", nth=1))
        else:
            # Damage the interval checkpoint; the ladder walks back to
            # the initial one and replays every epoch.
            specs.append(FaultSpec(fault_kind, target="snapshot", nth=2))
        return specs
    if fault_kind == "read-error":
        specs.append(
            FaultSpec("read_error", target="log", nth=1, stream=stream)
        )
        return specs
    if crash_point == "boundary":
        nth = total_epochs
    elif crash_point == "mid-commit":
        nth = snapshot_interval + 1
    else:  # mid-checkpoint: an epoch replayed from the older checkpoint
        nth = 2
    specs.append(FaultSpec(fault_kind, target="log", nth=nth, stream=stream))
    return specs


def _verify_exact(scheme: FTScheme, workload, events) -> Tuple[bool, str]:
    """Recovered state + outputs vs the serial ground truth."""
    processed = events[: scheme._events_processed]
    expected_state, expected_outputs = ground_truth(workload, processed)
    if not scheme.store.equals(expected_state):
        return False, (
            "state diverges: " + scheme.store.diff(expected_state, 3)
        )
    delivered = scheme.sink.outputs()
    if delivered != expected_outputs:
        missing = sorted(
            set(expected_outputs).symmetric_difference(delivered)
        )[:5]
        return False, f"outputs diverge (seqs {missing})"
    return True, ""


def worker_fault_plan(
    kind: str, baseline_mttr: float, num_workers: int
) -> Tuple[WorkerFault, ...]:
    """The fault list for one worker-failure cell.

    Timing is anchored to the scheme's failure-free recovery time so
    the injected moment lands *inside* the parallel replay regardless
    of the cost model: ``die-early`` kills a worker before it runs a
    single chain, ``die-mid`` kills one roughly halfway through, and
    ``straggle`` slows one to a quarter speed from a quarter in.
    """
    if kind == "die-early":
        return (WorkerFault(1 % num_workers, "die", at_seconds=0.0),)
    if kind == "die-mid":
        return (
            WorkerFault(0, "die", at_seconds=0.5 * baseline_mttr),
        )
    if kind == "straggle":
        return (
            WorkerFault(
                0,
                "straggle",
                at_seconds=0.25 * baseline_mttr,
                slowdown=4.0,
            ),
        )
    raise ConfigError(f"unknown worker fault {kind!r}")


def recovery_point_specs(cell: str) -> List[FaultSpec]:
    """Crash-point fault specs for one crash-during-recovery cell."""
    if cell == NESTED_CELL:
        # Kill the first recovery attempt after its first epoch replay,
        # then kill the *second* attempt at the same milestone — the
        # point counter is shared across attempts, so nth=2 lands in
        # the resumed run.  Convergence despite nested failures.
        return [
            FaultSpec(
                "crash_point",
                target="any",
                nth=n,
                point="recovery.epoch-replayed",
            )
            for n in (1, 2)
        ]
    return [FaultSpec("crash_point", target="any", nth=1, point=cell)]


def _run_one(
    scheme_name: str,
    fault_kind: str,
    crash_point: str,
    cfg: ChaosConfig,
    recovery_faults: Tuple[WorkerFault, ...] = (),
    point_specs: Sequence[FaultSpec] = (),
    label_fault: Optional[str] = None,
    label_point: Optional[str] = None,
) -> ChaosRun:
    workload = make_workload()
    events = workload.generate(cfg.num_events, cfg.seed)
    scheme_cls = SCHEMES[scheme_name]
    stream = scheme_cls.log_streams[0] if scheme_cls.log_streams else None
    injector = FaultInjector(
        placed_fault_specs(
            fault_kind,
            crash_point,
            stream,
            snapshot_interval=cfg.snapshot_interval,
            total_epochs=cfg.total_epochs,
        )
        + list(point_specs),
        seed=cfg.seed,
    )
    scheme = scheme_cls(
        workload,
        num_workers=cfg.num_workers,
        epoch_len=cfg.epoch_len,
        snapshot_interval=cfg.snapshot_interval,
        disk=Disk(faults=injector),
        gc_keep_checkpoints=cfg.gc_keep_checkpoints,
        recovery_faults=recovery_faults,
        backend=cfg.backend,
    )
    run = ChaosRun(
        scheme=scheme_name,
        fault=label_fault or fault_kind,
        crash_point=label_point or crash_point,
        outcome=OUTCOME_UNEXPECTED,
        ok=False,
    )
    try:
        try:
            scheme.process_stream(events)
        except InjectedCrash:
            run.mid_crash = True
        if not run.mid_crash:
            # Either a boundary scenario, or the targeted mid-epoch
            # write never happened for this scheme (e.g. CKPT commits
            # no log segments): stop the node at the epoch boundary.
            scheme.crash()
        run.actual_point = crash_point if run.mid_crash else "boundary"
        report = None
        attempts = 0
        while report is None:
            # Crash-during-recovery cells kill recover() itself; each
            # re-run must resume from the progress watermark.  A cell
            # that cannot converge within the attempt budget fails.
            attempts += 1
            try:
                report = scheme.recover()
            except InjectedCrash:
                if attempts >= cfg.max_recovery_attempts:
                    run.detail = (
                        "recovery did not converge within "
                        f"{cfg.max_recovery_attempts} attempts"
                    )
                    run.fault_fired = bool(injector.injected)
                    return run
            except (StorageError, ReassignmentError) as exc:
                # The ladder (or the re-assignment budget) was
                # exhausted: recovery must fail loudly with a
                # documented error and install nothing.
                run.outcome = OUTCOME_FAILED_LOUD
                run.ok = scheme.store is None
                run.detail = f"{type(exc).__name__}: {exc}"
                run.fault_fired = bool(injector.injected)
                return run
        run.attempts = report.attempts
        run.resumed = report.resumed
        run.mttr_seconds = report.elapsed_total_seconds
        run.ladder = dict(report.ladder)
        run.checkpoint_fallbacks = report.checkpoint_fallbacks
        run.reassign_rounds = report.reassign_rounds
        run.tasks_reassigned = report.tasks_reassigned
        run.dead_workers = report.dead_workers
        run.events_replayed = report.events_replayed
        run.wasted_events = report.wasted_events
        run.wasted_chains = report.wasted_chains
        replayed_total = report.events_replayed + report.wasted_events
        if replayed_total:
            run.wasted_ratio = report.wasted_events / replayed_total
        # The scenario has played out; reprocess any epochs returned to
        # the ingress tail without further interference.
        injector.disarm()
        scheme.process_stream([])
        run.fault_fired = bool(injector.injected)
        exact, detail = _verify_exact(scheme, workload, events)
        if not exact:
            run.detail = f"SILENT DIVERGENCE: {detail}"
            return run
        run.ok = True
        run.outcome = (
            OUTCOME_DEGRADED if report.degraded() else OUTCOME_EXACT
        )
        if report.fallbacks:
            first = report.fallbacks[0]
            run.detail = (
                f"epoch {first.epoch_id} via {first.rung} ({first.error})"
            )
        elif report.checkpoint_fallbacks:
            run.detail = (
                f"fell back past {report.checkpoint_fallbacks} "
                f"checkpoint(s) to epoch {report.checkpoint_epoch}"
            )
    except Exception as exc:  # noqa: BLE001 — the sweep must report, not die
        run.outcome = OUTCOME_UNEXPECTED
        run.ok = False
        run.detail = f"{type(exc).__name__}: {exc}"
    return run


#: The overwhelm cell's kill: the primary's node plus the node its
#: first replica lands on — wider than replication factor 1.
OVERWHELM_KILL = "node:0.0+node:1.0"


def _run_cluster_cell(
    placement: str,
    kill: str,
    cfg: ChaosConfig,
    replication: Optional[int] = None,
    expect_loss: bool = False,
) -> ChaosRun:
    """One correlated-failure cell: kill domain(s), recover, verify.

    ``kill`` may join several targets with ``+`` — they die at the same
    epoch boundary (one k-correlated event).  Within the replication
    budget the cell must recover to the exact serial ground truth; an
    ``expect_loss`` cell must instead end in a *loud*
    :class:`ClusterDataLossError` (silent wrong state fails the sweep).
    """
    workload = make_workload()
    events = workload.generate(cfg.num_events, cfg.seed)
    repl = cfg.cluster_replication if replication is None else replication
    kill_epoch = max(1, cfg.total_epochs // 2)
    topology = ClusterTopology(
        cfg.cluster_shards, cfg.cluster_racks, cfg.cluster_nodes_per_rack
    )
    plan = ClusterFaultPlan(
        kills=[
            ClusterFault(part, after_epoch=kill_epoch)
            for part in kill.split("+")
        ]
    )
    cluster = ShardedCluster(
        workload,
        topology,
        placement=placement,
        replication=repl,
        workers_per_shard=max(1, cfg.num_workers // 2),
        epoch_len=cfg.epoch_len,
        snapshot_interval=cfg.snapshot_interval,
        gc_keep_checkpoints=cfg.gc_keep_checkpoints,
        fault_plan=plan,
    )
    run = ChaosRun(
        scheme="CLUSTER",
        fault=f"{placement}/r{repl}",
        crash_point=kill,
        outcome=OUTCOME_UNEXPECTED,
        ok=False,
    )
    try:
        cluster.process_stream(events)
        if not cluster.crashed:
            run.detail = "kill never fired"
            return run
        run.actual_point = f"after epoch {kill_epoch}"
        try:
            report = cluster.recover()
        except ClusterDataLossError as exc:
            run.outcome = OUTCOME_FAILED_LOUD
            run.ok = expect_loss
            run.detail = (
                f"lost shards {list(exc.lost_shards)} "
                f"({exc.lost_events} events)"
            )
            if not expect_loss:
                run.detail = "unexpected data loss: " + run.detail
            run.fault_fired = True
            return run
        if expect_loss:
            run.detail = (
                "under-replicated correlated kill recovered instead of "
                "reporting data loss"
            )
            return run
        run.fault_fired = True
        run.mttr_seconds = report.rto_seconds
        run.attempts = max(
            (r.attempts for r in report.per_shard), default=1
        )
        run.resumed = any(r.resumed for r in report.per_shard)
        run.events_replayed = sum(
            r.events_replayed for r in report.per_shard
        )
        for record in report.per_shard:
            for rung, count in record.ladder.items():
                run.ladder[rung] = run.ladder.get(rung, 0) + count
        cluster.process_stream([])
        if not cluster.verify_exact():
            run.detail = (
                "SILENT DIVERGENCE: recovered cluster state does not "
                "match the serial single-instance run"
            )
            return run
        run.ok = True
        run.outcome = OUTCOME_EXACT
        run.detail = (
            f"shards {list(report.shards_killed)} recovered on "
            f"{report.recovery_nodes} nodes; "
            f"RTO {report.rto_seconds * 1e3:.2f}ms"
        )
    except Exception as exc:  # noqa: BLE001 — the sweep must report, not die
        run.outcome = OUTCOME_UNEXPECTED
        run.ok = False
        run.detail = f"{type(exc).__name__}: {exc}"
    return run


def run_chaos(cfg: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run the full sweep; every cell is independent and seeded."""
    cfg = cfg or ChaosConfig()
    runs = [
        _run_one(scheme, fault, point, cfg)
        for scheme in cfg.schemes
        for fault in cfg.fault_kinds
        for point in cfg.crash_points
    ]
    for scheme in cfg.schemes:
        if cfg.worker_faults:
            # Anchor the fault moment to this scheme's failure-free
            # recovery time so a mid-recovery death actually lands
            # mid-recovery (the baseline cell itself is not reported).
            baseline = _run_one(scheme, "none", "boundary", cfg)
            for kind in cfg.worker_faults:
                runs.append(
                    _run_one(
                        scheme,
                        "none",
                        "boundary",
                        cfg,
                        recovery_faults=worker_fault_plan(
                            kind, baseline.mttr_seconds, cfg.num_workers
                        ),
                        label_fault=f"worker:{kind}",
                    )
                )
        for point in cfg.recovery_crash_points:
            if point == "recovery.chain" and scheme != "MSR":
                # Only MorphStreamR marks per-chain progress; the point
                # never fires elsewhere and the cell would be vacuous.
                continue
            runs.append(
                _run_one(
                    scheme,
                    "none",
                    "boundary",
                    cfg,
                    point_specs=recovery_point_specs(point),
                    label_point=point,
                )
            )
        if cfg.nested_crash and cfg.recovery_crash_points:
            runs.append(
                _run_one(
                    scheme,
                    "none",
                    "boundary",
                    cfg,
                    point_specs=recovery_point_specs(NESTED_CELL),
                    label_point=NESTED_CELL,
                )
            )
    if cfg.cluster_placements and cfg.cluster_kills:
        for placement in cfg.cluster_placements:
            for kill in cfg.cluster_kills:
                runs.append(_run_cluster_cell(placement, kill, cfg))
        if cfg.cluster_overwhelm:
            # Correlation width 2 against replication factor 1: the
            # cluster must refuse to fabricate state and fail loudly.
            runs.append(
                _run_cluster_cell(
                    "checkpoint_spread",
                    OVERWHELM_KILL,
                    cfg,
                    replication=1,
                    expect_loss=True,
                )
            )
    return ChaosReport(config=cfg, runs=runs)


def chaos_payload(report: ChaosReport) -> Dict:
    """The JSON document ``repro chaos --json`` exports.

    Per cell: the verdict, the fallback-ladder rung histogram, the
    re-assignment counters, and the wasted-work ratio.  The summary
    aggregates the rung histogram and wasted re-execution across the
    whole sweep.
    """
    from dataclasses import asdict

    from repro.harness.stats import latency_summary

    ladder_total: Dict[str, int] = {}
    wasted_events = replayed_plus_wasted = 0
    for run in report.runs:
        for rung, count in run.ladder.items():
            ladder_total[rung] = ladder_total.get(rung, 0) + count
        wasted_events += run.wasted_events
        replayed_plus_wasted += run.events_replayed + run.wasted_events
    mttrs = [run.mttr_seconds for run in report.runs if run.mttr_seconds > 0]
    return {
        "schema": CHAOS_SCHEMA,
        "config": asdict(report.config),
        "passed": report.passed,
        "outcome_counts": report.outcome_counts(),
        "summary": {
            "cells": len(report.runs),
            "failures": len(report.failures),
            "ladder_histogram": ladder_total,
            "wasted_events": wasted_events,
            "wasted_ratio": (
                wasted_events / replayed_plus_wasted
                if replayed_plus_wasted
                else 0.0
            ),
            # The canonical latency digest (repro.harness.stats), so the
            # chaos MTTR sample quotes the same interpolated quantiles
            # as the soak trajectory.
            "mttr": latency_summary(mttrs),
        },
        "cells": [
            {
                "scheme": run.scheme,
                "fault": run.fault,
                "crash_point": run.crash_point,
                "outcome": run.outcome,
                "ok": run.ok,
                "detail": run.detail,
                "actual_point": run.actual_point,
                "fault_fired": run.fault_fired,
                "mid_crash": run.mid_crash,
                "ladder": dict(run.ladder),
                "checkpoint_fallbacks": run.checkpoint_fallbacks,
                "mttr_seconds": run.mttr_seconds,
                "attempts": run.attempts,
                "resumed": run.resumed,
                "reassign_rounds": run.reassign_rounds,
                "tasks_reassigned": run.tasks_reassigned,
                "dead_workers": list(run.dead_workers),
                "events_replayed": run.events_replayed,
                "wasted_events": run.wasted_events,
                "wasted_chains": run.wasted_chains,
                "wasted_ratio": run.wasted_ratio,
            }
            for run in report.runs
        ],
    }


def load_chaos_payload(payload: Dict) -> Dict:
    """Validate a ``repro chaos --json`` document for downstream tooling.

    Same forward-compatibility stance as the soak trajectory loader in
    :mod:`repro.harness.slo`: the schema tag must match, the fields the
    consumer relies on must exist, and *unknown* fields are ignored so
    newer producers keep working with older consumers.
    """
    if not isinstance(payload, dict):
        raise ConfigError("chaos payload must be a JSON object")
    schema = payload.get("schema")
    if schema != CHAOS_SCHEMA:
        raise ConfigError(
            f"unsupported chaos schema {schema!r} (expected {CHAOS_SCHEMA})"
        )
    for key in ("passed", "cells", "summary"):
        if key not in payload:
            raise ConfigError(f"chaos payload missing field {key!r}")
    if not isinstance(payload["cells"], list):
        raise ConfigError("chaos payload cells must be a list")
    return payload
