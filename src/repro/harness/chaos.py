"""Chaos harness: storage-fault × crash-point × scheme sweeps.

Each cell of the sweep runs one full experiment under an adversarial
storage plan: a :class:`~repro.storage.faults.FaultInjector` damages a
durable segment (torn flush, bit flip, dropped flush, injected read
error) and/or kills the process *mid-epoch* (during group commit or
during checkpointing), then recovery runs and the harness verifies the
outcome against the serial ground truth.

Every cell must end in one of two documented states:

- **exact** — recovered state and exactly-once outputs match the ground
  truth, possibly via the fallback ladder (``exact-degraded`` labels the
  runs where a lower rung was taken, with the rung counts reported);
- **failed-loud** — recovery raised a documented
  :class:`~repro.errors.StorageError` subclass (e.g. the checkpoint
  itself was unreadable and no older one existed).

Anything else — an undocumented exception, or worse, a *silently*
divergent recovery — fails the sweep.  ``repro chaos`` drives this from
the command line and exits non-zero on any such cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import SCHEMES
from repro.errors import ConfigError, InjectedCrash, StorageError
from repro.ft.base import DEGRADABLE_ERRORS, FTScheme, RecoveryReport
from repro.harness.runner import ground_truth
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stores import Disk
from repro.workloads.streaming_ledger import StreamingLedger

#: Where the injected crash lands relative to the epoch lifecycle.
CRASH_POINTS = ("boundary", "mid-commit", "mid-checkpoint")
#: Storage damage injected alongside the crash.
FAULT_KINDS = ("none", "torn", "bitflip", "drop", "read-error")

#: Outcomes a chaos cell may legitimately end in.
OUTCOME_EXACT = "exact"
OUTCOME_DEGRADED = "exact-degraded"
OUTCOME_FAILED_LOUD = "failed-loud"
OUTCOME_UNEXPECTED = "UNEXPECTED"


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos sweep: the cross product of the three axes."""

    schemes: Tuple[str, ...] = ("MSR", "WAL", "DL", "LV", "CKPT")
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    crash_points: Tuple[str, ...] = CRASH_POINTS
    num_workers: int = 4
    epoch_len: int = 48
    snapshot_interval: int = 4
    total_epochs: int = 6
    #: retained checkpoints — gives the checkpoint ladder a place to land.
    gc_keep_checkpoints: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        unknown = set(self.schemes) - set(SCHEMES)
        if unknown:
            raise ConfigError(f"unknown schemes: {sorted(unknown)}")
        if "NAT" in self.schemes:
            raise ConfigError("NAT cannot recover; chaos needs FT schemes")
        if set(self.fault_kinds) - set(FAULT_KINDS):
            raise ConfigError(f"fault kinds must be among {FAULT_KINDS}")
        if set(self.crash_points) - set(CRASH_POINTS):
            raise ConfigError(f"crash points must be among {CRASH_POINTS}")
        if self.total_epochs <= self.snapshot_interval:
            raise ConfigError(
                "total_epochs must exceed snapshot_interval so the crash "
                "loses epochs past the checkpoint"
            )

    @property
    def num_events(self) -> int:
        return self.epoch_len * self.total_epochs


@dataclass
class ChaosRun:
    """One cell of the sweep and how it ended."""

    scheme: str
    fault: str
    crash_point: str
    outcome: str
    ok: bool
    detail: str = ""
    #: the crash point that actually materialized (a mid-epoch crash
    #: cannot fire for a scheme that never writes the targeted store).
    actual_point: str = ""
    fault_fired: bool = False
    mid_crash: bool = False
    #: rung name -> epochs recovered via that rung.
    ladder: Dict[str, int] = field(default_factory=dict)
    checkpoint_fallbacks: int = 0
    #: virtual mean-time-to-recover (the recovery report's elapsed time).
    mttr_seconds: float = 0.0


@dataclass
class ChaosReport:
    """Sweep results plus the pass/fail verdict."""

    config: ChaosConfig
    runs: List[ChaosRun]

    @property
    def passed(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def failures(self) -> List[ChaosRun]:
        return [run for run in self.runs if not run.ok]

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for run in self.runs:
            counts[run.outcome] = counts.get(run.outcome, 0) + 1
        return counts


def smoke_config(seed: int = 7) -> ChaosConfig:
    """The reduced sweep CI runs on every push."""
    return ChaosConfig(
        schemes=("MSR", "WAL", "CKPT"),
        fault_kinds=("none", "torn"),
        crash_points=("boundary", "mid-commit"),
        seed=seed,
    )


def _make_workload(cfg: ChaosConfig) -> StreamingLedger:
    return StreamingLedger(
        64,
        transfer_ratio=0.6,
        multi_partition_ratio=0.4,
        skew=0.4,
        forced_abort_ratio=0.05,
        num_partitions=4,
    )


def _fault_specs(
    fault_kind: str, crash_point: str, stream: Optional[str], cfg: ChaosConfig
) -> List[FaultSpec]:
    """Place the faults so they hit segments recovery will need.

    Schemes group-commit one log segment per epoch, so the N-th log
    write is epoch N-1's segment (1-based).  Snapshot write #1 is the
    epoch ``-1`` initial checkpoint; #2 is the first interval
    checkpoint.  Placement per crash point:

    - ``boundary``: damage the last epoch's segment; the crash is an
      ordinary end-of-stream stoppage and recovery must replay it.
    - ``mid-commit``: damage the first post-checkpoint epoch's segment,
      then crash *inside* the next epoch's group commit (that flush is
      itself torn) — recovery discards the debris, degrades for the
      damaged epoch, and returns the sealed-but-unprocessed epoch to
      the ingress tail.
    - ``mid-checkpoint``: damage an early segment, then crash inside
      the first interval checkpoint flush — recovery must fall back to
      the initial checkpoint and replay everything.
    """
    specs: List[FaultSpec] = []
    if crash_point == "mid-commit":
        specs.append(
            FaultSpec(
                "crash",
                target="log",
                nth=cfg.snapshot_interval + 2,
                stream=stream,
            )
        )
    elif crash_point == "mid-checkpoint":
        specs.append(FaultSpec("crash", target="snapshot", nth=2))
    if fault_kind == "none":
        return specs
    if stream is None:
        # The scheme commits no log segments (CKPT): aim the damage at
        # the snapshot store instead, exercising the checkpoint rung of
        # the ladder — and, when the *only* checkpoint is hit, the
        # fail-loud bottom rung.
        if fault_kind == "read-error":
            specs.append(FaultSpec("read_error", target="snapshot", nth=1))
        elif crash_point == "mid-checkpoint":
            # Damage the initial checkpoint; the interval checkpoint is
            # the crash's own debris, so no readable restore point
            # remains and recovery must fail loudly.
            specs.append(FaultSpec(fault_kind, target="snapshot", nth=1))
        else:
            # Damage the interval checkpoint; the ladder walks back to
            # the initial one and replays every epoch.
            specs.append(FaultSpec(fault_kind, target="snapshot", nth=2))
        return specs
    if fault_kind == "read-error":
        specs.append(
            FaultSpec("read_error", target="log", nth=1, stream=stream)
        )
        return specs
    if crash_point == "boundary":
        nth = cfg.total_epochs
    elif crash_point == "mid-commit":
        nth = cfg.snapshot_interval + 1
    else:  # mid-checkpoint: an epoch replayed from the older checkpoint
        nth = 2
    specs.append(FaultSpec(fault_kind, target="log", nth=nth, stream=stream))
    return specs


def _verify_exact(scheme: FTScheme, workload, events) -> Tuple[bool, str]:
    """Recovered state + outputs vs the serial ground truth."""
    processed = events[: scheme._events_processed]
    expected_state, expected_outputs = ground_truth(workload, processed)
    if not scheme.store.equals(expected_state):
        return False, (
            "state diverges: " + scheme.store.diff(expected_state, 3)
        )
    delivered = scheme.sink.outputs()
    if delivered != expected_outputs:
        missing = sorted(
            set(expected_outputs).symmetric_difference(delivered)
        )[:5]
        return False, f"outputs diverge (seqs {missing})"
    return True, ""


def _run_one(
    scheme_name: str, fault_kind: str, crash_point: str, cfg: ChaosConfig
) -> ChaosRun:
    workload = _make_workload(cfg)
    events = workload.generate(cfg.num_events, cfg.seed)
    scheme_cls = SCHEMES[scheme_name]
    stream = scheme_cls.log_streams[0] if scheme_cls.log_streams else None
    injector = FaultInjector(
        _fault_specs(fault_kind, crash_point, stream, cfg), seed=cfg.seed
    )
    scheme = scheme_cls(
        workload,
        num_workers=cfg.num_workers,
        epoch_len=cfg.epoch_len,
        snapshot_interval=cfg.snapshot_interval,
        disk=Disk(faults=injector),
        gc_keep_checkpoints=cfg.gc_keep_checkpoints,
    )
    run = ChaosRun(
        scheme=scheme_name,
        fault=fault_kind,
        crash_point=crash_point,
        outcome=OUTCOME_UNEXPECTED,
        ok=False,
    )
    try:
        try:
            scheme.process_stream(events)
        except InjectedCrash:
            run.mid_crash = True
        if not run.mid_crash:
            # Either a boundary scenario, or the targeted mid-epoch
            # write never happened for this scheme (e.g. CKPT commits
            # no log segments): stop the node at the epoch boundary.
            scheme.crash()
        run.actual_point = crash_point if run.mid_crash else "boundary"
        try:
            report = scheme.recover()
        except StorageError as exc:
            # The ladder was exhausted (or strict mode): recovery must
            # fail loudly with a documented error and install nothing.
            run.outcome = OUTCOME_FAILED_LOUD
            run.ok = scheme.store is None
            run.detail = f"{type(exc).__name__}: {exc}"
            run.fault_fired = bool(injector.injected)
            return run
        run.mttr_seconds = report.elapsed_seconds
        run.ladder = dict(report.ladder)
        run.checkpoint_fallbacks = report.checkpoint_fallbacks
        # The scenario has played out; reprocess any epochs returned to
        # the ingress tail without further interference.
        injector.disarm()
        scheme.process_stream([])
        run.fault_fired = bool(injector.injected)
        exact, detail = _verify_exact(scheme, workload, events)
        if not exact:
            run.detail = f"SILENT DIVERGENCE: {detail}"
            return run
        run.ok = True
        run.outcome = (
            OUTCOME_DEGRADED if report.degraded() else OUTCOME_EXACT
        )
        if report.fallbacks:
            first = report.fallbacks[0]
            run.detail = (
                f"epoch {first.epoch_id} via {first.rung} ({first.error})"
            )
        elif report.checkpoint_fallbacks:
            run.detail = (
                f"fell back past {report.checkpoint_fallbacks} "
                f"checkpoint(s) to epoch {report.checkpoint_epoch}"
            )
    except Exception as exc:  # noqa: BLE001 — the sweep must report, not die
        run.outcome = OUTCOME_UNEXPECTED
        run.ok = False
        run.detail = f"{type(exc).__name__}: {exc}"
    return run


def run_chaos(cfg: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run the full sweep; every cell is independent and seeded."""
    cfg = cfg or ChaosConfig()
    runs = [
        _run_one(scheme, fault, point, cfg)
        for scheme in cfg.schemes
        for fault in cfg.fault_kinds
        for point in cfg.crash_points
    ]
    return ChaosReport(config=cfg, runs=runs)
