"""Sustained-traffic SLA soak: long runs, seeded crashes, degraded serving.

The figure-style experiments measure one crash; production operators
care about *trajectories*: what a service looks like after hours of
sustained traffic with failures arriving on a schedule.  This harness
drives a Zipf workload through a single-node scheme or a
:class:`~repro.cluster.cluster.ShardedCluster` for many simulated
epochs, arming a seeded crash/recover schedule, and measures the
availability-centric metrics of Vogel et al. end to end:

- **end-to-end latency** (p50/p99/p999): every event gets an *arrival
  stamp* on a deterministic ingress timeline (``seq / offered_eps``,
  the offered rate calibrated as a fraction of probe-measured engine
  capacity) and a *commit stamp* read off the engine's virtual clock,
  which :meth:`~repro.sim.clock.Machine.advance_all_to` keeps aligned
  with the arrival timeline — so latency = commit − arrival, queueing
  (admission delay, post-outage backlog) included;
- **MTTR / RTO / RPO** per outage and aggregated;
- **availability** against a declarative error budget
  (:mod:`repro.harness.slo`).

Two mechanisms make the service degrade *gracefully* instead of merely
failing fast:

- **degraded-mode serving** — while recovery is in flight, seeded reads
  are answered stale from the last durable checkpoint
  (:meth:`~repro.ft.base.FTScheme.degraded_read`), each tagged with its
  exact staleness bound; the harness bit-checks every stale answer
  against the serial ground truth at the serving checkpoint's epoch;
- **token-bucket admission** — a GCRA-shaped controller (deterministic:
  no randomness, O(1) per event) smooths ingress and, after an outage,
  backs arrivals off so the recovered node drains its backlog at a
  bounded rate instead of being starved into a second collapse.  The
  admitted rate runs ``admission_headroom`` above the offered rate, so
  the backlog always drains and the deferred count converges.

Everything is seeded: the same :class:`SoakConfig` always produces the
same crash schedule, the same degraded-read answers (bit-identical) and
the same metrics — which is what lets ``BENCH_soak.json`` act as a
committed perf trajectory that CI can gate exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import SCHEMES
from repro.cluster import (
    ClusterFault,
    ClusterFaultPlan,
    ClusterTopology,
    ShardedCluster,
)
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.errors import ConfigError
from repro.ft.base import DegradedRead, FTScheme
from repro.harness.runner import ground_truth
from repro.harness.slo import SLOTargets, SLOVerdict, evaluate_slo
from repro.harness.stats import latency_summary
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stores import Disk
from repro.workloads.grep_sum import TABLE, GrepSum

#: Payload schema of ``soak_payload`` / ``repro soak --json``.
SOAK_SCHEMA = "repro.soak/v1"

SOAK_MODES = ("single", "cluster")


@dataclass(frozen=True)
class SoakConfig:
    """One soak run, fully determined by its fields (and nothing else)."""

    mode: str = "single"
    scheme: str = "MSR"
    num_keys: int = 4096
    epoch_len: int = 256
    #: total punctuation epochs driven through the engine.
    epochs: int = 48
    #: seeded crash/recover cycles armed across the run.
    crashes: int = 3
    #: workers per engine (single mode) / per shard (cluster mode).
    num_workers: int = 4
    snapshot_interval: int = 4
    skew: float = 0.6
    seed: int = 7
    #: offered rate as a fraction of probe-measured capacity (< 1 keeps
    #: the queue stable; the probe is part of the run and seeded).
    offered_load_factor: float = 0.8
    #: admitted rate / offered rate; > 1 so post-outage backlog drains.
    admission_headroom: float = 1.25
    #: token-bucket burst tolerance, in events.
    burst: int = 32
    #: stale reads served (and bit-checked) during each outage.
    degraded_reads_per_outage: int = 8
    #: failure-detection delay charged before each recovery.
    detection_seconds: float = 0.001
    #: also arm seeded torn-flush storage faults (single mode), forcing
    #: recoveries through the fallback ladder mid-soak.
    chaos: bool = False
    #: verify final state/outputs and every stale read vs ground truth.
    verify: bool = True
    # cluster-mode topology
    shards: int = 4
    racks: int = 2
    nodes_per_rack: int = 2
    replication: int = 1
    placement: str = "checkpoint_spread"
    slo: SLOTargets = field(default_factory=SLOTargets)
    #: execution backend for single-mode recoveries ("sim" or "real");
    #: cluster mode always runs sim (all shards share one process).
    backend: str = "sim"

    def __post_init__(self) -> None:
        if self.mode not in SOAK_MODES:
            raise ConfigError(f"mode must be one of {SOAK_MODES}")
        if self.backend not in ("sim", "real"):
            raise ConfigError(
                f"unknown execution backend {self.backend!r} "
                "(expected 'sim' or 'real')"
            )
        if self.scheme not in SCHEMES or self.scheme == "NAT":
            raise ConfigError(
                f"scheme must be a recoverable scheme, not {self.scheme!r}"
            )
        if self.epochs < 2:
            raise ConfigError("epochs must be >= 2")
        if self.epochs <= self.snapshot_interval:
            raise ConfigError(
                "epochs must exceed snapshot_interval so crashes land "
                "past a checkpoint"
            )
        if self.crashes < 0:
            raise ConfigError("crashes must be >= 0")
        if self.crashes > len(self._eligible_crash_epochs()):
            raise ConfigError(
                f"{self.crashes} crashes do not fit the "
                f"{len(self._eligible_crash_epochs())} eligible epochs"
            )
        if not 0.0 < self.offered_load_factor <= 1.0:
            raise ConfigError("offered_load_factor must be in (0, 1]")
        if self.admission_headroom <= 1.0:
            raise ConfigError(
                "admission_headroom must exceed 1.0 or backlog never drains"
            )
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")
        if self.degraded_reads_per_outage < 0:
            raise ConfigError("degraded_reads_per_outage must be >= 0")
        if self.detection_seconds < 0:
            raise ConfigError("detection_seconds must be >= 0")
        if self.chaos and self.mode != "single":
            raise ConfigError("chaos soak is single-node only")

    def _eligible_crash_epochs(self) -> List[int]:
        """Epochs after which a crash may fire: past the first interval
        checkpoint, so recoveries replay a realistic epoch window."""
        return list(range(self.snapshot_interval, self.epochs))

    @property
    def num_events(self) -> int:
        return self.epochs * self.epoch_len

    def cell(self) -> str:
        """Config fingerprint keying the BENCH trajectory.

        Two records gate against each other only when their cells match,
        so changing the workload shape starts a fresh baseline instead
        of producing bogus regressions.
        """
        parts = [
            self.mode,
            self.scheme,
            f"k{self.num_keys}",
            f"L{self.epoch_len}",
            f"E{self.epochs}",
            f"c{self.crashes}",
            f"w{self.num_workers}",
            f"z{self.skew}",
            f"s{self.seed}",
        ]
        if self.mode == "cluster":
            parts.append(
                f"sh{self.shards}x{self.racks}x{self.nodes_per_rack}"
                f"r{self.replication}-{self.placement}"
            )
        if self.chaos:
            parts.append("chaos")
        return "/".join(parts)

    def crash_schedule(self) -> List[int]:
        """The seeded epochs after which the node (or a domain) dies."""
        rng = random.Random(self.seed * 7919 + 13)
        return sorted(rng.sample(self._eligible_crash_epochs(), self.crashes))


class TokenBucketAdmission:
    """GCRA-shaped admission: deterministic token bucket with queueing.

    ``admit(arrival)`` returns the (possibly deferred) instant an event
    enters the engine.  The virtual-scheduling form of the generic cell
    rate algorithm is used — one theoretical-arrival-time register, no
    randomness: an event is conformant if it arrives within ``burst``
    intervals of the register, otherwise it queues until it is.  The
    ``gate`` is the recovery-backoff hook: while an outage is in
    progress the harness raises it to the recovery-completion instant,
    so queued arrivals back off and drain *after* the node is back,
    at the bounded admitted rate — recovery catch-up is never starved
    by a thundering herd.
    """

    def __init__(self, rate_eps: float, burst: int):
        if rate_eps <= 0:
            raise ConfigError("admission rate must be positive")
        self.interval = 1.0 / rate_eps
        self.tolerance = burst * self.interval
        self.gate = 0.0
        self._tat = 0.0
        self.deferred = 0
        self.max_delay_seconds = 0.0

    def admit(self, arrival: float) -> float:
        earliest = max(arrival, self._tat - self.tolerance, self.gate)
        self._tat = max(self._tat, earliest) + self.interval
        if earliest > arrival:
            self.deferred += 1
            delay = earliest - arrival
            if delay > self.max_delay_seconds:
                self.max_delay_seconds = delay
        return earliest


@dataclass
class OutageRecord:
    """One crash/recover cycle of the soak, with its serving record."""

    epoch: int
    kind: str
    mttr_seconds: float
    detection_seconds: float
    rto_seconds: float
    #: wall-clock window the (single-node) service accepted no writes —
    #: in cluster mode, the window *some* shard was down (conservative:
    #: surviving shards kept serving fresh reads throughout).
    outage_seconds: float
    rpo_events: int
    degraded_reads: int
    stale_reads: int
    fresh_reads: int
    max_staleness_epochs: int
    attempts: int
    resumed: bool
    ladder: Dict[str, int]


@dataclass
class SoakResult:
    """Everything one soak run measured (feeds payload + bench record)."""

    config: SoakConfig
    cell: str
    duration_seconds: float
    events_total: int
    capacity_eps: float
    offered_eps: float
    throughput_eps: float
    latency: Dict[str, float]
    epoch_series: List[Dict]
    outages: List[OutageRecord]
    outage_seconds: float
    availability: float
    mttr: Dict[str, float]
    rto_max_seconds: float
    rpo_events: int
    deferred_events: int
    max_admission_delay_seconds: float
    degraded_reads: int
    stale_reads: int
    fresh_reads: int
    #: flat stale-read transcript — same seed must reproduce it exactly.
    degraded_samples: List[Tuple]
    state_verified: bool
    outputs_verified: bool
    degraded_verified: bool
    verified: bool
    slo: SLOVerdict

    @property
    def ok(self) -> bool:
        """No data loss, no divergence, SLO met."""
        correctness = (
            self.state_verified
            and self.outputs_verified
            and self.degraded_verified
            if self.verified
            else True
        )
        return correctness and self.rpo_events == 0 and self.slo.passed


# ---------------------------------------------------------------------------
# shared plumbing
# ---------------------------------------------------------------------------


def _make_workload(config: SoakConfig) -> GrepSum:
    return GrepSum(
        config.num_keys,
        list_len=2,
        skew=config.skew,
        multi_partition_ratio=0.4,
        num_partitions=8,
    )


class _TruthCache:
    """Serial ground-truth states keyed by event-prefix length."""

    def __init__(self, workload: GrepSum, events: Sequence):
        self._workload = workload
        self._events = events
        self._states: Dict[int, StateStore] = {}

    def state_at(self, num_events: int) -> StateStore:
        if num_events not in self._states:
            state, _outputs = ground_truth(
                self._workload, self._events[:num_events]
            )
            self._states[num_events] = state
        return self._states[num_events]


def _check_degraded_reads(
    reads: Sequence[DegradedRead],
    crash_epoch: int,
    epoch_len: int,
    truth: Optional[_TruthCache],
    live_prefix_events: int,
) -> bool:
    """Bit-check every served read against the serial ground truth.

    A stale read must equal the serial state at its serving checkpoint's
    epoch and carry the exact staleness bound; a fresh read (cluster
    mode, surviving shard) must equal the serial state at the current
    epoch with a zero bound.
    """
    if truth is None:
        return True
    for read in reads:
        ref = StateRef(read.table, read.key)
        if read.stale:
            expected = truth.state_at((read.checkpoint_epoch + 1) * epoch_len)
            bound_ok = (
                read.staleness_epochs == crash_epoch - read.checkpoint_epoch
                and read.staleness_epochs >= 0
            )
        else:
            expected = truth.state_at(live_prefix_events)
            bound_ok = read.staleness_epochs == 0
        if not bound_ok or expected.peek(ref) != read.value:
            return False
    return True


def _degraded_keys(config: SoakConfig, outage_index: int) -> List[int]:
    """Seeded key picks served during one outage (Zipf-flavoured)."""
    rng = random.Random(config.seed * 104729 + outage_index * 31 + 7)
    return [
        rng.randrange(config.num_keys)
        for _ in range(config.degraded_reads_per_outage)
    ]


def _sample(read: DegradedRead) -> Tuple:
    return (
        read.table,
        read.key,
        read.value,
        read.checkpoint_epoch,
        read.staleness_epochs,
        read.stale,
    )


def _epoch_entry(
    epoch: int,
    batch_len: int,
    commit: float,
    lats: Sequence[float],
    outage: bool,
) -> Dict:
    digest = latency_summary(lats)
    return {
        "epoch": epoch,
        "events": batch_len,
        "commit_seconds": commit,
        "p50_seconds": digest["p50"],
        "p99_seconds": digest["p99"],
        "max_seconds": digest["max"],
        "outage_after": outage,
    }


def _chaos_injector(config: SoakConfig, stream: Optional[str]) -> Optional[FaultInjector]:
    if not config.chaos or stream is None:
        return None
    # Seeded low-probability torn flushes on the scheme's log stream:
    # some recoveries mid-soak must degrade through the replay rung,
    # and the run stays exact (events stay intact) and deterministic.
    return FaultInjector(
        [FaultSpec("torn", target="log", probability=0.05, stream=stream)],
        seed=config.seed,
    )


# ---------------------------------------------------------------------------
# single-node soak
# ---------------------------------------------------------------------------


def _probe_capacity_single(config: SoakConfig, workload, events) -> float:
    probe = SCHEMES[config.scheme](
        workload,
        num_workers=config.num_workers,
        epoch_len=config.epoch_len,
        snapshot_interval=config.snapshot_interval,
    )
    report = probe.process_stream(events[: 2 * config.epoch_len])
    return report.throughput_eps


def _run_single(config: SoakConfig) -> SoakResult:
    workload = _make_workload(config)
    events = workload.generate(config.num_events, config.seed)
    capacity = _probe_capacity_single(config, workload, events)
    offered_eps = capacity * config.offered_load_factor
    admission = TokenBucketAdmission(
        offered_eps * config.admission_headroom, config.burst
    )

    scheme_cls = SCHEMES[config.scheme]
    stream = scheme_cls.log_streams[0] if scheme_cls.log_streams else None
    injector = _chaos_injector(config, stream)
    scheme: FTScheme = scheme_cls(
        workload,
        num_workers=config.num_workers,
        epoch_len=config.epoch_len,
        snapshot_interval=config.snapshot_interval,
        disk=Disk(faults=injector) if injector else None,
        gc_keep_checkpoints=2,
        backend=config.backend,
    )
    truth = _TruthCache(workload, events) if config.verify else None
    crash_after = set(config.crash_schedule())
    L = config.epoch_len

    latencies: List[float] = []
    series: List[Dict] = []
    outages: List[OutageRecord] = []
    samples: List[Tuple] = []
    degraded_ok = True
    outage_total = 0.0

    for epoch in range(config.epochs):
        batch = events[epoch * L : (epoch + 1) * L]
        arrivals = [e.seq / offered_eps for e in batch]
        close = 0.0
        for arrival in arrivals:
            close = admission.admit(arrival)
        scheme.machine.advance_all_to(close)
        scheme.process_stream(batch)
        commit = scheme.machine.elapsed()
        epoch_lats = [commit - a for a in arrivals]
        latencies.extend(epoch_lats)
        is_crash = epoch in crash_after
        series.append(_epoch_entry(epoch, len(batch), commit, epoch_lats, is_crash))
        if not is_crash:
            continue

        # -- seeded outage: crash, serve stale, recover, back off ------
        t0 = scheme.machine.elapsed()
        scheme.crash()
        reads = [
            scheme.degraded_read(StateRef(TABLE, key))
            for key in _degraded_keys(config, len(outages))
        ]
        samples.extend(_sample(r) for r in reads)
        degraded_ok = degraded_ok and _check_degraded_reads(
            reads, epoch, L, truth, (epoch + 1) * L
        )
        report = scheme.recover()
        mttr = report.elapsed_total_seconds
        window = config.detection_seconds + mttr
        scheme.machine.advance_all_to(t0 + window)
        admission.gate = scheme.machine.elapsed()
        outage_total += window
        outages.append(
            OutageRecord(
                epoch=epoch,
                kind="crash",
                mttr_seconds=mttr,
                detection_seconds=config.detection_seconds,
                rto_seconds=window,
                outage_seconds=window,
                rpo_events=0,
                degraded_reads=len(reads),
                stale_reads=sum(1 for r in reads if r.stale),
                fresh_reads=sum(1 for r in reads if not r.stale),
                max_staleness_epochs=max(
                    (r.staleness_epochs for r in reads), default=0
                ),
                attempts=report.attempts,
                resumed=report.resumed,
                ladder=dict(report.ladder),
            )
        )

    state_ok = outputs_ok = True
    if config.verify:
        expected_state, expected_outputs = ground_truth(workload, events)
        state_ok = scheme.store.equals(expected_state)
        outputs_ok = scheme.sink.outputs() == expected_outputs

    return _finalize(
        config,
        duration=scheme.machine.elapsed(),
        capacity=capacity,
        offered_eps=offered_eps,
        latencies=latencies,
        series=series,
        outages=outages,
        outage_total=outage_total,
        admission=admission,
        samples=samples,
        state_ok=state_ok,
        outputs_ok=outputs_ok,
        degraded_ok=degraded_ok,
    )


# ---------------------------------------------------------------------------
# cluster soak
# ---------------------------------------------------------------------------


def _cluster_kills(config: SoakConfig, topology: ClusterTopology) -> List[ClusterFault]:
    """Seeded correlated kills: one node per cycle, width 1 <= f."""
    rng = random.Random(config.seed * 6151 + 29)
    kills = []
    for after in config.crash_schedule():
        node = rng.randrange(topology.num_nodes)
        rack, node_in_rack = divmod(node, config.nodes_per_rack)
        # after_epoch counts completed epochs (1-based).
        kills.append(ClusterFault(f"node:{rack}.{node_in_rack}", after_epoch=after + 1))
    return kills


def _build_cluster(
    config: SoakConfig,
    workload,
    topology: ClusterTopology,
    plan: Optional[ClusterFaultPlan],
) -> ShardedCluster:
    return ShardedCluster(
        workload,
        topology,
        placement=config.placement,
        replication=config.replication,
        workers_per_shard=config.num_workers,
        epoch_len=config.epoch_len,
        snapshot_interval=config.snapshot_interval,
        gc_keep_checkpoints=2,
        fault_plan=plan,
        detection_seconds=config.detection_seconds,
        scheme_cls=SCHEMES[config.scheme],
    )


def _advance_cluster(cluster: ShardedCluster, target: float) -> float:
    for shard in cluster.shards:
        shard.machine.advance_all_to(target)
    return cluster.elapsed_seconds()


def _run_cluster(config: SoakConfig) -> SoakResult:
    workload = _make_workload(config)
    events = workload.generate(config.num_events, config.seed)
    topology = ClusterTopology(config.shards, config.racks, config.nodes_per_rack)

    probe = _build_cluster(config, workload, topology, None)
    capacity = probe.process_stream(events[: 2 * config.epoch_len]).throughput_eps
    offered_eps = capacity * config.offered_load_factor
    admission = TokenBucketAdmission(
        offered_eps * config.admission_headroom, config.burst
    )

    plan = ClusterFaultPlan(kills=_cluster_kills(config, topology))
    cluster = _build_cluster(config, workload, topology, plan)
    truth = _TruthCache(workload, events) if config.verify else None
    L = config.epoch_len

    latencies: List[float] = []
    series: List[Dict] = []
    outages: List[OutageRecord] = []
    samples: List[Tuple] = []
    degraded_ok = True
    outage_total = 0.0
    rpo_events = 0

    for epoch in range(config.epochs):
        batch = events[epoch * L : (epoch + 1) * L]
        arrivals = [e.seq / offered_eps for e in batch]
        close = 0.0
        for arrival in arrivals:
            close = admission.admit(arrival)
        _advance_cluster(cluster, close)
        cluster.process_stream(batch)
        commit = cluster.elapsed_seconds()
        epoch_lats = [commit - a for a in arrivals]
        latencies.extend(epoch_lats)
        series.append(
            _epoch_entry(epoch, len(batch), commit, epoch_lats, cluster.crashed)
        )
        if not cluster.crashed:
            continue

        # -- correlated kill fired at this epoch boundary --------------
        t0 = cluster.elapsed_seconds()
        kind = "kill:" + ",".join(map(str, cluster.dead_shards))
        reads = [
            cluster.degraded_read(StateRef(TABLE, key))
            for key in _degraded_keys(config, len(outages))
        ]
        samples.extend(_sample(r) for r in reads)
        degraded_ok = degraded_ok and _check_degraded_reads(
            reads, epoch, L, truth, (epoch + 1) * L
        )
        report = cluster.recover()
        rpo_events += report.rpo_events
        window = report.rto_seconds
        _advance_cluster(cluster, t0 + window)
        admission.gate = cluster.elapsed_seconds()
        outage_total += window
        outages.append(
            OutageRecord(
                epoch=epoch,
                kind=kind,
                mttr_seconds=report.max_mttr_seconds,
                detection_seconds=report.detection_seconds,
                rto_seconds=report.rto_seconds,
                outage_seconds=window,
                rpo_events=report.rpo_events,
                degraded_reads=len(reads),
                stale_reads=sum(1 for r in reads if r.stale),
                fresh_reads=sum(1 for r in reads if not r.stale),
                max_staleness_epochs=max(
                    (r.staleness_epochs for r in reads), default=0
                ),
                attempts=max((r.attempts for r in report.per_shard), default=1),
                resumed=any(r.resumed for r in report.per_shard),
                ladder={
                    rung: sum(r.ladder.get(rung, 0) for r in report.per_shard)
                    for rung in {
                        k for r in report.per_shard for k in r.ladder
                    }
                },
            )
        )

    state_ok = outputs_ok = True
    if config.verify:
        state_ok = outputs_ok = cluster.verify_exact()

    return _finalize(
        config,
        duration=cluster.elapsed_seconds(),
        capacity=capacity,
        offered_eps=offered_eps,
        latencies=latencies,
        series=series,
        outages=outages,
        outage_total=outage_total,
        admission=admission,
        samples=samples,
        state_ok=state_ok,
        outputs_ok=outputs_ok,
        degraded_ok=degraded_ok,
        rpo_events=rpo_events,
    )


# ---------------------------------------------------------------------------
# aggregation and entry points
# ---------------------------------------------------------------------------


def _finalize(
    config: SoakConfig,
    *,
    duration: float,
    capacity: float,
    offered_eps: float,
    latencies: List[float],
    series: List[Dict],
    outages: List[OutageRecord],
    outage_total: float,
    admission: TokenBucketAdmission,
    samples: List[Tuple],
    state_ok: bool,
    outputs_ok: bool,
    degraded_ok: bool,
    rpo_events: int = 0,
) -> SoakResult:
    latency = latency_summary(latencies)
    mttr = latency_summary([o.mttr_seconds for o in outages])
    rto_max = max((o.rto_seconds for o in outages), default=0.0)
    throughput = config.num_events / duration if duration > 0 else 0.0
    availability = 1.0 - outage_total / duration if duration > 0 else 1.0
    verdict = evaluate_slo(
        targets=config.slo,
        duration_seconds=duration,
        outage_seconds=outage_total,
        latency_p99_seconds=latency["p99"],
        latency_p999_seconds=latency["p999"],
        mttr_max_seconds=mttr["max"],
        rpo_events=rpo_events,
        throughput_eps=throughput,
    )
    return SoakResult(
        config=config,
        cell=config.cell(),
        duration_seconds=duration,
        events_total=config.num_events,
        capacity_eps=capacity,
        offered_eps=offered_eps,
        throughput_eps=throughput,
        latency=latency,
        epoch_series=series,
        outages=outages,
        outage_seconds=outage_total,
        availability=availability,
        mttr=mttr,
        rto_max_seconds=rto_max,
        rpo_events=rpo_events,
        deferred_events=admission.deferred,
        max_admission_delay_seconds=admission.max_delay_seconds,
        degraded_reads=sum(o.degraded_reads for o in outages),
        stale_reads=sum(o.stale_reads for o in outages),
        fresh_reads=sum(o.fresh_reads for o in outages),
        degraded_samples=samples,
        state_verified=state_ok,
        outputs_verified=outputs_ok,
        degraded_verified=degraded_ok,
        verified=config.verify,
        slo=verdict,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakResult:
    """Run one soak end to end; deterministic for a fixed config."""
    config = config or SoakConfig()
    if config.mode == "cluster":
        return _run_cluster(config)
    return _run_single(config)


def smoke_configs(seed: int = 7) -> List[SoakConfig]:
    """The bounded pair CI soaks on every push: single + one cluster cell.

    SLO targets are set with generous (~3×) headroom over the committed
    baseline so they catch collapses, while the regression gate's
    tolerance band catches creep.
    """
    slo = SLOTargets(
        p99_latency_seconds=1.0,
        p999_latency_seconds=5.0,
        availability=0.5,
        max_mttr_seconds=2.0,
        max_rpo_events=0,
    )
    return [
        SoakConfig(
            mode="single",
            num_keys=512,
            epoch_len=64,
            epochs=14,
            crashes=2,
            num_workers=4,
            detection_seconds=0.0002,
            seed=seed,
            slo=slo,
        ),
        SoakConfig(
            mode="cluster",
            num_keys=256,
            epoch_len=32,
            epochs=10,
            crashes=2,
            num_workers=2,
            shards=4,
            racks=2,
            nodes_per_rack=2,
            replication=1,
            detection_seconds=0.0002,
            seed=seed,
            slo=slo,
        ),
    ]


def soak_payload(result: SoakResult) -> Dict:
    """The JSON document ``repro soak --json`` exports (full detail)."""
    cfg = result.config
    return {
        "schema": SOAK_SCHEMA,
        "cell": result.cell,
        "config": _config_payload(cfg),
        "metrics": _metrics_payload(result),
        "slo": {
            "passed": result.slo.passed,
            "breaches": [
                {"objective": b.objective, "limit": b.limit, "actual": b.actual}
                for b in result.slo.breaches
            ],
            "error_budget": {
                "allowed_outage_seconds": result.slo.budget.allowed_outage_seconds,
                "spent_outage_seconds": result.slo.budget.spent_outage_seconds,
                "burn_fraction": result.slo.budget.burn_fraction,
            },
        },
        "verification": {
            "ran": result.verified,
            "state": result.state_verified,
            "outputs": result.outputs_verified,
            "degraded_reads": result.degraded_verified,
        },
        "admission": {
            "deferred_events": result.deferred_events,
            "max_delay_seconds": result.max_admission_delay_seconds,
        },
        "outages": [
            {
                "epoch": o.epoch,
                "kind": o.kind,
                "mttr_seconds": o.mttr_seconds,
                "detection_seconds": o.detection_seconds,
                "rto_seconds": o.rto_seconds,
                "rpo_events": o.rpo_events,
                "degraded_reads": o.degraded_reads,
                "stale_reads": o.stale_reads,
                "fresh_reads": o.fresh_reads,
                "max_staleness_epochs": o.max_staleness_epochs,
                "attempts": o.attempts,
                "resumed": o.resumed,
                "ladder": dict(o.ladder),
            }
            for o in result.outages
        ],
        "epoch_series": list(result.epoch_series),
        "ok": result.ok,
    }


def _config_payload(cfg: SoakConfig) -> Dict:
    payload = {
        "mode": cfg.mode,
        "scheme": cfg.scheme,
        "num_keys": cfg.num_keys,
        "epoch_len": cfg.epoch_len,
        "epochs": cfg.epochs,
        "crashes": cfg.crashes,
        "num_workers": cfg.num_workers,
        "snapshot_interval": cfg.snapshot_interval,
        "skew": cfg.skew,
        "seed": cfg.seed,
        "offered_load_factor": cfg.offered_load_factor,
        "admission_headroom": cfg.admission_headroom,
        "burst": cfg.burst,
        "chaos": cfg.chaos,
    }
    if cfg.mode == "cluster":
        payload.update(
            shards=cfg.shards,
            racks=cfg.racks,
            nodes_per_rack=cfg.nodes_per_rack,
            replication=cfg.replication,
            placement=cfg.placement,
        )
    return payload


def _metrics_payload(result: SoakResult) -> Dict:
    return {
        "throughput_eps": result.throughput_eps,
        "capacity_eps": result.capacity_eps,
        "offered_eps": result.offered_eps,
        "latency_p50_seconds": result.latency["p50"],
        "latency_p99_seconds": result.latency["p99"],
        "latency_p999_seconds": result.latency["p999"],
        "latency_max_seconds": result.latency["max"],
        "mttr_mean_seconds": result.mttr["mean"],
        "mttr_max_seconds": result.mttr["max"],
        "rto_max_seconds": result.rto_max_seconds,
        "rpo_events": result.rpo_events,
        "availability": result.availability,
        "outage_seconds": result.outage_seconds,
        "duration_seconds": result.duration_seconds,
        "degraded_reads": result.degraded_reads,
        "stale_reads": result.stale_reads,
        "deferred_events": result.deferred_events,
    }


def bench_record(result: SoakResult, label: str = "") -> Dict:
    """One stable-schema trajectory record (appended across PRs).

    Deliberately free of wall-clock timestamps: the simulator is pure
    virtual time, so the same commit always reproduces the same record
    bit for bit and the CI gate can compare exactly.
    """
    record = {
        "cell": result.cell,
        "config": _config_payload(result.config),
        "metrics": _metrics_payload(result),
        "slo_passed": result.slo.passed,
        "ok": result.ok,
    }
    if label:
        record["label"] = label
    return record
