"""Declarative SLOs, error budgets and the cross-PR perf trajectory.

Two concerns live here, both consumed by the soak harness and CI:

**SLO evaluation.**  :class:`SLOTargets` states the availability-centric
objectives of Vogel et al. declaratively (latency percentiles, recovery
time, recovery point, availability); :func:`evaluate_slo` grades one
soak run against them and accounts the *error budget*: a target of
99.5% availability over a T-second run allows ``0.005 * T`` seconds of
outage, and the verdict reports how much of that budget the run burned.

**Perf trajectory.**  ``BENCH_soak.json`` is the repo's performance
memory: a schema-versioned, append-only list of soak records, one per
committed run.  :func:`regression_gate` compares a fresh record against
the newest committed record of the same *cell* (identical config
fingerprint) and fails loudly when throughput drops, p99 latency rises
or MTTR rises beyond a tolerance band — so a PR that regresses recovery
or runtime performance turns CI red instead of silently shipping.
Loading tolerates unknown fields, so future schema extensions never
break an old gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigError

#: Schema identifier; bump the suffix on incompatible layout changes.
BENCH_SCHEMA = "repro.soak.bench/v1"

#: Metric keys a bench record's ``metrics`` block must carry.
REQUIRED_METRICS = (
    "throughput_eps",
    "latency_p50_seconds",
    "latency_p99_seconds",
    "latency_p999_seconds",
    "mttr_mean_seconds",
    "mttr_max_seconds",
    "rto_max_seconds",
    "rpo_events",
    "availability",
    "degraded_reads",
)


# ---------------------------------------------------------------------------
# SLO targets and evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLOTargets:
    """Declarative service-level objectives for one soak run."""

    #: end-to-end latency bounds (virtual seconds).
    p99_latency_seconds: float = 5.0
    p999_latency_seconds: float = 30.0
    #: fraction of the run the service must be up (writes accepted).
    availability: float = 0.995
    #: worst tolerated single recovery (detection + replay), seconds.
    max_mttr_seconds: float = 120.0
    #: acknowledged events the run may lose (recovery-point objective).
    max_rpo_events: int = 0
    #: floor on sustained throughput; 0 disables the check.
    min_throughput_eps: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability <= 1.0:
            raise ConfigError("availability target must be in (0, 1]")
        for name in ("p99_latency_seconds", "p999_latency_seconds",
                     "max_mttr_seconds"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.max_rpo_events < 0:
            raise ConfigError("max_rpo_events must be >= 0")


@dataclass(frozen=True)
class SLOBreach:
    """One objective the run failed, with the numbers."""

    objective: str
    limit: float
    actual: float

    def describe(self) -> str:
        return f"{self.objective}: {self.actual:.6g} vs limit {self.limit:.6g}"


@dataclass
class ErrorBudget:
    """Availability error-budget accounting for one run."""

    #: outage seconds the availability target allows over this run.
    allowed_outage_seconds: float
    #: outage seconds actually spent (detection + recovery windows).
    spent_outage_seconds: float

    @property
    def remaining_seconds(self) -> float:
        return self.allowed_outage_seconds - self.spent_outage_seconds

    @property
    def burn_fraction(self) -> float:
        """Budget consumed; > 1.0 means the availability SLO is blown."""
        if self.allowed_outage_seconds <= 0:
            return float("inf") if self.spent_outage_seconds > 0 else 0.0
        return self.spent_outage_seconds / self.allowed_outage_seconds


@dataclass
class SLOVerdict:
    """Pass/fail plus every breached objective and the error budget."""

    passed: bool
    breaches: List[SLOBreach]
    budget: ErrorBudget

    def describe(self) -> str:
        if self.passed:
            return (
                "SLO met — error budget burned "
                f"{self.budget.burn_fraction:.0%}"
            )
        return "SLO BREACH — " + "; ".join(b.describe() for b in self.breaches)


def evaluate_slo(
    *,
    targets: SLOTargets,
    duration_seconds: float,
    outage_seconds: float,
    latency_p99_seconds: float,
    latency_p999_seconds: float,
    mttr_max_seconds: float,
    rpo_events: int,
    throughput_eps: float,
) -> SLOVerdict:
    """Grade one run's availability-centric metrics against ``targets``."""
    breaches: List[SLOBreach] = []
    if latency_p99_seconds > targets.p99_latency_seconds:
        breaches.append(SLOBreach(
            "p99 latency", targets.p99_latency_seconds, latency_p99_seconds
        ))
    if latency_p999_seconds > targets.p999_latency_seconds:
        breaches.append(SLOBreach(
            "p999 latency", targets.p999_latency_seconds, latency_p999_seconds
        ))
    availability = (
        1.0 - outage_seconds / duration_seconds if duration_seconds > 0 else 1.0
    )
    if availability < targets.availability:
        breaches.append(SLOBreach(
            "availability", targets.availability, availability
        ))
    if mttr_max_seconds > targets.max_mttr_seconds:
        breaches.append(SLOBreach(
            "max MTTR", targets.max_mttr_seconds, mttr_max_seconds
        ))
    if rpo_events > targets.max_rpo_events:
        breaches.append(SLOBreach(
            "RPO events", float(targets.max_rpo_events), float(rpo_events)
        ))
    if targets.min_throughput_eps and throughput_eps < targets.min_throughput_eps:
        breaches.append(SLOBreach(
            "throughput", targets.min_throughput_eps, throughput_eps
        ))
    budget = ErrorBudget(
        allowed_outage_seconds=(1.0 - targets.availability) * duration_seconds,
        spent_outage_seconds=outage_seconds,
    )
    return SLOVerdict(passed=not breaches, breaches=breaches, budget=budget)


# ---------------------------------------------------------------------------
# BENCH trajectory: load / append / gate
# ---------------------------------------------------------------------------


def new_trajectory() -> Dict:
    return {"schema": BENCH_SCHEMA, "records": []}


def validate_record(record: Dict) -> None:
    """Structural check for one bench record (unknown fields are fine)."""
    if not isinstance(record, dict):
        raise ConfigError("bench record must be an object")
    for key in ("cell", "metrics"):
        if key not in record:
            raise ConfigError(f"bench record missing required key {key!r}")
    metrics = record["metrics"]
    if not isinstance(metrics, dict):
        raise ConfigError("bench record 'metrics' must be an object")
    missing = [k for k in REQUIRED_METRICS if k not in metrics]
    if missing:
        raise ConfigError(f"bench record metrics missing {missing}")


def load_trajectory(path: Path) -> Dict:
    """Load ``BENCH_soak.json``; tolerant of unknown fields everywhere.

    Raises :class:`ConfigError` on a wrong schema tag or a record that
    lacks the required keys — a malformed trajectory must never pass the
    gate silently.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ConfigError(
            f"{path}: not a {BENCH_SCHEMA} trajectory "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    records = doc.get("records")
    if not isinstance(records, list):
        raise ConfigError(f"{path}: 'records' must be a list")
    for record in records:
        validate_record(record)
    return doc


def append_record(path: Path, record: Dict) -> Dict:
    """Append ``record`` to the trajectory at ``path`` (created if absent).

    Existing records — including any fields this version does not know
    about — are preserved byte-for-byte at the JSON level.
    """
    validate_record(record)
    path = Path(path)
    doc = load_trajectory(path) if path.exists() else new_trajectory()
    doc["records"].append(record)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def baseline_for(trajectory: Dict, cell: str) -> Optional[Dict]:
    """The newest committed record of the same cell, or ``None``."""
    for record in reversed(trajectory.get("records", [])):
        if record.get("cell") == cell:
            return record
    return None


@dataclass(frozen=True)
class GateTolerance:
    """The band within which metric drift is not a regression."""

    #: fractional throughput drop tolerated (0.10 = -10%).
    throughput_drop: float = 0.10
    #: fractional p99 latency rise tolerated.
    p99_rise: float = 0.25
    #: fractional worst-MTTR rise tolerated.
    mttr_rise: float = 0.25


@dataclass(frozen=True)
class GateComparison:
    """One gated metric: candidate vs baseline and the verdict."""

    metric: str
    baseline: float
    candidate: float
    #: "improved" | "within-band" | "REGRESSED"
    verdict: str

    @property
    def regressed(self) -> bool:
        return self.verdict == "REGRESSED"


@dataclass
class GateResult:
    """Outcome of gating one record against the committed trajectory."""

    cell: str
    passed: bool
    comparisons: List[GateComparison] = field(default_factory=list)
    #: set when the trajectory holds no baseline for this cell — the
    #: gate passes vacuously (first run of a new cell seeds it).
    no_baseline: bool = False

    def describe(self) -> str:
        if self.no_baseline:
            return f"{self.cell}: no committed baseline — gate passes, seed it"
        parts = [
            f"{c.metric} {c.verdict} ({c.baseline:.6g} -> {c.candidate:.6g})"
            for c in self.comparisons
        ]
        prefix = "gate OK" if self.passed else "PERF REGRESSION"
        return f"{self.cell}: {prefix} — " + ", ".join(parts)


def _compare(
    metric: str, baseline: float, candidate: float,
    tolerance: float, higher_is_better: bool,
) -> GateComparison:
    if baseline <= 0:
        # A zero baseline (e.g. MTTR 0 in a crash-free cell) cannot
        # anchor a relative band; only flag a strict worsening.
        worse = candidate < baseline if higher_is_better else candidate > baseline
        verdict = "REGRESSED" if worse else "within-band"
        return GateComparison(metric, baseline, candidate, verdict)
    ratio = candidate / baseline
    if higher_is_better:
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSED"
        elif ratio > 1.0:
            verdict = "improved"
        else:
            verdict = "within-band"
    else:
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
        elif ratio < 1.0:
            verdict = "improved"
        else:
            verdict = "within-band"
    return GateComparison(metric, baseline, candidate, verdict)


def regression_gate(
    trajectory: Dict,
    record: Dict,
    tolerance: GateTolerance = GateTolerance(),
) -> GateResult:
    """Gate ``record`` against the trajectory's baseline for its cell.

    Three metrics are gated — throughput (must not drop), p99 latency
    and worst MTTR (must not rise) — each within its tolerance band.
    Any single regression fails the gate.
    """
    validate_record(record)
    cell = record["cell"]
    baseline = baseline_for(trajectory, cell)
    if baseline is None:
        return GateResult(cell=cell, passed=True, no_baseline=True)
    base_m, cand_m = baseline["metrics"], record["metrics"]
    comparisons = [
        _compare(
            "throughput_eps",
            float(base_m["throughput_eps"]),
            float(cand_m["throughput_eps"]),
            tolerance.throughput_drop,
            higher_is_better=True,
        ),
        _compare(
            "latency_p99_seconds",
            float(base_m["latency_p99_seconds"]),
            float(cand_m["latency_p99_seconds"]),
            tolerance.p99_rise,
            higher_is_better=False,
        ),
        _compare(
            "mttr_max_seconds",
            float(base_m["mttr_max_seconds"]),
            float(cand_m["mttr_max_seconds"]),
            tolerance.mttr_rise,
            higher_is_better=False,
        ),
    ]
    return GateResult(
        cell=cell,
        passed=not any(c.regressed for c in comparisons),
        comparisons=comparisons,
    )


def targets_payload(targets: SLOTargets) -> Dict:
    return asdict(targets)
