"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent (fixed-width tables, SI-ish
number formatting, per-bucket breakdown rows).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro import buckets


def format_seconds(seconds: float) -> str:
    """Human-scale duration: µs/ms/s with three significant digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_throughput(eps: float) -> str:
    """Events/second with k/M suffix."""
    if eps >= 1e6:
        return f"{eps / 1e6:.2f}M/s"
    if eps >= 1e3:
        return f"{eps / 1e3:.1f}k/s"
    return f"{eps:.0f}/s"


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def recovery_breakdown_rows(
    results: Dict[str, Dict[str, float]]
) -> List[List[str]]:
    """Rows of (scheme, per-bucket seconds..., total) for Fig. 11."""
    rows = []
    for scheme, bucket_map in results.items():
        row = [scheme]
        total = 0.0
        for bucket in buckets.RECOVERY_BUCKETS:
            value = bucket_map.get(bucket, 0.0)
            total += value
            row.append(format_seconds(value))
        row.append(format_seconds(total))
        rows.append(row)
    return rows


def print_figure(title: str, table: str) -> None:
    """Print one figure reproduction with a banner."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}\n{table}")
