"""Sweep analysis: speedups, crossovers, scaling efficiency, percentiles.

Helpers the experiment layer uses to turn raw sweep series into the
derived quantities EXPERIMENTS.md reports — "MSR is N× the sub-optimal
scheme", "the crossover falls at ratio r", "scaling efficiency at 32
cores".  Pure functions over ``(x, y)`` point lists; deterministic and
unit-tested, so the derived claims are as reproducible as the raw data.

The percentile helpers (:func:`percentile`, :func:`latency_summary`)
are the single implementation every latency/MTTR summary in the repo
uses — the soak harness, the chaos report and the SLO gate all quote
the same interpolated quantiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

Points = Sequence[Tuple[float, float]]


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of ``values`` with linear interpolation.

    ``p`` is in ``[0, 100]``.  Uses the standard "linear" (inclusive)
    definition: the rank ``p/100 * (n - 1)`` is interpolated between
    its two neighbouring order statistics, so ``percentile(v, 50)`` of
    an even-sized sample is the midpoint of the middle pair.
    """
    if not values:
        raise ConfigError("percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise ConfigError(f"percentile must be in [0, 100], got {p!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def p50(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def p99(values: Sequence[float]) -> float:
    return percentile(values, 99.0)


def p999(values: Sequence[float]) -> float:
    return percentile(values, 99.9)


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """The canonical latency digest: p50/p99/p999 plus mean and max.

    Every place the repo summarizes a latency (or MTTR) sample exports
    exactly these keys, so trajectories and reports stay comparable.
    """
    if not values:
        return {
            "count": 0,
            "p50": 0.0,
            "p99": 0.0,
            "p999": 0.0,
            "mean": 0.0,
            "max": 0.0,
        }
    return {
        "count": len(values),
        "p50": percentile(values, 50.0),
        "p99": percentile(values, 99.0),
        "p999": percentile(values, 99.9),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def speedup_vs_suboptimal(totals: Dict[str, float], best: str) -> float:
    """``best``'s advantage over the best of the others.

    ``totals`` maps scheme -> a *lower-is-better* metric (e.g. recovery
    seconds).  Returns ``suboptimal / best`` — the paper's "reduces the
    recovery time by N× compared with sub-optimal approaches".
    """
    if best not in totals:
        raise ConfigError(f"unknown scheme {best!r}")
    others = [v for name, v in totals.items() if name != best]
    if not others:
        raise ConfigError("need at least two schemes to compare")
    if totals[best] <= 0:
        raise ConfigError("metric must be positive")
    return min(others) / totals[best]


def crossover(a: Points, b: Points) -> Optional[float]:
    """The x where series ``a`` overtakes series ``b`` (or vice versa).

    Both series must share the same x grid.  Returns the linearly
    interpolated x of the first sign change of ``a - b``, or ``None``
    if one series dominates throughout.
    """
    if [x for x, _ in a] != [x for x, _ in b]:
        raise ConfigError("series must share the same x grid")
    if not a:
        return None
    diffs = [(x, ya - yb) for (x, ya), (_x, yb) in zip(a, b)]
    for (x0, d0), (x1, d1) in zip(diffs, diffs[1:]):
        if d0 == 0:
            return x0
        if (d0 < 0) != (d1 < 0):
            # Linear interpolation of the zero crossing.
            return x0 + (x1 - x0) * (abs(d0) / (abs(d0) + abs(d1)))
    if diffs[-1][1] == 0:
        return diffs[-1][0]
    return None


def scaling_efficiency(points: Points) -> float:
    """Parallel efficiency at the largest core count.

    ``points`` are (cores, throughput); efficiency is the achieved
    speedup over the 1-point divided by the ideal (core ratio).
    """
    if len(points) < 2:
        raise ConfigError("need at least two core counts")
    ordered = sorted(points)
    c0, t0 = ordered[0]
    c1, t1 = ordered[-1]
    if t0 <= 0 or c0 <= 0:
        raise ConfigError("cores and throughput must be positive")
    return (t1 / t0) / (c1 / c0)


def monotonic_fraction(points: Points, increasing: bool = True) -> float:
    """Fraction of consecutive steps moving in the claimed direction.

    1.0 means strictly monotone; sweeps with measurement jitter report
    slightly less.  Used to assert "X improves/degrades with Y" claims
    without requiring perfect monotonicity.
    """
    if len(points) < 2:
        raise ConfigError("need at least two points")
    steps = list(zip(points, points[1:]))
    good = sum(
        1
        for (_x0, y0), (_x1, y1) in steps
        if (y1 >= y0) == increasing or y1 == y0
    )
    return good / len(steps)


def relative_overhead(value: float, baseline: float) -> float:
    """``value`` as a fractional overhead over ``baseline`` (0.2 = +20%)."""
    if baseline <= 0:
        raise ConfigError("baseline must be positive")
    return value / baseline - 1.0


def summarize_sweep(
    results: Dict[str, Points]
) -> List[Tuple[str, float, float, float]]:
    """Per scheme: (name, min y, max y, last/first ratio) for a sweep."""
    summary = []
    for name, points in results.items():
        if not points:
            continue
        ys = [y for _x, y in points]
        first = ys[0] if ys[0] else float("nan")
        summary.append((name, min(ys), max(ys), ys[-1] / first))
    return summary
