"""Fig. 11 regression gate: MSR must keep beating the strong baselines.

ISSUE 10 added baselines that fight back (PACMAN parallel redo,
compressed Taurus vectors), which makes the headline claim — MSR
recovers fastest — falsifiable by any future cost-model or scheduler
change.  This gate pins the claim in CI: it reruns a reduced,
deterministic Fig. 11-style recovery comparison and checks MSR's
speedup over every baseline against the committed ``BENCH_fig11.json``.
A PR that slows MSR relative to the stronger baselines (or breaks a
scheme outright) fails loudly instead of silently eroding the headline.

Everything here runs on the virtual-clock simulator, so the measured
seconds are bit-deterministic across runs and machines; the tolerance
only absorbs *intentional* cost-model recalibrations, not noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro import SCHEMES
from repro.harness import figures
from repro.harness.runner import ExperimentConfig, run_experiment

#: Format marker for the exported payload.
GATE_SCHEMA = "bench-fig11/v1"

#: Schemes the gate compares against MSR — every recovery baseline,
#: including the two strong ones this gate exists to guard against.
GATE_BASELINES: Tuple[str, ...] = ("CKPT", "WAL", "PACMAN", "DL", "LV", "LVC")

#: Workloads the gate measures: the dependency-heavy default ledger
#: (where restructuring wins) and the low-dependency Grep&Sum sweep
#: point (where PACMAN's zero-sync redo is strongest — the hardest
#: point for MSR to defend).
def _gate_workloads() -> Dict[str, Callable]:
    return {
        "SL": figures.sl_factory(),
        "GS-lowdep": figures.gs_factory(
            skew=0.0, multi_partition_ratio=0.0, abort_ratio=0.0
        ),
    }


#: Reduced, CI-sized experiment scale (deterministic virtual time).
GATE_EPOCH_LEN = 96
GATE_SNAPSHOT_INTERVAL = 4
GATE_RECOVER_EPOCHS = 3
GATE_WORKERS = 4
GATE_SEED = 7

#: Relative slack on each speedup ratio before the gate trips.  Virtual
#: time is deterministic, so this only absorbs deliberate recalibration.
GATE_TOLERANCE = 0.10


def _recovery_seconds(scheme_name: str, factory: Callable) -> float:
    config = ExperimentConfig(
        workload_factory=factory,
        scheme=SCHEMES[scheme_name],
        num_workers=GATE_WORKERS,
        epoch_len=GATE_EPOCH_LEN,
        snapshot_interval=GATE_SNAPSHOT_INTERVAL,
        recover_epochs=GATE_RECOVER_EPOCHS,
        seed=GATE_SEED,
    )
    result = run_experiment(config)
    assert result.recovery is not None
    return result.recovery.elapsed_seconds


def compute_gate() -> Dict:
    """Measure MSR's speedup over every baseline on the gate workloads."""
    workloads: Dict[str, Dict[str, float]] = {}
    for app, factory in _gate_workloads().items():
        seconds = {
            name: _recovery_seconds(name, factory)
            for name in ("MSR",) + GATE_BASELINES
        }
        msr = seconds["MSR"]
        workloads[app] = {
            "recovery_seconds": seconds,
            "msr_speedup": {
                name: seconds[name] / msr for name in GATE_BASELINES
            },
        }
    return {
        "schema": GATE_SCHEMA,
        "config": {
            "epoch_len": GATE_EPOCH_LEN,
            "snapshot_interval": GATE_SNAPSHOT_INTERVAL,
            "recover_epochs": GATE_RECOVER_EPOCHS,
            "num_workers": GATE_WORKERS,
            "seed": GATE_SEED,
            "tolerance": GATE_TOLERANCE,
        },
        "workloads": workloads,
    }


def compare_gate(current: Dict, baseline: Dict) -> List[str]:
    """Regressions of ``current`` against the committed ``baseline``.

    Returns one human-readable line per violated bound (empty list =
    gate passes).  Two checks per (workload, baseline-scheme) pair:

    - MSR's speedup over the scheme must not fall below the committed
      speedup by more than the tolerance — MSR losing ground to a
      baseline is exactly the regression this gate exists to catch;
    - MSR must still strictly beat every baseline (speedup > 1.0), the
      acceptance headline, regardless of how stale the baseline file is.
    """
    problems: List[str] = []
    if baseline.get("schema") != GATE_SCHEMA:
        return [
            f"baseline schema {baseline.get('schema')!r} != {GATE_SCHEMA!r} "
            "(regenerate with: repro figgate --update)"
        ]
    tolerance = float(baseline.get("config", {}).get("tolerance", GATE_TOLERANCE))
    for app, committed in baseline.get("workloads", {}).items():
        measured = current["workloads"].get(app)
        if measured is None:
            problems.append(f"{app}: workload missing from current run")
            continue
        for scheme, committed_speedup in committed["msr_speedup"].items():
            speedup = measured["msr_speedup"].get(scheme)
            if speedup is None:
                problems.append(f"{app}: scheme {scheme} missing from current run")
                continue
            floor = committed_speedup * (1.0 - tolerance)
            if speedup < floor:
                problems.append(
                    f"{app}: MSR speedup over {scheme} regressed to "
                    f"{speedup:.3f}x (committed {committed_speedup:.3f}x, "
                    f"floor {floor:.3f}x)"
                )
            if speedup <= 1.0:
                problems.append(
                    f"{app}: MSR no longer beats {scheme} "
                    f"({speedup:.3f}x <= 1.0x)"
                )
    return problems


def load_baseline(path: Path) -> Dict:
    with path.open("r", encoding="utf-8") as fh:
        return json.load(fh)


def describe_gate(payload: Dict) -> str:
    lines = []
    for app, row in payload["workloads"].items():
        speedups = ", ".join(
            f"{scheme} {ratio:.2f}x"
            for scheme, ratio in sorted(
                row["msr_speedup"].items(), key=lambda kv: kv[1]
            )
        )
        lines.append(f"{app}: MSR speedup over baselines — {speedups}")
    return "\n".join(lines)
