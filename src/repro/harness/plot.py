"""Terminal plotting: ASCII line charts and bar charts.

Benchmarks and the CLI print tables by default; these helpers add a
visual rendering for sweeps (Figs. 9, 13, 14) and comparisons (Figs. 2,
11, 12) without any plotting dependency.  Output is deterministic plain
text, suitable for committing next to EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError

#: Glyphs cycled across series in multi-series charts.
SERIES_GLYPHS = "ox+*#@%&"


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labeled values, scaled to the maximum.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ████  2
    b  ██    1
    """
    if width < 1:
        raise ConfigError("width must be >= 1")
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = round(value / peak * width)
        bar = "█" * filled + " " * (width - filled)
        lines.append(
            f"{label.rjust(label_width)}  {bar}  {_format_number(value)}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is a list of (x, y) points; every series gets one glyph
    from :data:`SERIES_GLYPHS` and a legend line.  Points are plotted on
    a ``width`` x ``height`` grid with linear scales spanning the data.
    """
    if width < 2 or height < 2:
        raise ConfigError("width and height must be >= 2")
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph

    top = _format_number(y_max)
    bottom = _format_number(y_min)
    gutter = max(len(top), len(bottom))
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            margin = top.rjust(gutter)
        elif row_index == height - 1:
            margin = bottom.rjust(gutter)
        else:
            margin = " " * gutter
        lines.append(f"{margin} |{''.join(row)}")
    lines.append(f"{' ' * gutter} +{'-' * width}")
    x_axis = (
        f"{' ' * gutter}  {_format_number(x_min)}"
        f"{' ' * max(1, width - len(_format_number(x_min)) - len(_format_number(x_max)))}"
        f"{_format_number(x_max)}"
    )
    lines.append(x_axis)
    if x_label or y_label:
        lines.append(
            f"{' ' * gutter}  x: {x_label or '-'}   y: {y_label or '-'}"
        )
    lines.append(f"{' ' * gutter}  {'   '.join(legend)}")
    return "\n".join(lines)


def _format_number(value: float) -> str:
    """Compact numeric label: SI suffixes above 1000, trimmed decimals."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}"
    if magnitude >= 1 or value == 0:
        return f"{value:.4g}"
    return f"{value:.3g}"
