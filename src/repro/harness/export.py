"""Result export: JSON and CSV artifacts for every figure.

Benchmarks print tables; this module persists the same data as files so
EXPERIMENTS.md can be regenerated mechanically and downstream tooling
(plots, diffs between calibrations) has stable inputs.

The JSON layout is uniform: ``{"figure": ..., "scale": {...},
"data": <figure-specific>}`` with the figure-specific part exactly what
:mod:`repro.harness.figures` returned.  CSV export flattens the common
shapes (scheme→scalar maps, scheme→curve maps, breakdown tables).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict

from repro.errors import ConfigError
from repro.harness.figures import FigureScale


def figure_payload(name: str, scale: FigureScale, data: Any) -> Dict:
    """The canonical JSON document for one reproduced figure."""
    return {
        "figure": name,
        "scale": asdict(scale),
        "data": data,
    }


def write_json(path: Path, payload: Dict) -> None:
    """Write a payload with stable formatting (sorted keys, 2-space)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_json(path: Path) -> Dict:
    return json.loads(Path(path).read_text())


def to_csv(data: Any) -> str:
    """Flatten a figure's data into CSV.

    Supported shapes (everything :mod:`figures` produces):

    - ``{key: scalar}`` → two columns;
    - ``{key: {subkey: scalar}}`` → one row per key, one column per subkey;
    - ``{key: [(x, y...), ...]}`` → long format: key, x, y columns;
    - ``[(x, y...), ...]`` → x, y columns.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if isinstance(data, dict):
        first = next(iter(data.values()), None)
        if isinstance(first, dict):
            columns = sorted({k for row in data.values() for k in row})
            writer.writerow(["key", *columns])
            for key, row in data.items():
                writer.writerow([key, *(row.get(c, "") for c in columns)])
        elif isinstance(first, (list, tuple)):
            width = max((len(p) for pts in data.values() for p in pts), default=2)
            writer.writerow(
                ["key", "x", *(f"y{i}" for i in range(1, width))]
            )
            for key, points in data.items():
                for point in points:
                    writer.writerow([key, *point])
        else:
            writer.writerow(["key", "value"])
            for key, value in data.items():
                writer.writerow([key, value])
    elif isinstance(data, (list, tuple)):
        width = max((len(p) for p in data), default=2)
        writer.writerow(["x", *(f"y{i}" for i in range(1, width))])
        for point in data:
            writer.writerow(list(point))
    else:
        raise ConfigError(f"cannot flatten {type(data).__name__} to CSV")
    return buffer.getvalue()


def export_figure(
    name: str,
    scale: FigureScale,
    data: Any,
    out_dir: Path,
) -> Dict[str, Path]:
    """Write ``<name>.json`` and ``<name>.csv`` under ``out_dir``.

    Nested per-app figures (fig11/fig12a/fig13) get one CSV per app.
    Returns the written paths keyed by artifact name.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    json_path = out_dir / f"{name}.json"
    write_json(json_path, figure_payload(name, scale, _jsonable(data)))
    written["json"] = json_path

    if isinstance(data, dict) and data and all(
        isinstance(v, dict)
        and v
        and isinstance(next(iter(v.values())), (dict, list, tuple))
        for v in data.values()
    ):
        # app -> scheme -> row/curve: one CSV per app.
        for app, per_app in data.items():
            csv_path = out_dir / f"{name}_{app}.csv"
            csv_path.write_text(to_csv(per_app))
            written[f"csv:{app}"] = csv_path
    else:
        csv_path = out_dir / f"{name}.csv"
        csv_path.write_text(to_csv(data))
        written["csv"] = csv_path
    return written


def _jsonable(data: Any) -> Any:
    """Tuples → lists so json round-trips shape-stably."""
    if isinstance(data, dict):
        return {str(k): _jsonable(v) for k, v in data.items()}
    if isinstance(data, (list, tuple)):
        return [_jsonable(v) for v in data]
    return data
