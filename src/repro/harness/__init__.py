"""Experiment harness: crash-injection runner, verification, reporting.

:mod:`repro.harness.runner` runs one (workload, scheme) experiment —
runtime phase, crash, recovery — and verifies the recovered state and
exactly-once outputs against the serial ground truth.
:mod:`repro.harness.figures` defines every paper-figure experiment on
top of it; :mod:`repro.harness.report` renders the printed tables.
"""

from repro.harness.chaos import (
    ChaosConfig,
    ChaosReport,
    ChaosRun,
    run_chaos,
    smoke_config,
)
from repro.harness.runner import (
    ExperimentConfig,
    ExperimentResult,
    ground_truth,
    run_experiment,
)
from repro.harness.slo import (
    GateResult,
    GateTolerance,
    SLOTargets,
    SLOVerdict,
    evaluate_slo,
    regression_gate,
)
from repro.harness.soak import (
    SoakConfig,
    SoakResult,
    run_soak,
    smoke_configs,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "ground_truth",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRun",
    "run_chaos",
    "smoke_config",
    "SLOTargets",
    "SLOVerdict",
    "evaluate_slo",
    "GateTolerance",
    "GateResult",
    "regression_gate",
    "SoakConfig",
    "SoakResult",
    "run_soak",
    "smoke_configs",
]
