"""Calibration checker: do the paper's qualitative claims hold?

Runs a compact battery of experiments and evaluates every transferable
claim of the paper's evaluation as a named boolean check.  This is the
programmatic form of EXPERIMENTS.md — used by ``repro calibrate`` after
touching the cost model, and by tests to guard the shipped defaults.

Each check is (claim id, paper reference, holds?, detail string).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import buckets
from repro.harness import figures
from repro.harness.stats import crossover, scaling_efficiency, speedup_vs_suboptimal


@dataclass(frozen=True)
class CalibrationCheck:
    """One verified qualitative claim."""

    claim: str
    reference: str
    holds: bool
    detail: str


def run_calibration(
    scale: figures.FigureScale = figures.DEFAULT_SCALE,
) -> List[CalibrationCheck]:
    """Evaluate the core claim battery; returns one entry per claim."""
    checks: List[CalibrationCheck] = []

    def add(claim: str, reference: str, holds: bool, detail: str) -> None:
        checks.append(CalibrationCheck(claim, reference, holds, detail))

    # --- Fig. 2 / Fig. 11: recovery orderings --------------------------
    breakdown = figures.fig11_breakdown(scale)
    for app, per_scheme in breakdown.items():
        totals = {name: sum(b.values()) for name, b in per_scheme.items()}
        ordered = sorted(totals, key=totals.get)
        add(
            f"msr-fastest-recovery-{app}",
            "Fig. 11",
            ordered[0] == "MSR",
            f"{app}: " + " < ".join(ordered),
        )
        factor = speedup_vs_suboptimal(totals, "MSR")
        add(
            f"msr-speedup-{app}",
            "Fig. 11 (1.7-3.1x)",
            factor > 1.2,
            f"{app}: {factor:.2f}x vs sub-optimal",
        )
    sl = breakdown["SL"]
    sl_totals = {name: sum(b.values()) for name, b in sl.items()}
    add(
        "wal-slowest-recovery-sl",
        "Fig. 2",
        max(sl_totals, key=sl_totals.get) == "WAL",
        f"SL slowest: {max(sl_totals, key=sl_totals.get)}",
    )
    add(
        "dependency-trackers-worse-than-ckpt-sl",
        "S I / Fig. 2",
        sl_totals["DL"] > sl_totals["CKPT"]
        and sl_totals["LV"] > sl_totals["CKPT"] * 0.9,
        f"SL: DL {sl_totals['DL']:.2e}s, LV {sl_totals['LV']:.2e}s "
        f"vs CKPT {sl_totals['CKPT']:.2e}s",
    )
    add(
        "wal-wait-dominates",
        "S VIII-B",
        all(
            per["WAL"][buckets.WAIT] == max(per["WAL"].values())
            for per in breakdown.values()
        ),
        "WAL wait is its own largest bucket on every app",
    )
    add(
        "dl-construct-dominates",
        "S VIII-B",
        all(
            per["DL"][buckets.CONSTRUCT]
            == max(b[buckets.CONSTRUCT] for b in per.values())
            for per in breakdown.values()
        ),
        "DL construct is the largest across schemes on every app",
    )

    # --- Fig. 12a: runtime orderings ------------------------------------
    runtime = figures.fig12a_runtime(scale, apps=("SL",))["SL"]
    ft_only = {k: v for k, v in runtime.items() if k != "NAT"}
    add(
        "ckpt-least-runtime-overhead",
        "S VIII-C",
        max(ft_only, key=ft_only.get) == "CKPT",
        f"best FT runtime: {max(ft_only, key=ft_only.get)}",
    )
    add(
        "msr-beats-log-schemes-runtime",
        "S VIII-C (up to 30%)",
        all(runtime["MSR"] > runtime[n] for n in ("WAL", "DL", "LV")),
        f"MSR {runtime['MSR']:.0f} vs LV {runtime['LV']:.0f} events/s",
    )

    # --- Fig. 13: scalability -------------------------------------------
    scalability = figures.fig13_scalability(
        scale, cores=(1, 8, 32), apps=("SL", "GS")
    )
    msr_eff = scaling_efficiency(scalability["SL"]["MSR"])
    wal_eff = scaling_efficiency(scalability["SL"]["WAL"])
    add(
        "msr-scales-wal-does-not",
        "S VIII-E",
        msr_eff > 0.4 and wal_eff < 0.1,
        f"SL efficiency at 32 cores: MSR {msr_eff:.2f}, WAL {wal_eff:.2f}",
    )
    add(
        "wal-best-at-one-core",
        "S VIII-E",
        dict(scalability["SL"]["WAL"])[1] > dict(scalability["SL"]["MSR"])[1],
        "WAL beats MSR at a single core on SL",
    )

    # --- Fig. 14b: skew sensitivity --------------------------------------
    skew = figures.fig14b_skew(scale, skews=(0.0, 0.99))
    at_uniform = {name: pts[0][1] for name, pts in skew.items()}
    # An LSN-vector scheme leads at uniform: with the compressed Taurus
    # variant in the mix, LVC edges out dense LV (smaller records, same
    # replay), so the claim is about the vector *family*.
    add(
        "lv-best-at-uniform",
        "S VIII-F",
        max(at_uniform, key=at_uniform.get) in ("LV", "LVC"),
        f"uniform best: {max(at_uniform, key=at_uniform.get)}",
    )
    msr_drop = skew["MSR"][1][1] / skew["MSR"][0][1]
    lv_drop = skew["LV"][1][1] / skew["LV"][0][1]
    add(
        "msr-skew-tolerant",
        "S VIII-F",
        msr_drop > 0.9 and lv_drop < 0.5,
        f"throughput retained at skew 0.99: MSR {msr_drop:.2f}, LV {lv_drop:.2f}",
    )

    # --- Fig. 14c: abort sensitivity --------------------------------------
    aborts = figures.fig14c_aborts(scale, abort_ratios=(0.0, 0.8))
    add(
        "wal-improves-with-aborts",
        "S VIII-F",
        aborts["WAL"][1][1] > aborts["WAL"][0][1],
        "WAL throughput rises from 0% to 80% aborts",
    )
    add(
        "msr-lead-lost-at-extreme-aborts",
        "S VIII-F",
        aborts["MSR"][0][1] > aborts["LV"][0][1]
        and aborts["LV"][1][1] > aborts["MSR"][1][1],
        "LV overtakes MSR at 80% aborts",
    )

    # --- Fig. 12b: selective-logging crossover ----------------------------
    selective = figures.fig12b_selective(scale, ratios=(0.1, 0.5, 1.0))
    with_series = [(r, w) for r, w, _wo in selective]
    without_series = [(r, wo) for r, _w, wo in selective]
    cross = crossover(with_series, without_series)
    first_gap = selective[0][2] - selective[0][1]
    last_gap = selective[-1][2] - selective[-1][1]
    add(
        "selective-logging-trade-off",
        "S VIII-C / Fig. 12b",
        first_gap > 0 and last_gap < first_gap,
        (
            f"full logging wins at 10% (gap {first_gap:.3f}), gap at 100% "
            f"{last_gap:.3f}"
            + (f"; crossover near ratio {cross:.2f}" if cross is not None else "")
        ),
    )

    return checks


def all_hold(checks: List[CalibrationCheck]) -> bool:
    return all(check.holds for check in checks)
