"""Paper-figure experiment definitions (§VIII).

One function per evaluation figure; each returns plain data structures
(dicts/lists of numbers) that benchmarks print and tests assert shape
properties on.  ``FigureScale`` controls experiment size so the same
definitions serve quick CI runs and full benchmark runs.

Figure index (see DESIGN.md §4 and EXPERIMENTS.md):

- :func:`fig2_motivation` — runtime throughput vs recovery time (SL);
- :func:`fig9_commit_epochs` — runtime/recovery throughput across log
  commitment epochs for the LSFD/LSMD/HSFD/HSMD regimes;
- :func:`fig11_breakdown` — recovery-time breakdown per scheme per app;
- :func:`fig11d_factor` — incremental factor analysis of MSR's
  recovery optimizations;
- :func:`fig12a_runtime` — runtime throughput per scheme;
- :func:`fig12b_selective` — logging efficiency with/without selective
  logging vs multi-partition ratio;
- :func:`fig12c_memory` — peak memory footprint per scheme;
- :func:`fig12d_overhead` — runtime overhead breakdown (I/O, tracking,
  sync) relative to native execution;
- :func:`fig13_scalability` — recovery throughput vs core count;
- :func:`fig14_sensitivity` — recovery throughput vs multi-partition
  ratio / skew / abort ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import buckets
from repro.core.morphstreamr import MorphStreamR, MSROptions
from repro.ft.base import FTScheme
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector, LSNVectorCompressed
from repro.ft.native import Native
from repro.ft.pacman import WALPacman
from repro.ft.wal import WriteAheadLog
from repro.harness.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.workloads.grep_sum import GrepSum
from repro.workloads.online_bidding import OnlineBidding
from repro.workloads.streaming_ledger import StreamingLedger
from repro.workloads.toll_processing import TollProcessing

#: Schemes compared in recovery experiments (NAT cannot recover).
#: PACMAN and LVC are the "baselines that fight back" of ROADMAP item
#: 3: parallel command-log redo and compressed Taurus vectors, so the
#: headline figures measure MSR against the strongest competition.
RECOVERY_SCHEMES: Dict[str, type] = {
    "CKPT": GlobalCheckpoint,
    "WAL": WriteAheadLog,
    "PACMAN": WALPacman,
    "DL": DependencyLogging,
    "LV": LSNVector,
    "LVC": LSNVectorCompressed,
    "MSR": MorphStreamR,
}

#: Schemes compared at runtime (includes the NAT upper bound).
RUNTIME_SCHEMES: Dict[str, type] = {"NAT": Native, **RECOVERY_SCHEMES}


@dataclass(frozen=True)
class FigureScale:
    """Experiment sizing shared by all figures."""

    epoch_len: int = 256
    snapshot_interval: int = 5
    recover_epochs: int = 4
    num_workers: int = 8
    seed: int = 7


#: Full-size default used by the benchmarks.
DEFAULT_SCALE = FigureScale()
#: Reduced size for fast tests.
QUICK_SCALE = FigureScale(epoch_len=64, snapshot_interval=3, recover_epochs=2)


def sl_factory(num_partitions: int = 8, **overrides) -> Callable:
    """Default Streaming Ledger configuration of §VIII-A."""
    params = dict(
        transfer_ratio=0.5,
        multi_partition_ratio=0.2,
        skew=0.6,
        num_partitions=num_partitions,
    )
    params.update(overrides)
    return lambda: StreamingLedger(512, **params)


def gs_factory(
    num_partitions: int = 8, num_keys: int = 1024, **overrides
) -> Callable:
    """Default Grep&Sum configuration: the most skewed workload."""
    params = dict(
        list_len=8,
        skew=0.95,
        multi_partition_ratio=0.5,
        abort_ratio=0.05,
        num_partitions=num_partitions,
    )
    params.update(overrides)
    return lambda: GrepSum(num_keys, **params)


def tp_factory(num_partitions: int = 8, **overrides) -> Callable:
    """Default Toll Processing configuration: aborts are common."""
    params = dict(skew=0.6, capacity=10.0, num_partitions=num_partitions)
    params.update(overrides)
    return lambda: TollProcessing(256, **params)


def ob_factory(num_partitions: int = 8, **overrides) -> Callable:
    """Online Bidding: two interacting abort conditions per bid."""
    params = dict(bid_ratio=0.8, alter_ratio=0.1, skew=0.5,
                  num_partitions=num_partitions)
    params.update(overrides)
    return lambda: OnlineBidding(512, **params)


WORKLOADS: Dict[str, Callable[..., Callable]] = {
    "SL": sl_factory,
    "GS": gs_factory,
    "TP": tp_factory,
    "OB": ob_factory,
}


def _config(
    scale: FigureScale,
    workload_factory: Callable,
    scheme: type,
    **scheme_kwargs,
) -> ExperimentConfig:
    return ExperimentConfig(
        workload_factory=workload_factory,
        scheme=scheme,
        num_workers=scale.num_workers,
        epoch_len=scale.epoch_len,
        snapshot_interval=scale.snapshot_interval,
        recover_epochs=scale.recover_epochs,
        seed=scale.seed,
        scheme_kwargs=scheme_kwargs,
    )


def _run(
    scale: FigureScale,
    workload_factory: Callable,
    scheme: type,
    **scheme_kwargs,
) -> ExperimentResult:
    return run_experiment(_config(scale, workload_factory, scheme, **scheme_kwargs))


# ---------------------------------------------------------------------------
# Fig. 2 — motivation: runtime throughput vs recovery time (SL)
# ---------------------------------------------------------------------------

def fig2_motivation(
    scale: FigureScale = DEFAULT_SCALE,
) -> Dict[str, Dict[str, float]]:
    """Per scheme: runtime throughput and recovery time on SL."""
    results: Dict[str, Dict[str, float]] = {}
    for name, scheme in RUNTIME_SCHEMES.items():
        outcome = _run(scale, sl_factory(), scheme)
        results[name] = {
            "runtime_eps": outcome.runtime.throughput_eps,
            "recovery_seconds": (
                outcome.recovery.elapsed_seconds if outcome.recovery else 0.0
            ),
        }
    return results


# ---------------------------------------------------------------------------
# Fig. 9 — runtime vs recovery throughput under commitment epochs
# ---------------------------------------------------------------------------

#: The four contention regimes of §VI-B (GS parameterizations).
FIG9_REGIMES: Dict[str, Dict] = {
    "LSFD": dict(skew=0.0, multi_partition_ratio=0.1, list_len=2, abort_ratio=0.0),
    "LSMD": dict(skew=0.0, multi_partition_ratio=0.8, list_len=8, abort_ratio=0.0),
    "HSFD": dict(skew=0.9, multi_partition_ratio=0.1, list_len=2, abort_ratio=0.0),
    "HSMD": dict(skew=0.9, multi_partition_ratio=0.8, list_len=8, abort_ratio=0.0),
}


def fig9_commit_epochs(
    scale: FigureScale = DEFAULT_SCALE,
    epoch_lens: Sequence[int] = (64, 128, 256, 512, 1024),
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Per regime: (epoch_len, runtime_eps, recovery_eps) curve for MSR.

    The punctuation epoch equals the log-commitment epoch (transaction
    and commit markers are aligned by default, §VI-C).
    """
    curves: Dict[str, List[Tuple[int, float, float]]] = {}
    for regime, params in FIG9_REGIMES.items():
        factory = gs_factory(**params)
        points = []
        for epoch_len in epoch_lens:
            sized = replace(scale, epoch_len=epoch_len)
            outcome = _run(sized, factory, MorphStreamR)
            points.append(
                (
                    epoch_len,
                    outcome.runtime.throughput_eps,
                    outcome.recovery.throughput_eps,
                )
            )
        curves[regime] = points
    return curves


# ---------------------------------------------------------------------------
# Fig. 11(a-c) — recovery-time breakdown per scheme per application
# ---------------------------------------------------------------------------

def fig11_breakdown(
    scale: FigureScale = DEFAULT_SCALE,
    apps: Sequence[str] = ("SL", "GS", "TP"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per app, per scheme: per-bucket recovery seconds (Fig. 11a-c)."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in apps:
        factory = WORKLOADS[app]()
        per_scheme: Dict[str, Dict[str, float]] = {}
        for name, scheme in RECOVERY_SCHEMES.items():
            outcome = _run(scale, factory, scheme)
            per_scheme[name] = {
                bucket: outcome.recovery.buckets.get(bucket, 0.0)
                for bucket in buckets.RECOVERY_BUCKETS
            }
        results[app] = per_scheme
    return results


#: The incremental optimization stack of Fig. 11d.
FACTOR_STEPS: List[Tuple[str, MSROptions]] = [
    (
        "Simple",
        MSROptions(
            op_restructure=False, abort_pushdown=False, opt_task_assign=False
        ),
    ),
    (
        "+OpRestructure",
        MSROptions(abort_pushdown=False, opt_task_assign=False),
    ),
    ("+AbortPD", MSROptions(opt_task_assign=False)),
    ("+OptTaskAssign", MSROptions()),
]


def fig11d_factor(
    scale: FigureScale = DEFAULT_SCALE,
    apps: Sequence[str] = ("SL", "GS", "TP"),
) -> Dict[str, List[Tuple[str, float]]]:
    """Per app: recovery seconds as optimizations stack up (Fig. 11d)."""
    results: Dict[str, List[Tuple[str, float]]] = {}
    for app in apps:
        factory = WORKLOADS[app]()
        steps = []
        for label, options in FACTOR_STEPS:
            outcome = _run(scale, factory, MorphStreamR, options=options)
            steps.append((label, outcome.recovery.elapsed_seconds))
        results[app] = steps
    return results


# ---------------------------------------------------------------------------
# Fig. 12 — runtime performance, selective logging, memory, overhead
# ---------------------------------------------------------------------------

def fig12a_runtime(
    scale: FigureScale = DEFAULT_SCALE,
    apps: Sequence[str] = ("SL", "GS", "TP"),
) -> Dict[str, Dict[str, float]]:
    """Per app, per scheme: runtime throughput (Fig. 12a)."""
    results: Dict[str, Dict[str, float]] = {}
    for app in apps:
        factory = WORKLOADS[app]()
        results[app] = {
            name: _run(scale, factory, scheme).runtime.throughput_eps
            for name, scheme in RUNTIME_SCHEMES.items()
        }
    return results


def logging_efficiency(
    runtime_nat_eps: float,
    runtime_msr_eps: float,
    recovery_msr_eps: float,
    recovery_ckpt_eps: float,
) -> float:
    """The Fig. 12b metric: recovery gain per unit of runtime loss.

    Recovery improvement is measured against CKPT (the no-logging
    recovery baseline); runtime degradation against NAT (the no-logging
    runtime baseline).  Higher is better.
    """
    improvement = recovery_msr_eps / recovery_ckpt_eps
    degradation = runtime_nat_eps / runtime_msr_eps
    return improvement / degradation


def fig12b_selective(
    scale: FigureScale = DEFAULT_SCALE,
    ratios: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> List[Tuple[float, float, float]]:
    """(multi-partition ratio, efficiency with, without selective logging).

    The ratio is the share of *multi-partition transactions* in the
    stream: cross-partition SL transfers (which carry parametric
    dependencies) versus single-partition deposits.  More multi-partition
    transactions mean more PDs (§VI-B1), which is what makes selective
    logging pay off.
    """
    points = []
    for ratio in ratios:
        factory = sl_factory(multi_partition_ratio=1.0, transfer_ratio=ratio)
        nat = _run(scale, factory, Native)
        ckpt = _run(scale, factory, GlobalCheckpoint)
        with_sel = _run(scale, factory, MorphStreamR)
        without_sel = _run(
            scale,
            factory,
            MorphStreamR,
            options=MSROptions(selective_logging=False),
        )
        points.append(
            (
                ratio,
                logging_efficiency(
                    nat.runtime.throughput_eps,
                    with_sel.runtime.throughput_eps,
                    with_sel.recovery.throughput_eps,
                    ckpt.recovery.throughput_eps,
                ),
                logging_efficiency(
                    nat.runtime.throughput_eps,
                    without_sel.runtime.throughput_eps,
                    without_sel.recovery.throughput_eps,
                    ckpt.recovery.throughput_eps,
                ),
            )
        )
    return points


def fig12c_memory(
    scale: FigureScale = DEFAULT_SCALE,
) -> Dict[str, int]:
    """Peak runtime memory footprint per scheme on SL (Fig. 12c)."""
    return {
        name: _run(scale, sl_factory(), scheme).runtime.peak_memory_bytes
        for name, scheme in RUNTIME_SCHEMES.items()
    }


def fig12d_overhead(
    scale: FigureScale = DEFAULT_SCALE,
) -> Dict[str, Dict[str, float]]:
    """Per scheme: I/O / tracking / sync seconds relative to NAT (SL)."""
    results: Dict[str, Dict[str, float]] = {}
    for name, scheme in RUNTIME_SCHEMES.items():
        outcome = _run(scale, sl_factory(), scheme)
        results[name] = {
            bucket: outcome.runtime.buckets.get(bucket, 0.0)
            for bucket in buckets.RUNTIME_OVERHEAD_BUCKETS
        }
    return results


# ---------------------------------------------------------------------------
# Fig. 13 — scalability: recovery throughput vs core count
# ---------------------------------------------------------------------------

def fig13_scalability(
    scale: FigureScale = DEFAULT_SCALE,
    cores: Sequence[int] = (1, 2, 4, 8, 16, 32),
    apps: Sequence[str] = ("SL", "GS", "TP"),
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Per app, per scheme: (cores, recovery events/s) curve (Fig. 13)."""
    results: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for app in apps:
        per_scheme: Dict[str, List[Tuple[int, float]]] = {
            name: [] for name in RECOVERY_SCHEMES
        }
        for num_cores in cores:
            sized = replace(scale, num_workers=num_cores)
            factory = WORKLOADS[app](num_partitions=max(num_cores, 1))
            for name, scheme in RECOVERY_SCHEMES.items():
                outcome = _run(sized, factory, scheme)
                per_scheme[name].append(
                    (num_cores, outcome.recovery.throughput_eps)
                )
        results[app] = per_scheme
    return results


# ---------------------------------------------------------------------------
# Fig. 14 — workload sensitivity (GS)
# ---------------------------------------------------------------------------

def fig14a_multi_partition(
    scale: FigureScale = DEFAULT_SCALE,
    ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> Dict[str, List[Tuple[float, float]]]:
    """Recovery throughput vs multi-partition ratio (skew 0, no aborts)."""
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in RECOVERY_SCHEMES
    }
    for ratio in ratios:
        factory = gs_factory(
            skew=0.0, abort_ratio=0.0, multi_partition_ratio=ratio,
            list_len=8,
        )
        for name, scheme in RECOVERY_SCHEMES.items():
            outcome = _run(scale, factory, scheme)
            results[name].append((ratio, outcome.recovery.throughput_eps))
    return results


def fig14b_skew(
    scale: FigureScale = DEFAULT_SCALE,
    skews: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.99),
) -> Dict[str, List[Tuple[float, float]]]:
    """Recovery throughput vs access skew (write-only, no aborts)."""
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in RECOVERY_SCHEMES
    }
    for skew in skews:
        factory = gs_factory(
            num_keys=8192, skew=skew, abort_ratio=0.0,
            multi_partition_ratio=0.0, write_ratio=1.0,
        )
        for name, scheme in RECOVERY_SCHEMES.items():
            outcome = _run(scale, factory, scheme)
            results[name].append((skew, outcome.recovery.throughput_eps))
    return results


def fig14c_aborts(
    scale: FigureScale = DEFAULT_SCALE,
    abort_ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> Dict[str, List[Tuple[float, float]]]:
    """Recovery throughput vs share of events triggering aborts."""
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in RECOVERY_SCHEMES
    }
    for ratio in abort_ratios:
        factory = gs_factory(abort_ratio=ratio, skew=0.2)
        for name, scheme in RECOVERY_SCHEMES.items():
            outcome = _run(scale, factory, scheme)
            results[name].append((ratio, outcome.recovery.throughput_eps))
    return results
