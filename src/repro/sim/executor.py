"""List-scheduling simulation of a task DAG on the virtual machine.

This is the timing primitive shared by every scheme: normal transaction
processing, CKPT re-processing, DL/LV dependency-constrained replay and
MorphStreamR chain execution all reduce to *run this DAG of costed tasks
with this worker assignment*.

Semantics (classic in-order list scheduling):

- every task is pinned to one worker (core);
- each worker executes its tasks in the order they appear in the input
  sequence (which must be a topological order of the DAG);
- a task starts at ``max(worker ready time, max over dependencies of
  dependency finish time + handoff)`` where ``handoff`` is the
  cross-core synchronization cost if the dependency ran on a different
  worker (intra-worker dependencies are free — this is precisely the
  lock-contention-free property MorphStreamR's restructuring buys);
- the gap a worker spends blocked is charged to the ``wait`` bucket.

The executor verifies topological order and raises
:class:`~repro.errors.SchedulingError` on a forward reference, so an
incorrectly restructured schedule fails loudly instead of producing a
bogus timing.

Worker faults
-------------

Recovery's own machinery can fail: a :class:`WorkerFault` declares that
a worker **dies** at a simulated instant (tasks it had not finished are
*lost*, partial execution is wasted) or **straggles** (its work after
the instant is slowed by a factor).  :class:`ParallelExecutor` honours a
:class:`WorkerFaultPlan` by reporting lost tasks instead of silently
dropping them; :class:`ResilientExecutor` additionally *responds*: it
groups the lost tasks by chain, re-balances them onto the surviving
workers via :func:`~repro.core.assignment.lpt_reassign`, charges a
detection/backoff penalty per round, and fails loudly with
:class:`~repro.errors.ReassignmentError` when the bounded retry budget
is exhausted (or no worker survives).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from repro import buckets
from repro.errors import ConfigError, ReassignmentError, SchedulingError
from repro.sim.clock import WAIT, Machine

#: Worker fault kinds.
WORKER_FAULT_KINDS = ("die", "straggle")


@dataclass(frozen=True)
class SimTask:
    """One costed unit of work pinned to a worker.

    ``deps`` lists uids of tasks that must finish before this one starts.
    ``bucket`` is the accounting bucket the task's own cost is charged to
    (its blocked time always goes to ``wait``).  ``extra`` holds
    additional ``(bucket, seconds)`` components spent by the same worker
    immediately after the main cost — e.g. the per-operation dependency
    exploration a scheduler performs, which Fig. 11 reports separately
    from execution.  ``group`` optionally tags the chain/bundle the task
    belongs to: when a worker dies, re-assignment moves whole groups so
    chain order (and the intra-worker zero-sync property) is preserved.
    """

    uid: int
    worker: int
    cost: float
    deps: Tuple[int, ...] = ()
    bucket: str = "execute"
    extra: Tuple[Tuple[str, float], ...] = ()
    group: Optional[int] = None

    @property
    def total_cost(self) -> float:
        return self.cost + sum(seconds for _b, seconds in self.extra)


@dataclass(frozen=True)
class WorkerFault:
    """One failure event of a recovery worker.

    ``kind`` is ``die`` (the worker stops at ``at_seconds`` of simulated
    time; anything unfinished is lost) or ``straggle`` (work performed
    at or after ``at_seconds`` runs ``slowdown`` times slower).
    """

    worker: int
    kind: str
    at_seconds: float = 0.0
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigError(f"unknown worker fault kind {self.kind!r}")
        if self.worker < 0:
            raise ConfigError("worker id must be >= 0")
        if self.at_seconds < 0:
            raise ConfigError("at_seconds must be >= 0")
        if self.kind == "straggle" and self.slowdown < 1.0:
            raise ConfigError("slowdown must be >= 1")

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe record of this fault (check repro files, reports)."""
        return {
            "worker": self.worker,
            "kind": self.kind,
            "at_seconds": self.at_seconds,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "WorkerFault":
        """Rebuild from :meth:`to_payload` output.

        Tolerates unknown fields (schema-evolution convention shared
        with the harness JSON formats); missing optional fields take
        the dataclass defaults, and validation reruns in
        ``__post_init__``.
        """
        if not isinstance(payload, dict):
            raise ConfigError(f"worker fault payload must be a dict: {payload!r}")
        try:
            return cls(
                worker=int(payload["worker"]),  # type: ignore[call-overload]
                kind=str(payload["kind"]),
                at_seconds=float(payload.get("at_seconds", 0.0)),  # type: ignore[arg-type]
                slowdown=float(payload.get("slowdown", 2.0)),  # type: ignore[arg-type]
            )
        except KeyError as exc:
            raise ConfigError(f"worker fault payload missing field {exc}")


class WorkerFaultPlan:
    """The worker faults of one recovery run, validated against a machine.

    At most one death and one straggle per worker.  The plan is static —
    a worker is dead for any task that would start at or after its death
    instant — but the plan records which deaths were actually *observed*
    (affected at least one task) for reporting.
    """

    def __init__(self, faults: Sequence[WorkerFault], num_workers: int):
        self._death: Dict[int, float] = {}
        self._straggle: Dict[int, Tuple[float, float]] = {}
        for fault in faults:
            if fault.worker >= num_workers:
                raise ConfigError(
                    f"worker fault targets worker {fault.worker}, "
                    f"machine has {num_workers} workers"
                )
            if fault.kind == "die":
                if fault.worker in self._death:
                    raise ConfigError(
                        f"worker {fault.worker} already has a death scheduled"
                    )
                self._death[fault.worker] = fault.at_seconds
            else:
                if fault.worker in self._straggle:
                    raise ConfigError(
                        f"worker {fault.worker} already has a straggle "
                        "scheduled"
                    )
                self._straggle[fault.worker] = (
                    fault.at_seconds,
                    fault.slowdown,
                )
        self.observed_deaths: Set[int] = set()

    def death_of(self, worker: int) -> Optional[float]:
        return self._death.get(worker)

    def straggle_of(self, worker: int) -> Optional[Tuple[float, float]]:
        return self._straggle.get(worker)

    @property
    def doomed_workers(self) -> Tuple[int, ...]:
        """Workers with a scheduled death (regardless of observation)."""
        return tuple(sorted(self._death))

    @property
    def stragglers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._straggle))


@dataclass
class ScheduleResult:
    """Finish times and derived statistics of one simulated schedule."""

    finish: Dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0
    cross_worker_edges: int = 0
    tasks_run: int = 0
    #: tasks a dead worker never finished (in input order); empty unless
    #: a :class:`WorkerFaultPlan` was in force.
    lost: List[SimTask] = field(default_factory=list)
    #: partial execution burned on tasks that died mid-flight.
    wasted_seconds: float = 0.0
    #: workers whose death affected at least one task.
    dead_workers: Tuple[int, ...] = ()


@dataclass
class ReassignStats:
    """What a fault-resilient executor had to do about worker faults.

    Shared between backends: the virtual-time
    :class:`ResilientExecutor` and the real-core
    :class:`repro.real.executor.RealExecutor` both expose one of these
    as ``stats``, which is how the recovery report fills its
    re-assignment fields without knowing which backend ran.
    """

    rounds: int = 0
    tasks_reassigned: int = 0
    groups_reassigned: int = 0
    wasted_seconds: float = 0.0
    backoff_seconds: float = 0.0


class FaultResilientExecutor(Protocol):
    """The executor contract both backends implement.

    Extracted so fault-tolerance schemes, the chaos harness and the
    soak driver can select a backend without code changes:

    - chain groups are the re-assignment unit (``SimTask.group`` for
      the simulator, :class:`~repro.real.descriptors.ChainGroupTask`
      for real cores);
    - assignment and re-assignment run the deterministic LPT of
      :mod:`repro.core.assignment` (stable tie-breaks, so equal seeds
      give identical schedules on either backend);
    - worker deaths trigger bounded re-assignment rounds; exhausting
      ``reassign_budget`` — or losing every worker — raises
      :class:`~repro.errors.ReassignmentError`, never a silent
      partial schedule;
    - cumulative fault handling is reported through ``stats``.

    The backends differ *only* in what a "second" means: the simulator
    charges calibrated virtual costs to a :class:`Machine`, the real
    executor burns wall-clock on actual cores.
    """

    reassign_budget: int
    stats: ReassignStats


class ParallelExecutor:
    """Simulates in-order list scheduling of :class:`SimTask` sequences.

    Two costs attach to a cross-worker dependency edge: ``sync_cost`` is
    *latency* (the producer's result becomes visible to the consumer
    that much later), while ``remote_cost`` is *CPU burned by the
    consumer* to resolve the remote dependency (coherence misses, queue
    operations, notification handling) — charged to ``remote_bucket``
    even when the producer finished long ago.  Intra-worker dependencies
    cost nothing, which is the property MorphStreamR's restructuring
    exploits.

    With a ``fault_plan``, a dying worker's unfinished tasks (and any
    task depending on them, transitively) are reported in
    ``ScheduleResult.lost`` rather than executed; the caller decides how
    to respond (see :class:`ResilientExecutor`).
    """

    def __init__(
        self,
        machine: Machine,
        sync_cost: float,
        remote_cost: float = 0.0,
        remote_bucket: str = "explore",
        fault_plan: Optional[WorkerFaultPlan] = None,
    ):
        self._machine = machine
        self._sync_cost = sync_cost
        self._remote_cost = remote_cost
        self._remote_bucket = remote_bucket
        self._fault_plan = fault_plan

    def run(
        self,
        tasks: Sequence[SimTask],
        wait_bucket: str = WAIT,
    ) -> ScheduleResult:
        """Simulate ``tasks`` (a topological order) and return finish times.

        Tasks pinned to the same worker run in the given order; tasks on
        different workers overlap subject to their dependencies.  Worker
        clocks are *not* reset, so several ``run`` calls compose into one
        phase; call :meth:`Machine.reset` between phases instead.
        """
        result = ScheduleResult()
        workers: Dict[int, int] = {}
        self._run_tasks(tasks, result.finish, workers, result, wait_bucket)
        result.makespan = self._machine.elapsed()
        if self._fault_plan is not None:
            result.dead_workers = tuple(
                sorted(self._fault_plan.observed_deaths)
            )
        return result

    def _stretched(self, worker: int, start: float, seconds: float) -> float:
        """Wall seconds a span takes on ``worker`` starting at ``start``."""
        if self._fault_plan is None:
            return seconds
        straggle = self._fault_plan.straggle_of(worker)
        if straggle is None:
            return seconds
        at, factor = straggle
        if start >= at:
            return seconds * factor
        if start + seconds <= at:
            return seconds
        return (at - start) + (start + seconds - at) * factor

    def _run_tasks(
        self,
        tasks: Sequence[SimTask],
        finish: Dict[int, float],
        workers: Dict[int, int],
        result: ScheduleResult,
        wait_bucket: str,
    ) -> List[SimTask]:
        """Core scheduling loop; appends lost tasks to ``result.lost``
        (and returns them) instead of executing them."""
        machine = self._machine
        plan = self._fault_plan
        lost_uids = {task.uid for task in result.lost}
        newly_lost: List[SimTask] = []
        for task in tasks:
            if task.worker < 0 or task.worker >= machine.num_cores:
                raise SchedulingError(
                    f"task {task.uid} pinned to worker {task.worker}, "
                    f"machine has {machine.num_cores} cores"
                )
            if task.uid in finish:
                raise SchedulingError(f"duplicate task uid {task.uid}")
            ready = 0.0
            remote_deps = 0
            dep_lost = False
            for dep in task.deps:
                if dep in lost_uids:
                    # Cascade: the producer was lost with its worker, so
                    # this task cannot run either — it is re-assigned
                    # together with the producer.
                    dep_lost = True
                    continue
                if dep not in finish:
                    raise SchedulingError(
                        f"task {task.uid} depends on {dep} which has not "
                        "run yet (input is not a topological order)"
                    )
                dep_done = finish[dep]
                if workers[dep] != task.worker:
                    dep_done += self._sync_cost
                    remote_deps += 1
                    result.cross_worker_edges += 1
                ready = max(ready, dep_done)
            if dep_lost:
                lost_uids.add(task.uid)
                newly_lost.append(task)
                result.lost.append(task)
                continue
            core = machine.cores[task.worker]
            death_at = plan.death_of(task.worker) if plan is not None else None
            start = max(core.clock, ready)
            if death_at is not None and start >= death_at:
                # The worker is dead before the task could begin.
                plan.observed_deaths.add(task.worker)
                lost_uids.add(task.uid)
                newly_lost.append(task)
                result.lost.append(task)
                continue
            core.advance_to(ready, wait_bucket)
            spans: List[Tuple[str, float]] = []
            if remote_deps and self._remote_cost:
                spans.append(
                    (self._remote_bucket, remote_deps * self._remote_cost)
                )
            spans.append((task.bucket, task.cost))
            spans.extend(task.extra)
            died_mid_task = False
            for bucket, seconds in spans:
                seconds = self._stretched(task.worker, core.clock, seconds)
                if death_at is not None and core.clock + seconds > death_at:
                    # The worker dies mid-task: the partial execution is
                    # real CPU burned but the task must be re-executed
                    # elsewhere — it counts as wasted work.
                    burned = death_at - core.clock
                    if burned > 0:
                        core.spend(bucket, burned)
                    plan.observed_deaths.add(task.worker)
                    result.wasted_seconds += death_at - start
                    died_mid_task = True
                    break
                core.spend(bucket, seconds)
            if died_mid_task:
                lost_uids.add(task.uid)
                newly_lost.append(task)
                result.lost.append(task)
                continue
            finish[task.uid] = core.clock
            workers[task.uid] = task.worker
            result.tasks_run += 1
        return newly_lost


class ResilientExecutor(ParallelExecutor):
    """Fault-aware executor that re-assigns lost work to survivors.

    Each call to :meth:`run` retries until every task has executed:
    lost tasks are grouped by ``SimTask.group`` (falling back to one
    group per task), their residual weights are LPT-re-balanced onto
    the surviving workers, a detection/backoff penalty (doubling per
    round) is charged to every survivor, and the round repeats.  When
    ``reassign_budget`` rounds are exhausted — or no worker survives —
    :class:`~repro.errors.ReassignmentError` is raised; the schedule is
    never silently incomplete.

    Cumulative statistics across ``run`` calls live in ``stats`` (one
    recovery phase typically issues many runs, one per replayed epoch).
    """

    def __init__(
        self,
        machine: Machine,
        sync_cost: float,
        remote_cost: float = 0.0,
        remote_bucket: str = "explore",
        fault_plan: Optional[WorkerFaultPlan] = None,
        reassign_budget: int = 3,
        reassign_backoff: float = 1e-5,
    ):
        super().__init__(
            machine, sync_cost, remote_cost, remote_bucket, fault_plan
        )
        if reassign_budget < 1:
            raise ConfigError("reassign_budget must be >= 1")
        if reassign_backoff < 0:
            raise ConfigError("reassign_backoff must be >= 0")
        self._reassign_budget = reassign_budget
        self._reassign_backoff = reassign_backoff
        self.stats = ReassignStats()

    def run(
        self,
        tasks: Sequence[SimTask],
        wait_bucket: str = WAIT,
    ) -> ScheduleResult:
        machine = self._machine
        result = ScheduleResult()
        workers: Dict[int, int] = {}
        pending: Sequence[SimTask] = tasks
        round_no = 0
        while True:
            result.lost = []
            lost = self._run_tasks(
                pending, result.finish, workers, result, wait_bucket
            )
            if not lost:
                break
            round_no += 1
            if round_no > self._reassign_budget:
                raise ReassignmentError(
                    f"re-assignment budget exhausted after "
                    f"{self._reassign_budget} round(s); {len(lost)} task(s) "
                    "still stranded on dead workers"
                )
            pending = self._reassigned(lost)
            self.stats.rounds += 1
            self.stats.tasks_reassigned += len(lost)
        result.makespan = machine.elapsed()
        self.stats.wasted_seconds += result.wasted_seconds
        if self._fault_plan is not None:
            result.dead_workers = tuple(
                sorted(self._fault_plan.observed_deaths)
            )
        return result

    def _reassigned(self, lost: Sequence[SimTask]) -> List[SimTask]:
        """Re-pin lost tasks onto survivors, whole chains at a time."""
        # Deferred import: repro.core pulls in ft.base → sim.executor at
        # package-import time, so a module-level import here would cycle.
        from repro.core.assignment import lpt_reassign

        plan = self._fault_plan
        machine = self._machine
        num_workers = machine.num_cores
        assert plan is not None  # tasks are only lost under a plan
        survivors = [
            w for w in range(num_workers) if plan.death_of(w) is None
        ]
        if not survivors:
            raise ReassignmentError(
                "all recovery workers are dead; nothing to re-assign onto"
            )
        # Detection + re-dispatch latency, doubling per round (bounded
        # exponential backoff); charged on every survivor.
        backoff = self._reassign_backoff * (2 ** self.stats.rounds)
        if backoff:
            for wid in survivors:
                machine.cores[wid].spend(buckets.REASSIGN, backoff)
            self.stats.backoff_seconds += backoff
        # Group lost tasks by chain so each chain stays on one worker
        # (preserving in-order execution and the zero-sync property).
        group_tasks: Dict[object, List[SimTask]] = {}
        group_order: List[object] = []
        for task in lost:
            key = task.group if task.group is not None else ("uid", task.uid)
            if key not in group_tasks:
                group_tasks[key] = []
                group_order.append(key)
            group_tasks[key].append(task)
        weights = [
            sum(t.total_cost for t in group_tasks[key]) for key in group_order
        ]
        original = [group_tasks[key][0].worker for key in group_order]
        dead = [w for w in range(num_workers) if w not in survivors]
        new_assignment, _loads = lpt_reassign(
            weights, original, completed=(), dead_workers=dead,
            num_workers=num_workers,
        )
        worker_of_group = {
            key: new_assignment[i] for i, key in enumerate(group_order)
        }
        self.stats.groups_reassigned += len(group_order)
        return [
            replace(
                task,
                worker=worker_of_group[
                    task.group if task.group is not None else ("uid", task.uid)
                ],
            )
            for task in lost
        ]


def critical_path_length(
    tasks: Sequence[SimTask], sync_cost: float = 0.0
) -> float:
    """Length of the longest dependency path, ignoring worker limits.

    A lower bound on any schedule's makespan; tests use it to check the
    executor never beats physics.  ``sync_cost`` is charged on every edge
    (the pessimistic all-cross-worker case) when supplied.
    """
    longest: Dict[int, float] = {}
    for task in tasks:
        start = 0.0
        for dep in task.deps:
            if dep not in longest:
                raise SchedulingError(
                    f"task {task.uid} depends on unseen task {dep}"
                )
            start = max(start, longest[dep] + sync_cost)
        longest[task.uid] = start + task.total_cost
    return max(longest.values(), default=0.0)


def total_work(tasks: Iterable[SimTask]) -> float:
    """Sum of task costs: the serial execution time of the DAG."""
    return sum(task.total_cost for task in tasks)
