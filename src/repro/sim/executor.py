"""List-scheduling simulation of a task DAG on the virtual machine.

This is the timing primitive shared by every scheme: normal transaction
processing, CKPT re-processing, DL/LV dependency-constrained replay and
MorphStreamR chain execution all reduce to *run this DAG of costed tasks
with this worker assignment*.

Semantics (classic in-order list scheduling):

- every task is pinned to one worker (core);
- each worker executes its tasks in the order they appear in the input
  sequence (which must be a topological order of the DAG);
- a task starts at ``max(worker ready time, max over dependencies of
  dependency finish time + handoff)`` where ``handoff`` is the
  cross-core synchronization cost if the dependency ran on a different
  worker (intra-worker dependencies are free — this is precisely the
  lock-contention-free property MorphStreamR's restructuring buys);
- the gap a worker spends blocked is charged to the ``wait`` bucket.

The executor verifies topological order and raises
:class:`~repro.errors.SchedulingError` on a forward reference, so an
incorrectly restructured schedule fails loudly instead of producing a
bogus timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.sim.clock import WAIT, Machine


@dataclass(frozen=True)
class SimTask:
    """One costed unit of work pinned to a worker.

    ``deps`` lists uids of tasks that must finish before this one starts.
    ``bucket`` is the accounting bucket the task's own cost is charged to
    (its blocked time always goes to ``wait``).  ``extra`` holds
    additional ``(bucket, seconds)`` components spent by the same worker
    immediately after the main cost — e.g. the per-operation dependency
    exploration a scheduler performs, which Fig. 11 reports separately
    from execution.
    """

    uid: int
    worker: int
    cost: float
    deps: Tuple[int, ...] = ()
    bucket: str = "execute"
    extra: Tuple[Tuple[str, float], ...] = ()

    @property
    def total_cost(self) -> float:
        return self.cost + sum(seconds for _b, seconds in self.extra)


@dataclass
class ScheduleResult:
    """Finish times and derived statistics of one simulated schedule."""

    finish: Dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0
    cross_worker_edges: int = 0
    tasks_run: int = 0


class ParallelExecutor:
    """Simulates in-order list scheduling of :class:`SimTask` sequences.

    Two costs attach to a cross-worker dependency edge: ``sync_cost`` is
    *latency* (the producer's result becomes visible to the consumer
    that much later), while ``remote_cost`` is *CPU burned by the
    consumer* to resolve the remote dependency (coherence misses, queue
    operations, notification handling) — charged to ``remote_bucket``
    even when the producer finished long ago.  Intra-worker dependencies
    cost nothing, which is the property MorphStreamR's restructuring
    exploits.
    """

    def __init__(
        self,
        machine: Machine,
        sync_cost: float,
        remote_cost: float = 0.0,
        remote_bucket: str = "explore",
    ):
        self._machine = machine
        self._sync_cost = sync_cost
        self._remote_cost = remote_cost
        self._remote_bucket = remote_bucket

    def run(
        self,
        tasks: Sequence[SimTask],
        wait_bucket: str = WAIT,
    ) -> ScheduleResult:
        """Simulate ``tasks`` (a topological order) and return finish times.

        Tasks pinned to the same worker run in the given order; tasks on
        different workers overlap subject to their dependencies.  Worker
        clocks are *not* reset, so several ``run`` calls compose into one
        phase; call :meth:`Machine.reset` between phases instead.
        """
        machine = self._machine
        result = ScheduleResult()
        finish = result.finish
        workers: Dict[int, int] = {}
        for task in tasks:
            if task.worker < 0 or task.worker >= machine.num_cores:
                raise SchedulingError(
                    f"task {task.uid} pinned to worker {task.worker}, "
                    f"machine has {machine.num_cores} cores"
                )
            if task.uid in finish:
                raise SchedulingError(f"duplicate task uid {task.uid}")
            ready = 0.0
            remote_deps = 0
            for dep in task.deps:
                if dep not in finish:
                    raise SchedulingError(
                        f"task {task.uid} depends on {dep} which has not "
                        "run yet (input is not a topological order)"
                    )
                dep_done = finish[dep]
                if workers[dep] != task.worker:
                    dep_done += self._sync_cost
                    remote_deps += 1
                    result.cross_worker_edges += 1
                ready = max(ready, dep_done)
            core = machine.cores[task.worker]
            core.advance_to(ready, wait_bucket)
            if remote_deps and self._remote_cost:
                core.spend(self._remote_bucket, remote_deps * self._remote_cost)
            done = core.spend(task.bucket, task.cost)
            for bucket, seconds in task.extra:
                done = core.spend(bucket, seconds)
            finish[task.uid] = done
            workers[task.uid] = task.worker
            result.tasks_run += 1
        result.makespan = machine.elapsed()
        return result


def critical_path_length(
    tasks: Sequence[SimTask], sync_cost: float = 0.0
) -> float:
    """Length of the longest dependency path, ignoring worker limits.

    A lower bound on any schedule's makespan; tests use it to check the
    executor never beats physics.  ``sync_cost`` is charged on every edge
    (the pessimistic all-cross-worker case) when supplied.
    """
    longest: Dict[int, float] = {}
    for task in tasks:
        start = 0.0
        for dep in task.deps:
            if dep not in longest:
                raise SchedulingError(
                    f"task {task.uid} depends on unseen task {dep}"
                )
            start = max(start, longest[dep] + sync_cost)
        longest[task.uid] = start + task.total_cost
    return max(longest.values(), default=0.0)


def total_work(tasks: Iterable[SimTask]) -> float:
    """Sum of task costs: the serial execution time of the DAG."""
    return sum(task.total_cost for task in tasks)
